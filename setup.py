"""Legacy setup shim.

The evaluation environment is offline and has no ``wheel`` package, so
PEP 517 editable installs cannot build. This shim lets
``pip install -e . --no-use-pep517`` (or ``python setup.py develop``)
work with the stock setuptools; all metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
