"""Ablation — relative vs range-scaled numeric similarity.

§5 defines the relative measure ``1 − |q−t|/|q|`` but mentions Lp
metrics as the generic default for numeric values.  The two differ in
*where* a fixed absolute gap hurts: relative similarity forgives a
$1,000 gap on a $30,000 car but punishes it on a $3,000 one, while the
range-scaled measure prices gaps uniformly across the domain.

The ablation ranks a shared candidate pool under both modes against the
hidden catalogue taste (whose price component is relative, like real
shoppers' percentage thinking) and reports the agreement of each.
"""

import random

from repro.core.attribute_order import uniform_ordering
from repro.core.config import AIMQSettings
from repro.core.pipeline import build_model_from_sample
from repro.core.similarity import TupleSimilarity
from repro.datasets.cardb import generate_cardb
from repro.evalx.metrics import paper_mrr
from repro.evalx.userstudy import CarGroundTruth
from repro.sampling.collector import nested_samples

CAR_ROWS = 8000
SAMPLE_ROWS = 2000
N_QUERIES = 25
POOL = 300


def _mrr_for(scorer, table, ground_truth, rng) -> float:
    schema = table.schema
    scores = []
    for _ in range(N_QUERIES):
        query_id = rng.randrange(len(table))
        row = table.row(query_id)
        reference = schema.row_to_mapping(row)
        candidates = rng.sample(range(len(table)), POOL)
        top = sorted(
            candidates,
            key=lambda i: -scorer.sim_between_rows(row, table.row(i)),
        )[:10]
        taste = [ground_truth.score(reference, table.row(i)) for i in top]
        order = sorted(range(10), key=lambda i: -taste[i])
        ranks = [0] * 10
        for rank, index in enumerate(order, start=1):
            if taste[index] >= 0.25:
                ranks[index] = rank
        scores.append(paper_mrr(ranks))
    return sum(scores) / len(scores)


def test_ablation_numeric_similarity_mode(benchmark, record_result):
    def build():
        table = generate_cardb(CAR_ROWS, seed=7)
        sample = nested_samples(table, [SAMPLE_ROWS], random.Random(8))[
            SAMPLE_ROWS
        ]
        model = build_model_from_sample(sample, settings=AIMQSettings())
        return table, model

    table, model = benchmark.pedantic(build, rounds=1, iterations=1)
    ground_truth = CarGroundTruth(table.schema)
    ordering = uniform_ordering(table.schema)

    relative = TupleSimilarity(
        table.schema, ordering, model.value_similarity, numeric_mode="relative"
    )
    ranged = TupleSimilarity(
        table.schema,
        ordering,
        model.value_similarity,
        numeric_mode="range",
        numeric_extents=model.numeric_extents,
    )
    relative_mrr = _mrr_for(relative, table, ground_truth, random.Random(55))
    ranged_mrr = _mrr_for(ranged, table, ground_truth, random.Random(55))

    lines = [
        "Ablation — numeric similarity mode (rank agreement vs hidden taste)",
        f"  relative (paper): {relative_mrr:.3f}",
        f"  range-scaled L1:  {ranged_mrr:.3f}",
    ]
    record_result("ablation_numeric_similarity", "\n".join(lines))

    # Both must be usable rankers; the paper's relative measure should
    # match the (percentage-thinking) taste at least as well.
    assert relative_mrr > 0.3
    assert ranged_mrr > 0.3
    assert relative_mrr >= ranged_mrr - 0.03
