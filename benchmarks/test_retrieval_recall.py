"""Extra experiment — probing recall vs an exhaustive scan.

Not in the paper, but the natural effectiveness question its
architecture raises: relaxation probing exists only because the
autonomous source forbids scans, so how much of the *true* top-k
(full-scan ranking under the identical mined Sim) does the probing
search actually recover, and at what fraction of the I/O?

Expectation: high recall (most of the true top-k are near-clones that
narrow relaxations reach) at a small fraction of the scan cost.
"""

from repro.evalx.experiments import run_retrieval_recall

CAR_ROWS = 10000
SAMPLE_ROWS = 2500
N_QUERIES = 20
K = 10


def test_retrieval_recall_vs_exhaustive_scan(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_retrieval_recall(
            car_rows=CAR_ROWS,
            sample_rows=SAMPLE_ROWS,
            n_queries=N_QUERIES,
            k=K,
        ),
        rounds=1,
        iterations=1,
    )
    lines = [
        "Extra — probing recall vs exhaustive scan (same mined Sim)",
        f"  recall@{result.k}:          {result.recall_at_k:.3f}",
        f"  mean probes/query:    {result.mean_probes:.0f}",
        f"  mean tuples extracted: {result.mean_extracted:.0f}"
        f" (vs {result.scan_rows} scanned rows)",
    ]
    record_result("retrieval_recall", "\n".join(lines))

    # Probing must recover the majority of the true top-k...
    assert result.recall_at_k >= 0.5
    # ...while touching a small fraction of the relation.
    assert result.mean_extracted < result.scan_rows * 0.2
