"""Ablation — bag vs set semantics in supertuple Jaccard.

The paper (§5.2) specifies the Jaccard coefficient *with bag
semantics*: occurrence counts matter.  This ablation re-mines the Make
similarities with plain set semantics and compares.

Expectation: set semantics inflates similarities (every shared keyword
counts fully regardless of frequency) and blurs the separation between
Ford's true neighbours (Chevrolet) and the luxury outlier (BMW);
bag semantics keeps the Figure 5 structure crisper.
"""

from repro.datasets.cardb import generate_cardb
from repro.simmining.estimator import SimilarityMinerConfig, ValueSimilarityMiner

CAR_ROWS = 8000


def _mine(bag_semantics: bool):
    table = generate_cardb(CAR_ROWS, seed=7)
    config = SimilarityMinerConfig(bag_semantics=bag_semantics)
    return ValueSimilarityMiner(config=config).mine(table, attributes=("Make",))


def test_ablation_bag_vs_set_semantics(benchmark, record_result):
    bag_model = benchmark.pedantic(lambda: _mine(True), rounds=1, iterations=1)
    set_model = _mine(False)

    def separation(model):
        chevrolet = model.similarity("Make", "Ford", "Chevrolet")
        bmw = model.similarity("Make", "Ford", "BMW")
        return chevrolet - bmw, chevrolet, bmw

    bag_gap, bag_chev, bag_bmw = separation(bag_model)
    set_gap, set_chev, set_bmw = separation(set_model)
    lines = [
        "Ablation — bag vs set semantics (Make similarities)",
        f"  bag: Ford~Chevrolet {bag_chev:.3f}  Ford~BMW {bag_bmw:.3f}  gap {bag_gap:.3f}",
        f"  set: Ford~Chevrolet {set_chev:.3f}  Ford~BMW {set_bmw:.3f}  gap {set_gap:.3f}",
    ]
    record_result("ablation_bag_semantics", "\n".join(lines))

    # Both keep the qualitative structure...
    assert bag_chev > bag_bmw
    assert set_chev > set_bmw
    # ...but set semantics inflates similarity scores overall,
    assert set_chev >= bag_chev
    assert set_bmw >= bag_bmw
    # and bag semantics separates neighbour from outlier at least as well
    # relative to its own scale.
    assert bag_gap / max(bag_chev, 1e-9) >= set_gap / max(set_chev, 1e-9)
