"""Figure 4 — robustness of approximate-key mining.

Paper: of the 26 keys found in the full CarDB only 4 low-quality keys
are missing from the sampled datasets, and the key with the highest
quality (support/size) in the database also has the highest quality in
every sample — so relaxation would pick the right partitioning key even
from the smallest (15k) sample.

Reproduction target: the top-quality key is identical across all
nested samples, and only low-quality keys drop out as samples shrink
(smaller samples actually admit MORE keys under a fixed error budget —
duplicates grow with data — so we assert the direction we observe:
key sets change only in the low-quality tail).
"""

from repro.evalx.experiments import run_fig4
from repro.evalx.reporting import format_fig4

CAR_ROWS = 10000
FRACTIONS = (0.15, 0.25, 0.5, 1.0)


def test_fig4_key_quality_robust(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_fig4(car_rows=CAR_ROWS, fractions=FRACTIONS),
        rounds=1,
        iterations=1,
    )
    paper = (
        "paper: 26 keys at 100k; best-quality key identical in all "
        "samples; only 4 low-quality keys absent from samples"
    )
    record_result("fig4_key_quality", format_fig4(result) + "\n" + paper)

    assert result.best_key_stable(), "best key must be sample-invariant"
    for size in result.sizes:
        ranked = result.key_quality[size]
        assert ranked, f"sample {size} mined no keys"
        qualities = [quality for _, quality in ranked]
        assert qualities == sorted(qualities)
    # The top key of the full data is present in every sample's key set.
    full = max(result.sizes)
    top_key = result.best_key[full]
    for size in result.sizes:
        assert top_key in {attrs for attrs, _ in result.key_quality[size]}, size
