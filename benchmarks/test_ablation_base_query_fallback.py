"""Ablation — base-query generalisation fallback (paper footnote 2).

AIMQ assumes "a non-null resultset for Q_pr or one of its
generalisations".  This ablation quantifies how often the fallback
ladder (numeric widening, then least-important attribute drops) is
actually needed on realistic imprecise queries, and verifies that
disabling the attribute-ordering heuristic (dropping attributes in
arbitrary order instead) retains fewer of the user's constraints.
"""

import random

from repro.core.config import AIMQSettings
from repro.core.pipeline import build_model_from_sample
from repro.core.query import BaseQueryMapper, ImpreciseQuery
from repro.datasets.cardb import generate_cardb
from repro.db.errors import QueryError
from repro.db.webdb import AutonomousWebDatabase
from repro.sampling.collector import nested_samples

CAR_ROWS = 8000
SAMPLE_ROWS = 2000
N_QUERIES = 60


def _make_queries(table, rng):
    """Imprecise queries with slightly perturbed prices: some hit
    directly, many need widening, a few need drops."""
    queries = []
    schema = table.schema
    for _ in range(N_QUERIES):
        row = table.row(rng.randrange(len(table)))
        mapping = schema.row_to_mapping(row)
        price = mapping["Price"] + rng.choice((-170, -30, 0, 30, 170))
        queries.append(
            ImpreciseQuery.like(
                "CarDB",
                Model=mapping["Model"],
                Price=price,
                Location=mapping["Location"],
            )
        )
    return queries


def test_ablation_generalisation_fallback(benchmark, record_result):
    def run():
        table = generate_cardb(CAR_ROWS, seed=7)
        webdb = AutonomousWebDatabase(table)
        sample = nested_samples(table, [SAMPLE_ROWS], random.Random(8))[
            SAMPLE_ROWS
        ]
        model = build_model_from_sample(sample, settings=AIMQSettings())
        rng = random.Random(13)
        queries = _make_queries(table, rng)

        guided_mapper = BaseQueryMapper(
            webdb, relaxation_order=model.ordering.relaxation_order
        )
        counts = {"direct": 0, "widened": 0, "dropped": 0, "failed": 0}
        drops = 0
        for query in queries:
            try:
                base = guided_mapper.map(query)
            except QueryError:
                counts["failed"] += 1
                continue
            if not base.generalisation_steps:
                counts["direct"] += 1
            elif all("widened" in s for s in base.generalisation_steps):
                counts["widened"] += 1
            else:
                counts["dropped"] += 1
                drops += sum(
                    1 for s in base.generalisation_steps if "dropped" in s
                )
        return counts, drops

    counts, drops = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "Ablation — base-query generalisation fallback usage "
        f"({N_QUERIES} perturbed-price queries)",
        f"  direct hits:        {counts['direct']}",
        f"  numeric widening:   {counts['widened']}",
        f"  attribute drops:    {counts['dropped']} (total drops {drops})",
        f"  unanswerable:       {counts['failed']}",
    ]
    record_result("ablation_base_query_fallback", "\n".join(lines))

    # The ladder must rescue a nontrivial share of near-miss queries...
    assert counts["widened"] + counts["dropped"] > 0
    # ...while almost never failing outright (footnote 2's assumption).
    assert counts["failed"] <= N_QUERIES * 0.05
    # Most queries resolve without dropping any user constraint.
    assert counts["direct"] + counts["widened"] >= counts["dropped"]
