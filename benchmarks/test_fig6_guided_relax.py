"""Figure 6 — efficiency of GuidedRelax.

Paper (CarDB 100k, 10 random tuple queries, 20 relevant tuples each,
T_sim swept over [0.5, 0.9]): work per relevant tuple grows with the
threshold, but GuidedRelax stays resilient — "generally extracts 4
tuples before identifying a relevant tuple".

Reproduction target: monotone-ish growth with T_sim and single-digit
work at the low/mid thresholds.
"""

from repro.evalx.experiments import run_relaxation_efficiency
from repro.evalx.reporting import format_efficiency

CAR_ROWS = 25000
SAMPLE_ROWS = 5000
N_QUERIES = 10
THRESHOLDS = (0.5, 0.6, 0.7, 0.8, 0.9)


def test_fig6_guided_relax_efficiency(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_relaxation_efficiency(
            "guided",
            car_rows=CAR_ROWS,
            sample_rows=SAMPLE_ROWS,
            n_queries=N_QUERIES,
            thresholds=THRESHOLDS,
        ),
        rounds=1,
        iterations=1,
    )
    paper = "paper: GuidedRelax generally ~4 tuples per relevant, mildly rising with T_sim"
    record_result("fig6_guided_relax", format_efficiency(result) + "\n" + paper)

    # Work grows with the similarity bar (median: robust to the odd
    # query tuple with no T_sim-similar neighbours at reduced density).
    assert result.median_work[0.9] >= result.median_work[0.5]
    # Resilience: single-digit typical work everywhere, as in the paper.
    assert result.median_work[0.5] < 10
    assert result.median_work[0.7] < 10
    assert result.median_work[0.9] < 20
