"""Scaling ablation — the §6.1 complexity claim measured directly.

The paper: "ROCK's computational complexity is O(n³), where n is the
number of tuples... In contrast, AIMQ's complexity is O(m·k²) where m
is the number of categorical attributes, k is the average number of
distinct values... and m < k < n."

This benchmark doubles the dataset twice and measures how each system's
offline time grows.  AIMQ's cost depends on AV-pair counts (nearly flat
in n once the value domains saturate); ROCK's grows superlinearly when
its sample scales with the data, and its labelling pass alone is Ω(n).
"""

import time

from repro.datasets.cardb import generate_cardb
from repro.rock.answering import RockQueryAnswerer
from repro.rock.clustering import RockConfig
from repro.simmining.estimator import ValueSimilarityMiner

SIZES = (2000, 4000, 8000)


def _time_aimq(table) -> float:
    start = time.perf_counter()
    ValueSimilarityMiner().mine(table)
    return time.perf_counter() - start


def _time_rock(table) -> float:
    start = time.perf_counter()
    RockQueryAnswerer(
        table,
        config=RockConfig(theta=0.5, n_clusters=10),
        sample_size=len(table) // 10,  # paper scales the sample with n
        seed=1,
    ).fit()
    return time.perf_counter() - start


def test_scaling_aimq_vs_rock(benchmark, record_result):
    def run():
        aimq_times = []
        rock_times = []
        for size in SIZES:
            table = generate_cardb(size, seed=7)
            aimq_times.append(_time_aimq(table))
            rock_times.append(_time_rock(table))
        return aimq_times, rock_times

    aimq_times, rock_times = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["Scaling — offline seconds vs dataset size (sample = n/10 for ROCK)"]
    lines.append(f"{'n':>8}{'AIMQ':>10}{'ROCK':>10}{'ratio':>8}")
    for size, a, r in zip(SIZES, aimq_times, rock_times):
        lines.append(f"{size:>8}{a:>10.3f}{r:>10.3f}{r / max(a, 1e-9):>8.1f}x")
    aimq_growth = aimq_times[-1] / max(aimq_times[0], 1e-9)
    rock_growth = rock_times[-1] / max(rock_times[0], 1e-9)
    lines.append(
        f"growth over a 4x data increase: AIMQ {aimq_growth:.1f}x, "
        f"ROCK {rock_growth:.1f}x"
    )
    lines.append(
        "paper claim: AIMQ O(m*k^2) in AV-pairs (near-flat in n), "
        "ROCK O(n^3) worst case"
    )
    record_result("scaling_complexity", "\n".join(lines))

    # ROCK is slower at every measured size...
    for a, r in zip(aimq_times, rock_times):
        assert r > a
    # ...and grows faster with n than AIMQ does.
    assert rock_growth > aimq_growth
