"""Ablation — importance-weight smoothing (λ).

DESIGN.md calls out the smoothing blend W' = (1−λ)W + λ/n as a
reproduction-specific safeguard: pure Algorithm 2 weights can be
*exactly zero* for attributes untouched by any mined AFD, which makes
the similarity function blind to those columns.  This ablation shows

* λ=0 reproduces the raw Algorithm 2 weights (zeros included),
* λ=0.3 (default) floors every attribute while preserving the ranking,
* λ=1 collapses to uniform,

and measures the ranking quality of each against the hidden catalogue
taste on a shared random candidate pool.
"""

import random

from repro.core.attribute_order import uniform_ordering
from repro.core.config import AIMQSettings
from repro.core.pipeline import build_model_from_sample
from repro.core.similarity import TupleSimilarity
from repro.datasets.cardb import generate_cardb
from repro.evalx.metrics import paper_mrr
from repro.evalx.userstudy import CarGroundTruth
from repro.sampling.collector import nested_samples

CAR_ROWS = 8000
SAMPLE_ROWS = 2500
N_QUERIES = 25
POOL = 400


def _ranking_mrr(scorer, table, ground_truth, rng) -> float:
    schema = table.schema
    mrrs = []
    for _ in range(N_QUERIES):
        query_id = rng.randrange(len(table))
        row = table.row(query_id)
        reference = schema.row_to_mapping(row)
        candidates = rng.sample(range(len(table)), POOL)
        top = sorted(
            candidates,
            key=lambda i: -scorer.sim_between_rows(row, table.row(i)),
        )[:10]
        scores = [ground_truth.score(reference, table.row(i)) for i in top]
        order = sorted(range(10), key=lambda i: -scores[i])
        ranks = [0] * 10
        for rank, index in enumerate(order, start=1):
            if scores[index] >= 0.25:
                ranks[index] = rank
        mrrs.append(paper_mrr(ranks))
    return sum(mrrs) / len(mrrs)


def test_ablation_importance_smoothing(benchmark, record_result):
    def build():
        table = generate_cardb(CAR_ROWS, seed=7)
        sample = nested_samples(table, [SAMPLE_ROWS], random.Random(8))[
            SAMPLE_ROWS
        ]
        model = build_model_from_sample(
            sample, settings=AIMQSettings(importance_smoothing=0.0)
        )
        return table, model

    table, model = benchmark.pedantic(build, rounds=1, iterations=1)
    ground_truth = CarGroundTruth(table.schema)
    raw = model.ordering  # λ=0 (built with smoothing disabled)
    smoothed = raw.smoothed(0.3)
    flat = uniform_ordering(table.schema)

    results = {}
    for name, ordering in (("raw λ=0", raw), ("λ=0.3", smoothed), ("uniform", flat)):
        scorer = TupleSimilarity(table.schema, ordering, model.value_similarity)
        results[name] = _ranking_mrr(
            scorer, table, ground_truth, random.Random(77)
        )

    lines = ["Ablation — importance smoothing (rank agreement vs hidden taste)"]
    for name, value in results.items():
        lines.append(f"  {name:<10} MRR {value:.3f}")
    zero_attrs = [n for n, w in raw.importance.items() if w == 0.0]
    lines.append(f"  zero-weight attributes at λ=0: {zero_attrs}")
    record_result("ablation_smoothing", "\n".join(lines))

    # λ=0.3 must fix the zero-weight blindness without losing ranking
    # quality relative to raw Algorithm 2 weights.
    floored = raw.smoothed(0.3)
    assert all(w > 0 for w in floored.importance.values())
    assert results["λ=0.3"] >= results["raw λ=0"] - 0.02
    # Mined weights (any λ < 1) must beat uniform on diverse pools.
    assert results["λ=0.3"] > results["uniform"]
