"""Fast-path micro-benchmarks as a pytest artefact.

Runs the ``repro.perf`` harness at smoke scale, asserts every fast
path is result-equivalent to its reference path, and records the JSON
report under ``benchmarks/results/``.  Speedups are *reported*, not
asserted — wall-clock ratios on shared CI runners are too noisy for a
hard gate here; the ``bench-smoke`` CI job applies the regression
tolerance through ``python -m repro bench --check`` instead.
"""

from __future__ import annotations

import json

from repro.perf import run_bench


def test_fastpaths_smoke(record_result):
    report = run_bench("smoke")
    for name, entry in report["scenarios"].items():
        assert entry["equivalent"], f"{name}: fast path output differs"
    lines = [
        f"{name}: {entry['speedup']}x "
        f"({entry['slow_seconds']:.3f}s -> {entry['fast_seconds']:.3f}s)"
        for name, entry in report["scenarios"].items()
    ]
    record_result(
        "perf_fastpaths",
        "Fast-path micro-benchmarks (smoke scale)\n"
        + "\n".join(lines)
        + "\n\n"
        + json.dumps(report, indent=2, sort_keys=True),
    )
