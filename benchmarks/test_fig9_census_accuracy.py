"""Figure 9 — domain independence: classification accuracy on CensusDB.

Paper (15k learning sample, 1000 held-out queries balanced over the
income classes, T_sim=0.4, first 10 answers): the fraction of top-k
answers sharing the query tuple's income class, for k in {10, 5, 3, 1}.
Accuracy increases as k decreases, and AIMQ comprehensively outperforms
ROCK at every k.

Reproduction target: AIMQ > ROCK at every k; AIMQ's accuracy does not
degrade as k shrinks.
"""

from repro.evalx.experiments import census_settings, run_fig9
from repro.evalx.reporting import format_fig9

CENSUS_ROWS = 8000
SAMPLE_ROWS = 2500
N_QUERIES = 120
ROCK_SAMPLE = 350


def test_fig9_census_classification_accuracy(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_fig9(
            census_rows=CENSUS_ROWS,
            sample_rows=SAMPLE_ROWS,
            n_queries=N_QUERIES,
            rock_sample=ROCK_SAMPLE,
            settings=census_settings(error_threshold=0.3),
        ),
        rounds=1,
        iterations=1,
    )
    paper = (
        "paper: AIMQ beats ROCK at every k; accuracy rises as k falls "
        "(both systems)"
    )
    record_result("fig9_census_accuracy", format_fig9(result) + "\n" + paper)

    assert result.aimq_beats_rock(), (result.aimq_accuracy, result.rock_accuracy)
    # Accuracy should not collapse at small k for AIMQ (paper: it rises).
    assert result.aimq_accuracy[1] >= result.aimq_accuracy[10] - 0.05
