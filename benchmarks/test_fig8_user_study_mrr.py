"""Figure 8 — user study: average MRR over CarDB.

Paper (14 queries x top-10 answers x 8 graduate students):
GuidedRelax's MRR exceeds both RandomRelax's and ROCK's.  Note the
paper's own caveat (§6.4): RandomRelax "is not [a strawman] here" —
it examines a larger share of the database and retrieves many relevant
answers, so the Guided-vs-Random gap is modest while ROCK trails
clearly.

Reproduction: the human panel is replaced by noisy oracle users whose
hidden taste derives from the car catalogue (segment/tier/brand plus
price/year/mileage closeness) — see DESIGN.md.  A single 14-query draw
is noisy, so the benchmark averages five independent panels (70
queries total).  Target shape: MRR(GuidedRelax) > MRR(RandomRelax) >
MRR(ROCK), with a clear margin over ROCK.
"""

from repro.evalx.experiments import run_fig8_multi

CAR_ROWS = 8000
SAMPLE_ROWS = 2000
N_QUERIES = 14
N_USERS = 8
ROCK_SAMPLE = 300
SEEDS = (7, 17, 27, 37, 47)


def test_fig8_user_study_mrr(benchmark, record_result):
    outcome = benchmark.pedantic(
        lambda: run_fig8_multi(
            seeds=SEEDS,
            car_rows=CAR_ROWS,
            sample_rows=SAMPLE_ROWS,
            n_queries=N_QUERIES,
            n_users=N_USERS,
            rock_sample=ROCK_SAMPLE,
        ),
        rounds=1,
        iterations=1,
    )
    lines = ["Figure 8 — Average MRR over CarDB (5 panels x 14 queries)"]
    for name in sorted(outcome.system_mrr, key=lambda n: -outcome.system_mrr[n]):
        lines.append(f"  {name:<14}{outcome.system_mrr[name]:.3f}")
    paper = (
        "paper: MRR GuidedRelax > RandomRelax > ROCK (guided best despite "
        "examining fewer tuples; random competitive per the paper's caveat)"
    )
    record_result("fig8_user_study_mrr", "\n".join(lines) + "\n" + paper)

    mrr = outcome.system_mrr
    assert mrr["GuidedRelax"] > mrr["RandomRelax"], mrr
    assert mrr["GuidedRelax"] > mrr["ROCK"] + 0.02, mrr
    assert all(0.0 < value <= 1.0 for value in mrr.values())
