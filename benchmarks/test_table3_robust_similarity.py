"""Table 3 — robustness of similarity estimation across sample sizes.

Paper (25k vs 100k CarDB): the top similar values for Make=Kia
(Hyundai, Isuzu, Subaru), Model=Bronco (Aerostar, F-350, Econoline Van)
and Year=1985 (1986, 1984, 1987) keep their *relative ordering* even
though absolute similarities shrink on the smaller sample.

Reproduction target: at quarter-vs-full scale, the same probes return
the same *families* of similar values and the full-sample top-1 is
highly ranked in the small sample too.
"""

from repro.evalx.experiments import run_table3
from repro.evalx.reporting import format_table3

CAR_ROWS = 10000


def test_table3_similarity_robust_over_sampling(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_table3(car_rows=CAR_ROWS, small_fraction=0.25),
        rounds=1,
        iterations=1,
    )
    paper = (
        "paper: Kia->{Hyundai, Isuzu, Subaru}; Bronco->{Aerostar, F-350, "
        "Econoline Van}; 1985->{1986, 1984, 1987}; relative order kept at 25k"
    )
    record_result("table3_robust_similarity", format_table3(result) + "\n" + paper)

    rows = result.rows
    # Kia's closest make is another budget import.
    kia_top = [name for name, _, _ in rows[("Make", "Kia")]]
    assert set(kia_top) & {"Hyundai", "Isuzu", "Subaru"}, kia_top
    # Bronco's neighbours are Ford's other big vehicles.
    bronco_top = [name for name, _, _ in rows[("Model", "Bronco")]]
    assert set(bronco_top) & {"Aerostar", "F-350", "Econoline Van"}, bronco_top
    # 1985's neighbours are adjacent years.
    year_top = [int(name) for name, _, _ in rows[("Year", "1985")]]
    assert all(abs(year - 1985) <= 4 for year in year_top), year_top
    # Small-sample scores track the full-sample ranking up to near-ties:
    # a value may only jump ahead of the full-sample order when the
    # quarter-sample scores are within a small margin of each other.
    for probe in result.probes:
        assert result.order_preserved(tuple(probe), tolerance=0.12), probe
