"""Table 2 — offline computation time, AIMQ vs ROCK.

Paper (CarDB 25k / CensusDB 45k, ROCK sample 2k):

    AIMQ   SuperTuple Generation   3 min    4 min
           Similarity Estimation  15 min   20 min
    ROCK   Link Computation       20 min   35 min
           Initial Clustering     45 min   86 min
           Data Labeling          30 min   50 min

Reproduction target (shape): AIMQ's offline total is a small fraction
of ROCK's at matched scale, because AIMQ is O(m·k²) in AV-pairs while
ROCK pays O(sample²) neighbours + clustering plus a labelling pass over
the whole relation.  Absolute times differ (different hardware, 10×
smaller data, Python vs Java) — only the ratio is claimed.
"""

from repro.evalx.experiments import run_table2
from repro.evalx.reporting import format_table2

CAR_ROWS = 5000
CENSUS_ROWS = 6000
ROCK_SAMPLE = 500


def test_table2_offline_costs(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_table2(
            car_rows=CAR_ROWS,
            census_rows=CENSUS_ROWS,
            rock_sample=ROCK_SAMPLE,
        ),
        rounds=1,
        iterations=1,
    )
    text = format_table2(result)
    paper = (
        "paper (25k/45k, ROCK sample 2k): AIMQ 18/24 min total vs "
        "ROCK 95/171 min total — AIMQ ~5-7x cheaper"
    )
    record_result("table2_offline_time", text + "\n" + paper)

    for dataset in ("CarDB", "CensusDB"):
        assert result.aimq_total(dataset) > 0
        assert result.rock_total(dataset) > 0
        # The headline claim: AIMQ's offline phase is cheaper.
        assert result.aimq_total(dataset) < result.rock_total(dataset), dataset
