"""Table 2 — offline computation time, AIMQ vs ROCK.

Paper (CarDB 25k / CensusDB 45k, ROCK sample 2k):

    AIMQ   SuperTuple Generation   3 min    4 min
           Similarity Estimation  15 min   20 min
    ROCK   Link Computation       20 min   35 min
           Initial Clustering     45 min   86 min
           Data Labeling          30 min   50 min

Reproduction target (shape): AIMQ's offline total is a small fraction
of ROCK's at matched scale, because AIMQ is O(m·k²) in AV-pairs while
ROCK pays O(sample²) neighbours + clustering plus a labelling pass over
the whole relation.  Absolute times differ (different hardware, 10×
smaller data, Python vs Java) — only the ratio is claimed.

The run executes with observability enabled, so the reported phase
times can be cross-checked against the span-derived timings: Table 2's
AIMQ rows are read from ``MiningTimings``, which under tracing takes
each phase duration from its span, so the two accountings must agree
exactly.
"""

import pytest

from repro.evalx.experiments import run_table2
from repro.evalx.reporting import format_table2
from repro.obs import OBS

CAR_ROWS = 5000
CENSUS_ROWS = 6000
ROCK_SAMPLE = 500


def _span_phase_totals() -> dict[str, float]:
    """Total recorded span seconds per span name, across all traces."""
    totals: dict[str, float] = {}
    for span in OBS.tracer.iter_spans():
        totals[span.name] = totals.get(span.name, 0.0) + (
            span.duration_seconds or 0.0
        )
    return totals


def test_table2_offline_costs(benchmark, record_result):
    OBS.reset()
    OBS.enable()
    try:
        result = benchmark.pedantic(
            lambda: run_table2(
                car_rows=CAR_ROWS,
                census_rows=CENSUS_ROWS,
                rock_sample=ROCK_SAMPLE,
            ),
            rounds=1,
            iterations=1,
        )
        span_totals = _span_phase_totals()
        text = format_table2(result)
        paper = (
            "paper (25k/45k, ROCK sample 2k): AIMQ 18/24 min total vs "
            "ROCK 95/171 min total — AIMQ ~5-7x cheaper"
        )
        record_result("table2_offline_time", text + "\n" + paper)
    finally:
        OBS.disable()

    # Span-derived phase timings agree with the Table 2 numbers: the
    # MiningTimings each dataset reports *are* the span durations.
    assert sum(result.aimq_supertuple.values()) == pytest.approx(
        span_totals["simmining.supertuples"], rel=1e-9
    )
    assert sum(result.aimq_estimation.values()) == pytest.approx(
        span_totals["simmining.estimate"], rel=1e-9
    )
    # ROCK's struct timings are sub-phases of its fit span.
    rock_struct_total = (
        sum(result.rock_links.values())
        + sum(result.rock_clustering.values())
        + sum(result.rock_labeling.values())
    )
    assert span_totals["rock.fit"] >= rock_struct_total
    OBS.reset()

    for dataset in ("CarDB", "CensusDB"):
        assert result.aimq_total(dataset) > 0
        assert result.rock_total(dataset) > 0
        # The headline claim: AIMQ's offline phase is cheaper.
        assert result.aimq_total(dataset) < result.rock_total(dataset), dataset
