"""Shared benchmark plumbing.

Every benchmark regenerates one of the paper's tables/figures at a
reduced-but-faithful scale, prints the rendered result next to the
paper's reported numbers, and appends the text to
``benchmarks/results/<name>.txt`` so a full run leaves a reviewable
artefact even without ``-s``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.evalx.reporting import format_metrics_appendix

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture()
def record_result():
    """Print a rendered experiment and persist it under results/.

    When observability is enabled during a benchmark, the metrics
    snapshot is appended to the artefact so the work accounting lands
    next to the rendered table.
    """

    def _record(name: str, text: str) -> None:
        appendix = format_metrics_appendix()
        if appendix:
            text = text + "\n\n" + appendix
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print()
        print(text)

    return _record
