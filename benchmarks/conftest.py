"""Shared benchmark plumbing.

Every benchmark regenerates one of the paper's tables/figures at a
reduced-but-faithful scale, prints the rendered result next to the
paper's reported numbers, and appends the text to
``benchmarks/results/<name>.txt`` so a full run leaves a reviewable
artefact even without ``-s``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture()
def record_result():
    """Print a rendered experiment and persist it under results/."""

    def _record(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print()
        print(text)

    return _record
