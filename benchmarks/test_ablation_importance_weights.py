"""Ablation — importance-weighted vs uniform VSim estimation.

§5.2: "all attributes (features) may not be equally important for
deciding the similarity between two categorical values", so supertuple
bag similarities are combined with the mined importance weights.  This
ablation mines the Model similarities twice — weighted and uniform —
and measures which estimator better agrees with the hidden catalogue
affinity (same segment/tier/brand).
"""

import random

from repro.core.config import AIMQSettings
from repro.core.pipeline import build_model_from_sample
from repro.datasets.cardb import generate_cardb
from repro.datasets.catalog import ground_truth_model_affinity
from repro.sampling.collector import nested_samples
from repro.simmining.estimator import ValueSimilarityMiner

CAR_ROWS = 8000
SAMPLE_ROWS = 2500
PROBES = ("Camry", "Civic", "F-150", "Caravan", "325i", "Rio")


def _rank_agreement(model) -> float:
    """Fraction of probe models whose top-3 neighbours are affine
    (ground-truth affinity >= 0.45: same segment or same make)."""
    hits = total = 0
    for probe in PROBES:
        for other, _ in model.top_similar("Model", probe, n=3):
            total += 1
            if ground_truth_model_affinity(probe, other) >= 0.45:
                hits += 1
    return hits / total if total else 0.0


def test_ablation_weighted_vs_uniform_vsim(benchmark, record_result):
    def build():
        table = generate_cardb(CAR_ROWS, seed=7)
        sample = nested_samples(table, [SAMPLE_ROWS], random.Random(8))[
            SAMPLE_ROWS
        ]
        aimq = build_model_from_sample(sample, settings=AIMQSettings())
        weighted = ValueSimilarityMiner(
            config=aimq.settings.simmining,
            importance_weights=aimq.ordering.importance,
        ).mine(sample, attributes=("Model",))
        uniform = ValueSimilarityMiner(
            config=aimq.settings.simmining
        ).mine(sample, attributes=("Model",))
        return weighted, uniform

    weighted, uniform = benchmark.pedantic(build, rounds=1, iterations=1)
    weighted_score = _rank_agreement(weighted)
    uniform_score = _rank_agreement(uniform)
    lines = [
        "Ablation — importance-weighted vs uniform VSim (Model top-3 "
        "affinity precision)",
        f"  weighted: {weighted_score:.3f}",
        f"  uniform:  {uniform_score:.3f}",
    ]
    for probe in PROBES[:3]:
        lines.append(
            f"  {probe}: weighted {weighted.top_similar('Model', probe, 3)}"
        )
    record_result("ablation_importance_weights", "\n".join(lines))

    # Both estimators must be meaningfully better than chance (a random
    # model pick has ~0.2 probability of being affine).
    assert weighted_score >= 0.5
    assert uniform_score >= 0.4
    # The two estimators genuinely differ (the weights matter).
    assert weighted.pairs("Model") != uniform.pairs("Model")
