"""Figure 7 — efficiency of RandomRelax (and the Fig 6/7 comparison).

Paper: at higher thresholds RandomRelax "ends up extracting hundreds of
tuples before finding a relevant tuple" while GuidedRelax stays near 4;
the gap widens with T_sim.

Reproduction target: RandomRelax's work exceeds GuidedRelax's at the
high thresholds and the ratio grows with T_sim.  (At low thresholds the
strategies are close — almost anything extracted clears a 0.5 bar.)
"""

from repro.evalx.experiments import run_relaxation_efficiency
from repro.evalx.reporting import format_efficiency

CAR_ROWS = 25000
SAMPLE_ROWS = 5000
N_QUERIES = 10
THRESHOLDS = (0.5, 0.6, 0.7, 0.8, 0.9)


def test_fig7_random_relax_efficiency(benchmark, record_result):
    random_result = benchmark.pedantic(
        lambda: run_relaxation_efficiency(
            "random",
            car_rows=CAR_ROWS,
            sample_rows=SAMPLE_ROWS,
            n_queries=N_QUERIES,
            thresholds=THRESHOLDS,
        ),
        rounds=1,
        iterations=1,
    )
    guided_result = run_relaxation_efficiency(
        "guided",
        car_rows=CAR_ROWS,
        sample_rows=SAMPLE_ROWS,
        n_queries=N_QUERIES,
        thresholds=THRESHOLDS,
    )
    comparison = "\n".join(
        f"  T_sim={t:.1f}: guided median {guided_result.median_work[t]:8.2f}  "
        f"random median {random_result.median_work[t]:8.2f}  "
        f"ratio "
        f"{random_result.median_work[t] / max(guided_result.median_work[t], 1e-9):6.2f}x"
        for t in THRESHOLDS
    )
    paper = (
        "paper: RandomRelax needs hundreds of tuples per relevant at "
        "T_sim=0.9 vs GuidedRelax's ~4-10 — an order-of-magnitude gap"
    )
    record_result(
        "fig7_random_relax",
        format_efficiency(random_result) + "\n" + comparison + "\n" + paper,
    )

    # Typical work grows with the threshold for the baseline too.
    assert random_result.median_work[0.9] > random_result.median_work[0.5]
    # GuidedRelax wins where it matters (high thresholds), and the
    # advantage grows with T_sim.
    assert random_result.median_work[0.9] > guided_result.median_work[0.9]
    ratio_high = random_result.median_work[0.9] / max(
        guided_result.median_work[0.9], 1e-9
    )
    ratio_mid = random_result.median_work[0.7] / max(
        guided_result.median_work[0.7], 1e-9
    )
    assert ratio_high > 1.5
    assert ratio_high > ratio_mid * 0.9  # non-shrinking gap, noise-tolerant
