"""Figure 5 — the similarity graph for Make=Ford.

Paper: Ford connects to Chevrolet (0.25, strongest), Toyota (0.16),
Dodge (0.15), Nissan (0.12) and Honda (0.11); BMW falls below the
threshold and is disconnected from Ford.

Reproduction target: same neighbourhood shape — Chevrolet is Ford's
strongest neighbour, the volume makes (Toyota/Honda/Dodge/Nissan) are
connected, and BMW is NOT connected at the chosen threshold.
"""

from repro.evalx.experiments import run_fig5
from repro.evalx.reporting import format_fig5

CAR_ROWS = 10000
THRESHOLD = 0.2


def test_fig5_make_similarity_graph(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_fig5(car_rows=CAR_ROWS, threshold=THRESHOLD),
        rounds=1,
        iterations=1,
    )
    paper = (
        "paper: Ford--Chevrolet 0.25 (strongest), --Toyota 0.16, "
        "--Dodge 0.15, --Nissan 0.12, --Honda 0.11; BMW disconnected"
    )
    record_result("fig5_similarity_graph", format_fig5(result) + "\n" + paper)

    neighbors = dict(result.ford_neighbors)
    assert result.ford_neighbors[0][0] == "Chevrolet", "strongest edge"
    for make in ("Toyota", "Honda", "Dodge", "Nissan"):
        assert make in neighbors, f"{make} should connect to Ford"
    assert "BMW" in result.disconnected_from_ford, "BMW must be disconnected"
