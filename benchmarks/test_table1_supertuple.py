"""Table 1 — the supertuple for Make=Ford.

Paper: a 2-column structure with a bag of keywords per unbound
attribute, e.g. ``Model  Focus:5, ZX2:7, F150:8`` and binned
``Mileage 10k-15k:3`` / ``Price 1k-5k:5`` ranges.

Reproduction: same structure from the synthetic CarDB; Ford's model
bag must contain Ford models only and the numeric bags must be range
labels.
"""

from repro.evalx.experiments import run_table1

CAR_ROWS = 5000


def test_table1_supertuple_generation(benchmark, record_result):
    text = benchmark.pedantic(
        lambda: run_table1(car_rows=CAR_ROWS), rounds=1, iterations=1
    )
    record_result("table1_supertuple", text)

    assert "Make=Ford" in text
    # Ford models dominate the Model bag.
    model_line = next(line for line in text.splitlines() if "Model" in line)
    assert any(m in model_line for m in ("F-150", "Focus", "Taurus", "Explorer"))
    # Numeric attributes appear as range labels, as in the paper.
    price_line = next(line for line in text.splitlines() if "Price" in line)
    assert "-" in price_line
