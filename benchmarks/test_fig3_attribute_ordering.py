"""Figure 3 — robustness of attribute ordering over sample sizes.

Paper (15k/25k/50k/100k CarDB): the dependence weight Wt_depends of
each attribute varies in magnitude with sample size, but the *relative
ordering* of attributes is unchanged; Make is the most dependent
attribute (Model determines it) and Model the least dependent.

Reproduction target: same invariance over 15%/25%/50%/100% nested
samples, with Make the most dependent of the non-key attributes.
"""

from repro.evalx.experiments import run_fig3
from repro.evalx.reporting import format_fig3

CAR_ROWS = 10000
FRACTIONS = (0.15, 0.25, 0.5, 1.0)


def test_fig3_attribute_ordering_robust(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_fig3(car_rows=CAR_ROWS, fractions=FRACTIONS),
        rounds=1,
        iterations=1,
    )
    paper = (
        "paper: weights highest at 100k, lowest at 15k, but relative "
        "ordering unchanged; Make most dependent"
    )
    record_result("fig3_attribute_ordering", format_fig3(result) + "\n" + paper)

    assert result.orderings_consistent(), "ordering must survive subsampling"
    # Make is the most dependent attribute in every sample.
    for size in result.sizes:
        weights = {
            name: result.weights[size][name]
            for name in result.dependent_attributes
        }
        assert max(weights, key=weights.get) == "Make", (size, weights)
    # Magnitudes vary with sample size for at least one attribute (the
    # paper's other observation).  Make itself may sit at exactly 1.0 in
    # every sample because Model → Make is an exact dependency.
    varies = any(
        len({round(result.weights[size][name], 6) for size in result.sizes}) > 1
        for name in result.dependent_attributes
    )
    assert varies
