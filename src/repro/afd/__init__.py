"""Dependency Miner: TANE-style AFD and approximate-key discovery.

Implements the paper's §4 substrate: stripped partitions, the g3
approximation measure of Kivinen & Mannila, and a levelwise lattice
search (Huhtala et al.'s TANE) that yields a :class:`DependencyModel`
of approximate functional dependencies and approximate keys.
"""

from repro.afd.g3 import dependency_error, key_error
from repro.afd.model import AFD, ApproximateKey, DependencyModel
from repro.afd.partition import (
    StrippedPartition,
    partition_product,
    partition_single,
)
from repro.afd.tane import TaneConfig, TaneMiner, bin_numeric_column, mine_dependencies

__all__ = [
    "AFD",
    "ApproximateKey",
    "DependencyModel",
    "StrippedPartition",
    "TaneConfig",
    "TaneMiner",
    "bin_numeric_column",
    "dependency_error",
    "key_error",
    "mine_dependencies",
    "partition_product",
    "partition_single",
]
