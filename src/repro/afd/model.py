"""Mined-dependency model: AFDs, approximate keys and their store.

These objects are what the Dependency Miner hands to the rest of AIMQ.
The *support* of a dependency or key is ``1 − g3`` (the fraction of
tuples consistent with it); the *quality* of a key is ``support/size``
(paper §6.2, Figure 4), designed to prefer short keys.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

__all__ = ["AFD", "ApproximateKey", "DependencyModel"]


@dataclass(frozen=True, order=True)
class AFD:
    """An approximate functional dependency ``lhs → rhs``."""

    lhs: tuple[str, ...]
    rhs: str
    error: float
    minimal: bool = field(default=True, compare=False)

    def __post_init__(self) -> None:
        if not self.lhs:
            raise ValueError("AFD needs a non-empty determinant")
        if self.rhs in self.lhs:
            raise ValueError(f"trivial AFD: {self.rhs!r} determines itself")
        if not 0.0 <= self.error <= 1.0:
            raise ValueError(f"g3 error must be in [0, 1], got {self.error}")

    @property
    def support(self) -> float:
        """Fraction of tuples consistent with the dependency (1 − g3)."""
        return 1.0 - self.error

    @property
    def size(self) -> int:
        """Number of determinant attributes (``size(A)`` in Algorithm 2)."""
        return len(self.lhs)

    def describe(self) -> str:
        lhs = ", ".join(self.lhs)
        return f"{{{lhs}}} -> {self.rhs} (support={self.support:.3f})"


@dataclass(frozen=True, order=True)
class ApproximateKey:
    """An approximate key: attribute set nearly unique over the relation."""

    attributes: tuple[str, ...]
    error: float
    minimal: bool = field(default=True, compare=False)

    def __post_init__(self) -> None:
        if not self.attributes:
            raise ValueError("a key needs at least one attribute")
        if not 0.0 <= self.error <= 1.0:
            raise ValueError(f"g3 error must be in [0, 1], got {self.error}")

    @property
    def support(self) -> float:
        return 1.0 - self.error

    @property
    def size(self) -> int:
        return len(self.attributes)

    @property
    def quality(self) -> float:
        """Paper §6.2: support over size, preferring shorter keys."""
        return self.support / self.size

    def describe(self) -> str:
        attrs = ", ".join(self.attributes)
        return (
            f"key{{{attrs}}} (support={self.support:.3f}, "
            f"quality={self.quality:.3f})"
        )


class DependencyModel:
    """Queryable store of the AFDs and keys mined from one sample.

    Attribute-order computation (Algorithm 2) needs three access paths:
    AFDs whose determinant contains an attribute, AFDs whose consequent
    is an attribute, and the best key.  The model indexes all three.
    """

    def __init__(
        self,
        attributes: Iterable[str],
        afds: Iterable[AFD] = (),
        keys: Iterable[ApproximateKey] = (),
        sample_size: int = 0,
    ) -> None:
        self.attributes = tuple(attributes)
        self.sample_size = sample_size
        self._afds: list[AFD] = []
        self._keys: list[ApproximateKey] = []
        self._by_rhs: dict[str, list[AFD]] = {name: [] for name in self.attributes}
        self._by_lhs_member: dict[str, list[AFD]] = {
            name: [] for name in self.attributes
        }
        for afd in afds:
            self.add_afd(afd)
        for key in keys:
            self.add_key(key)

    # -- population ---------------------------------------------------------

    def add_afd(self, afd: AFD) -> None:
        unknown = (set(afd.lhs) | {afd.rhs}) - set(self.attributes)
        if unknown:
            raise ValueError(f"AFD mentions unknown attributes {sorted(unknown)}")
        self._afds.append(afd)
        self._by_rhs[afd.rhs].append(afd)
        for attribute in afd.lhs:
            self._by_lhs_member[attribute].append(afd)

    def add_key(self, key: ApproximateKey) -> None:
        unknown = set(key.attributes) - set(self.attributes)
        if unknown:
            raise ValueError(f"key mentions unknown attributes {sorted(unknown)}")
        self._keys.append(key)

    # -- access paths ---------------------------------------------------------

    @property
    def afds(self) -> tuple[AFD, ...]:
        return tuple(self._afds)

    @property
    def keys(self) -> tuple[ApproximateKey, ...]:
        return tuple(self._keys)

    def __iter__(self) -> Iterator[AFD]:
        return iter(self._afds)

    def afds_determining(self, attribute: str) -> tuple[AFD, ...]:
        """AFDs with ``attribute`` as the consequent (X → attribute)."""
        return tuple(self._by_rhs.get(attribute, ()))

    def afds_with_determinant(self, attribute: str) -> tuple[AFD, ...]:
        """AFDs whose determinant set contains ``attribute``."""
        return tuple(self._by_lhs_member.get(attribute, ()))

    def best_key(self, by: str = "support") -> ApproximateKey | None:
        """The best approximate key, or None if no key was mined.

        ``by`` is ``"support"`` (Algorithm 2's choice) or ``"quality"``
        (the §6.2 metric).  Ties break toward fewer attributes, then by
        name, so the choice is deterministic across runs.
        """
        if not self._keys:
            return None
        if by == "support":
            score = lambda key: key.support  # noqa: E731 - local sort key
        elif by == "quality":
            score = lambda key: key.quality  # noqa: E731 - local sort key
        else:
            raise ValueError(f"unknown key criterion {by!r}")
        return max(
            self._keys,
            key=lambda k: (score(k), -k.size, tuple(reversed(k.attributes))),
        )

    def keys_sorted_by_quality(self) -> list[ApproximateKey]:
        """Keys in ascending quality (the Figure 4 presentation order)."""
        return sorted(self._keys, key=lambda k: (k.quality, k.attributes))

    def dependence_weight(self, attribute: str, minimal_only: bool = True) -> float:
        """Wt_depends(j) = Σ support(A→j)/|A| over mined AFDs (Alg. 2).

        TANE reports minimal dependencies, so the weight sums default to
        minimal AFDs; pass ``minimal_only=False`` to include the flagged
        non-minimal ones as an ablation.
        """
        return sum(
            afd.support / afd.size
            for afd in self.afds_determining(attribute)
            if afd.minimal or not minimal_only
        )

    def decides_weight(self, attribute: str, minimal_only: bool = True) -> float:
        """Wt_decides(k) = Σ support(A→·)/|A| over AFDs with k ∈ A (Alg. 2)."""
        return sum(
            afd.support / afd.size
            for afd in self.afds_with_determinant(attribute)
            if afd.minimal or not minimal_only
        )

    def summary(self) -> str:
        lines = [
            f"DependencyModel over {len(self.attributes)} attributes "
            f"(sample={self.sample_size}): "
            f"{len(self._afds)} AFDs, {len(self._keys)} keys"
        ]
        for afd in sorted(self._afds, key=lambda a: -a.support)[:10]:
            lines.append("  " + afd.describe())
        best = self.best_key()
        if best is not None:
            lines.append("  best " + best.describe())
        return "\n".join(lines)
