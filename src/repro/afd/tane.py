"""Levelwise TANE-style miner for AFDs and approximate keys.

The paper (§4) mines, from a probed sample, every approximate
functional dependency and approximate key whose ``g3`` error is below a
threshold ``T_err``, using the TANE algorithm of Huhtala et al.  This
module implements that search:

* single-attribute stripped partitions are computed from the columns;
* higher levels of the attribute-set lattice are reached via stripped
  partition products (π_X = π_{X∖a} · π_a);
* at each set ``X`` (|X| ≥ 2) the candidate dependencies
  ``X∖{A} → A`` for every ``A ∈ X`` are scored with the g3 measure;
* every set up to ``max_key_size`` is scored as an approximate key.

Minimality is tracked for both artifacts: a dependency is minimal when
no proper subset of its determinant already determines the consequent
within the threshold, and a key is minimal when no proper subset is
itself a valid approximate key.  Non-minimal artifacts are kept (the
paper's CarDB run reports 26 keys, clearly counting non-minimal ones)
but flagged, so callers can filter.

Numeric attributes participate with their raw values by default, which
mirrors the paper; an optional equal-width binning preprocessor is
available because it is a natural ablation (binned numerics produce
denser dependency structure).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import TYPE_CHECKING, Hashable, Mapping, Sequence

from repro.afd.g3 import dependency_error, key_error
from repro.afd.model import AFD, ApproximateKey, DependencyModel
from repro.afd.partition import (
    StrippedPartition,
    partition_product,
    partition_single,
)
from repro.db.schema import RelationSchema
from repro.db.table import Table
from repro.obs.runtime import OBS

if TYPE_CHECKING:
    from repro.obs.tracing import Span

__all__ = ["TaneConfig", "TaneMiner", "mine_dependencies", "bin_numeric_column"]


@dataclass(frozen=True)
class TaneConfig:
    """Knobs of the dependency miner.

    Parameters
    ----------
    error_threshold:
        ``T_err``: keep AFDs with g3 error at or below this value.
    key_error_threshold:
        Separate ``T_err`` for approximate keys (defaults to
        ``error_threshold`` when None).  A key's g3 error counts every
        duplicate tuple, so it grows with sample size even when the
        key's *relative* standing is rock-stable (paper Fig. 4); keys
        therefore usually want a looser threshold than dependencies.
    max_lhs_size:
        Largest determinant size considered for AFDs.
    max_key_size:
        Largest attribute-set size considered for keys.
    keep_non_minimal:
        Record non-minimal AFDs/keys (flagged ``minimal=False``).
    numeric_bins:
        When positive, numeric columns are equal-width binned into this
        many buckets before partitioning (default 0 = raw values).
    filter_trivial_consequents:
        Drop AFDs ``X → A`` when ``A`` is near-constant — when always
        predicting A's majority value already violates at most
        ``error_threshold`` of the tuples, *anything* "determines" A
        and the dependency carries no information (an attribute that
        is 96% zeros, like Census capital-loss, would otherwise absorb
        all of Algorithm 2's dependence weight).
    filter_key_determinants:
        Drop AFDs ``X → A`` when ``X`` is itself an approximate key at
        the threshold — near-unique determinants (raw prices, census
        fnlwgt) trivially determine every attribute, which again says
        nothing about semantic dependence.
    """

    error_threshold: float = 0.15
    key_error_threshold: float | None = None
    max_lhs_size: int = 2
    max_key_size: int = 3
    keep_non_minimal: bool = True
    numeric_bins: int = 0
    filter_trivial_consequents: bool = True
    filter_key_determinants: bool = True

    @property
    def effective_key_threshold(self) -> float:
        if self.key_error_threshold is None:
            return self.error_threshold
        return self.key_error_threshold

    def __post_init__(self) -> None:
        if not 0.0 <= self.error_threshold < 1.0:
            raise ValueError("error_threshold must be in [0, 1)")
        if self.key_error_threshold is not None and not (
            0.0 <= self.key_error_threshold < 1.0
        ):
            raise ValueError("key_error_threshold must be in [0, 1)")
        if self.max_lhs_size < 1:
            raise ValueError("max_lhs_size must be at least 1")
        if self.max_key_size < 1:
            raise ValueError("max_key_size must be at least 1")
        if self.numeric_bins < 0:
            raise ValueError("numeric_bins cannot be negative")


def bin_numeric_column(
    values: Sequence[object], n_bins: int
) -> list[object]:
    """Equal-width bin a numeric column; nulls stay null.

    Returns bin labels (ints); a constant column maps to a single bin.
    """
    if n_bins <= 0:
        raise ValueError("n_bins must be positive")
    present = [v for v in values if v is not None]
    if not present:
        return list(values)
    low = min(present)  # type: ignore[type-var]
    high = max(present)  # type: ignore[type-var]
    if low == high:
        return [None if v is None else 0 for v in values]
    width = (high - low) / n_bins  # type: ignore[operator]
    binned: list[object] = []
    for value in values:
        if value is None:
            binned.append(None)
            continue
        index = int((value - low) / width)  # type: ignore[operator]
        binned.append(min(index, n_bins - 1))
    return binned


def _null_error(partition: StrippedPartition) -> float:
    """g3 error of the majority-value predictor ∅ → A, from π_A."""
    if partition.n_rows == 0:
        return 0.0
    largest = max(
        (len(members) for members in partition.classes), default=1
    )
    return (partition.n_rows - largest) / partition.n_rows


class TaneMiner:
    """Mines a :class:`DependencyModel` from one table (probed sample)."""

    def __init__(self, config: TaneConfig | None = None) -> None:
        self.config = config or TaneConfig()
        self._trivial_rhs: set[int] = set()
        self._pruned: dict[str, int] = {}

    def _prune(self, reason: str) -> None:
        self._pruned[reason] = self._pruned.get(reason, 0) + 1

    # -- public API -----------------------------------------------------------

    def mine(self, table: Table) -> DependencyModel:
        """Run the levelwise search over ``table`` and return the model."""
        schema = table.schema
        columns = {
            attribute.name: table.column(attribute.name) for attribute in schema
        }
        return self.mine_columns(schema, columns, n_rows=len(table))

    def mine_columns(
        self,
        schema: RelationSchema,
        columns: Mapping[str, Sequence[Hashable]],
        n_rows: int,
    ) -> DependencyModel:
        """Mine from raw columns (lets tests drive the miner directly)."""
        config = self.config
        names = schema.attribute_names
        prepared = self._prepare_columns(schema, columns)

        model = DependencyModel(names, sample_size=n_rows)
        if n_rows == 0:
            return model

        with OBS.span(
            "afd.tane.mine", n_rows=n_rows, n_attributes=len(names)
        ) as span:
            self._pruned = {}
            cache: dict[tuple[int, ...], StrippedPartition] = {}
            for index, name in enumerate(names):
                cache[(index,)] = partition_single(prepared[name], n_rows)

            # Consequents for which the majority-value predictor is already
            # within the threshold (see filter_trivial_consequents).
            self._trivial_rhs = set()
            if config.filter_trivial_consequents:
                for index in range(len(names)):
                    if _null_error(cache[(index,)]) <= config.error_threshold:
                        self._trivial_rhs.add(index)

            max_level = max(config.max_lhs_size + 1, config.max_key_size)
            max_level = min(max_level, len(names))

            # Valid determinant sets per consequent, for minimality checks.
            valid_lhs: dict[int, list[frozenset[int]]] = {
                index: [] for index in range(len(names))
            }
            valid_keys: list[frozenset[int]] = []

            self._mine_keys_at_level_one(names, cache, model, valid_keys)

            level_sizes: dict[int, int] = {1: len(names)}
            for level in range(2, max_level + 1):
                level_sizes[level] = 0
                for subset in combinations(range(len(names)), level):
                    level_sizes[level] += 1
                    partition = self._partition_for(subset, cache)
                    if level <= config.max_key_size:
                        self._consider_key(
                            subset, partition, names, model, valid_keys
                        )
                    if level <= config.max_lhs_size + 1:
                        self._consider_afds(
                            subset, partition, names, cache, model, valid_lhs
                        )
            if OBS.enabled:
                self._record_metrics(
                    span, level_sizes, partitions=len(cache), model=model
                )
        return model

    # -- internals ------------------------------------------------------------

    def _prepare_columns(
        self,
        schema: RelationSchema,
        columns: Mapping[str, Sequence[Hashable]],
    ) -> dict[str, Sequence[Hashable]]:
        prepared: dict[str, Sequence[Hashable]] = {}
        for attribute in schema:
            column = columns[attribute.name]
            if attribute.is_numeric and self.config.numeric_bins:
                prepared[attribute.name] = bin_numeric_column(
                    column, self.config.numeric_bins
                )
            else:
                prepared[attribute.name] = column
        return prepared

    @staticmethod
    def _partition_for(
        subset: tuple[int, ...],
        cache: dict[tuple[int, ...], StrippedPartition],
    ) -> StrippedPartition:
        """π_subset via product of the (cached) prefix and last attribute."""
        cached = cache.get(subset)
        if cached is not None:
            return cached
        prefix, last = subset[:-1], subset[-1]
        partition = partition_product(
            TaneMiner._partition_for(prefix, cache), cache[(last,)]
        )
        cache[subset] = partition
        return partition

    def _mine_keys_at_level_one(
        self,
        names: tuple[str, ...],
        cache: dict[tuple[int, ...], StrippedPartition],
        model: DependencyModel,
        valid_keys: list[frozenset[int]],
    ) -> None:
        for index, name in enumerate(names):
            error = key_error(cache[(index,)])
            if error <= self.config.effective_key_threshold:
                model.add_key(
                    ApproximateKey(
                        attributes=(name,), error=error, minimal=True
                    )
                )
                valid_keys.append(frozenset((index,)))

    def _record_metrics(
        self,
        span: "Span",
        level_sizes: dict[int, int],
        partitions: int,
        model: DependencyModel,
    ) -> None:
        """Publish one mining run's lattice statistics."""
        registry = OBS.registry
        sizes = registry.gauge(
            "repro_afd_lattice_level_size",
            "Attribute-set lattice nodes visited at each level.",
            labels=("level",),
        )
        for level, size in level_sizes.items():
            sizes.labels(level=level).set(size)
        registry.counter(
            "repro_afd_partitions_computed_total",
            "Stripped partitions materialised (singles + products).",
        ).inc(partitions)
        pruned = registry.counter(
            "repro_afd_candidates_pruned_total",
            "Candidate dependencies rejected, by reason.",
            labels=("reason",),
        )
        for reason, count in self._pruned.items():
            pruned.labels(reason=reason).inc(count)
        artifacts = registry.counter(
            "repro_afd_artifacts_mined_total",
            "AFDs and approximate keys admitted to the model.",
            labels=("kind",),
        )
        artifacts.labels(kind="afd").inc(len(model.afds))
        artifacts.labels(kind="key").inc(len(model.keys))
        span.set_attribute("afds", len(model.afds))
        span.set_attribute("keys", len(model.keys))
        span.set_attribute("partitions", partitions)

    def _consider_key(
        self,
        subset: tuple[int, ...],
        partition: StrippedPartition,
        names: tuple[str, ...],
        model: DependencyModel,
        valid_keys: list[frozenset[int]],
    ) -> None:
        error = key_error(partition)
        if error > self.config.effective_key_threshold:
            return
        as_set = frozenset(subset)
        minimal = not any(known < as_set for known in valid_keys)
        valid_keys.append(as_set)
        if minimal or self.config.keep_non_minimal:
            model.add_key(
                ApproximateKey(
                    attributes=tuple(names[i] for i in subset),
                    error=error,
                    minimal=minimal,
                )
            )

    def _consider_afds(
        self,
        subset: tuple[int, ...],
        partition: StrippedPartition,
        names: tuple[str, ...],
        cache: dict[tuple[int, ...], StrippedPartition],
        model: DependencyModel,
        valid_lhs: dict[int, list[frozenset[int]]],
    ) -> None:
        for rhs in subset:
            if rhs in self._trivial_rhs:
                self._prune("trivial_consequent")
                continue
            lhs = tuple(i for i in subset if i != rhs)
            lhs_partition = self._partition_for(lhs, cache)
            if (
                self.config.filter_key_determinants
                and key_error(lhs_partition) <= self.config.error_threshold
            ):
                self._prune("key_determinant")
                continue
            error = dependency_error(lhs_partition, partition)
            if error > self.config.error_threshold:
                self._prune("error_threshold")
                continue
            lhs_set = frozenset(lhs)
            minimal = not any(known < lhs_set for known in valid_lhs[rhs])
            valid_lhs[rhs].append(lhs_set)
            if minimal or self.config.keep_non_minimal:
                model.add_afd(
                    AFD(
                        lhs=tuple(names[i] for i in lhs),
                        rhs=names[rhs],
                        error=error,
                        minimal=minimal,
                    )
                )


def mine_dependencies(
    table: Table, config: TaneConfig | None = None
) -> DependencyModel:
    """One-call convenience: mine a dependency model from ``table``."""
    return TaneMiner(config).mine(table)
