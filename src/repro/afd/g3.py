"""The g3 approximation measure (Kivinen & Mannila, 1995).

``g3(X → A)`` is the minimum fraction of tuples that must be removed
from the relation for the functional dependency to hold exactly; the
paper (§4) adopts it for both approximate dependencies and approximate
keys, and it is the measure TANE computes natively from stripped
partitions.

Dependency error
    For each class ``c`` of π_X, keep the largest sub-class of
    π_{X∪A} inside ``c`` and delete the rest:
    ``g3 = Σ_c (|c| − max_subclass(c)) / n``.
    Classes that are singletons in π_X contribute nothing.

Key error
    A set ``X`` is a key when every π_X class is a singleton, so the
    cheapest repair keeps one tuple per class:
    ``g3(X) = (n − |π_X|) / n`` with |π_X| counting singleton classes.
"""

from __future__ import annotations

from repro.afd.partition import StrippedPartition

__all__ = ["dependency_error", "key_error"]


def dependency_error(
    lhs: StrippedPartition, combined: StrippedPartition
) -> float:
    """g3 error of ``X → A`` given π_X (``lhs``) and π_{X∪A} (``combined``).

    Both partitions must range over the same tuple ids.  The caller is
    responsible for ``combined`` actually being the product of the lhs
    partition with the consequent's partition.
    """
    if lhs.n_rows != combined.n_rows:
        raise ValueError(
            f"partition sizes differ: {lhs.n_rows} vs {combined.n_rows}"
        )
    if lhs.n_rows == 0:
        return 0.0

    removed = 0
    for members in lhs.classes:
        # Count how members distribute over combined's stripped classes;
        # tuples absent from every stripped class are singletons there.
        counts: dict[int, int] = {}
        singleton_best = 0
        for row_id in members:
            class_id = combined.class_of(row_id)
            if class_id is None:
                singleton_best = 1
            else:
                counts[class_id] = counts.get(class_id, 0) + 1
        largest = max(counts.values()) if counts else 0
        largest = max(largest, singleton_best)
        removed += len(members) - largest
    return removed / lhs.n_rows


def key_error(partition: StrippedPartition) -> float:
    """g3 error of ``X`` as a key, from π_X.

    Zero when X is an exact key (all classes singletons).
    """
    if partition.n_rows == 0:
        return 0.0
    duplicates = partition.stripped_size - partition.num_stripped_classes
    return duplicates / partition.n_rows
