"""Stripped partitions — TANE's core data structure.

A partition :math:`\\pi_X` groups tuple ids by their values on the
attribute set ``X``.  TANE (Huhtala et al., ICDE 1998) works with
*stripped* partitions: equivalence classes of size one are dropped,
because singletons can never witness a dependency violation.  Two facts
make everything else work:

* :math:`X \\to A` holds exactly when :math:`\\pi_X = \\pi_{X \\cup A}`
  (refinement adds nothing), and
* :math:`\\pi_{X \\cup Y}` is the *product* :math:`\\pi_X \\cdot \\pi_Y`,
  computable in O(n) with two scratch arrays.

The product implementation below is the standard TANE one (their
Algorithm "stripped product"), careful to reuse a probe table ``T``
across classes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Sequence

__all__ = ["StrippedPartition", "partition_single", "partition_product"]


@dataclass(frozen=True)
class StrippedPartition:
    """A stripped partition over ``n_rows`` tuple ids.

    ``classes`` holds only equivalence classes with at least two
    members; every tuple id not present in any class is implicitly a
    singleton class.
    """

    classes: tuple[tuple[int, ...], ...]
    n_rows: int
    # row id -> stripped-class id, built lazily on the first class_of()
    # call.  The TANE mining path compares ranks only, so eagerly
    # materialising this map for every lattice node was pure overhead;
    # only refines() and the g3 error measure ever need it.
    _class_of: dict[int, int] | None = field(
        init=False, repr=False, compare=False, hash=False, default=None
    )

    # -- size measures ----------------------------------------------------

    @property
    def stripped_size(self) -> int:
        """‖π‖: number of tuples that appear in a non-singleton class."""
        return sum(len(members) for members in self.classes)

    @property
    def num_stripped_classes(self) -> int:
        return len(self.classes)

    @property
    def num_classes(self) -> int:
        """Total classes including implicit singletons: |π| unstripped."""
        singletons = self.n_rows - self.stripped_size
        return singletons + len(self.classes)

    @property
    def rank(self) -> int:
        """TANE's error-free check value: ‖π‖ − |stripped classes|.

        π_X == π_{X∪A} (i.e. X→A exactly) iff both partitions have the
        same rank, because refinement can only split classes.
        """
        return self.stripped_size - len(self.classes)

    def class_of(self, row_id: int) -> int | None:
        """Stripped-class id containing ``row_id``, or None (singleton)."""
        class_of = self._class_of
        if class_of is None:
            class_of = {}
            for class_id, members in enumerate(self.classes):
                for row_id_ in members:
                    class_of[row_id_] = class_id
            object.__setattr__(self, "_class_of", class_of)
        return class_of.get(row_id)

    def refines(self, other: "StrippedPartition") -> bool:
        """True when every class of self lies inside a class of other.

        Used only for assertions and property tests; the mining path
        relies on ranks instead.
        """
        for members in self.classes:
            first = members[0]
            target = other.class_of(first)
            for row_id in members[1:]:
                if other.class_of(row_id) != target:
                    return False
            if target is None and len(members) > 1:
                return False
        return True


def partition_single(
    column: Sequence[Hashable], n_rows: int | None = None
) -> StrippedPartition:
    """Build π_{A} from one column of values.

    Null values are treated as a regular (shared) value: two nulls are
    considered equal, which matches how TANE handles missing data and
    keeps partitions total.
    """
    if n_rows is None:
        n_rows = len(column)
    groups: dict[Hashable, list[int]] = {}
    for row_id, value in enumerate(column):
        groups.setdefault(value, []).append(row_id)
    classes = tuple(
        tuple(members) for members in groups.values() if len(members) >= 2
    )
    return StrippedPartition(classes=classes, n_rows=n_rows)


def partition_product(
    left: StrippedPartition, right: StrippedPartition
) -> StrippedPartition:
    """Compute the stripped product π_left · π_right in O(n).

    Implements TANE's two-array algorithm: ``probe`` maps tuple id →
    left-class id, then each right class is split by that mapping.
    """
    if left.n_rows != right.n_rows:
        raise ValueError(
            f"partition sizes differ: {left.n_rows} vs {right.n_rows}"
        )
    # Iterate over the smaller side's classes for the probe table: the
    # product is symmetric, and probing with fewer classes is cheaper.
    if left.stripped_size > right.stripped_size:
        left, right = right, left

    probe: dict[int, int] = {}
    for class_id, members in enumerate(left.classes):
        for row_id in members:
            probe[row_id] = class_id

    new_classes: list[tuple[int, ...]] = []
    bucket: dict[int, list[int]] = {}
    for members in right.classes:
        for row_id in members:
            left_class = probe.get(row_id)
            if left_class is not None:
                bucket.setdefault(left_class, []).append(row_id)
        for group in bucket.values():
            if len(group) >= 2:
                new_classes.append(tuple(group))
        bucket.clear()
    return StrippedPartition(classes=tuple(new_classes), n_rows=left.n_rows)
