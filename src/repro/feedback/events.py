"""Relevance-feedback events.

The paper's conclusion (§7) proposes "us[ing] relevance feedback to
tune the importance weights assigned to an attribute" and "to tune the
distance between values binding an attribute".  A feedback event is the
atom of that loop: the user looked at one answer for one imprecise
query and pronounced it relevant or not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.query import ImpreciseQuery
from repro.db.schema import RelationSchema

__all__ = ["FeedbackEvent", "FeedbackLog"]


@dataclass(frozen=True)
class FeedbackEvent:
    """One user judgement over one answer tuple."""

    query: ImpreciseQuery
    answer_row: tuple
    relevant: bool

    def bindings(self) -> dict[str, object]:
        """The query's likeness bindings this answer was judged against."""
        return {
            constraint.attribute: constraint.value
            for constraint in self.query.like_constraints
        }


class FeedbackLog:
    """An append-only collection of feedback events with summaries."""

    def __init__(self, schema: RelationSchema) -> None:
        self.schema = schema
        self._events: list[FeedbackEvent] = []

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    def record(
        self,
        query: ImpreciseQuery,
        answer_row: Sequence[object],
        relevant: bool,
    ) -> FeedbackEvent:
        query.validate_against(self.schema)
        event = FeedbackEvent(
            query=query, answer_row=tuple(answer_row), relevant=relevant
        )
        self._events.append(event)
        return event

    def record_many(
        self,
        query: ImpreciseQuery,
        judged: Iterable[tuple[Sequence[object], bool]],
    ) -> int:
        count = 0
        for row, relevant in judged:
            self.record(query, row, relevant)
            count += 1
        return count

    @property
    def relevant_events(self) -> list[FeedbackEvent]:
        return [event for event in self._events if event.relevant]

    @property
    def irrelevant_events(self) -> list[FeedbackEvent]:
        return [event for event in self._events if not event.relevant]

    def precision(self) -> float:
        """Fraction of judged answers marked relevant (0 when empty)."""
        if not self._events:
            return 0.0
        return len(self.relevant_events) / len(self._events)
