"""Query-driven attribute importance from past workloads.

The paper's §7 contrasts two families: *data driven* importance (AIMQ,
from column correlations) and *query driven* importance (the authors'
earlier WIDM 2003 work), "decided by the frequency with which [an
attribute] appears in a user query" — noting that query-driven
estimates need a workload that new systems do not have, while being
able to "exploit user interest when the query workloads become
available".  This module supplies that companion path and the blend
between the two.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable

from repro.core.attribute_order import AttributeOrdering
from repro.core.query import ImpreciseQuery
from repro.db.schema import RelationSchema
from repro.feedback.tuning import retune_ordering

__all__ = ["QueryWorkload", "blend_importance"]


class QueryWorkload:
    """An append-only log of imprecise queries issued to the system."""

    def __init__(self, schema: RelationSchema) -> None:
        self.schema = schema
        self._queries: list[ImpreciseQuery] = []
        self._attribute_counts: Counter = Counter()

    def __len__(self) -> int:
        return len(self._queries)

    def __iter__(self):
        return iter(self._queries)

    def record(self, query: ImpreciseQuery) -> None:
        query.validate_against(self.schema)
        self._queries.append(query)
        self._attribute_counts.update(query.bound_attributes)

    def record_many(self, queries: Iterable[ImpreciseQuery]) -> int:
        count = 0
        for query in queries:
            self.record(query)
            count += 1
        return count

    def attribute_frequency(self, attribute: str) -> int:
        """How often ``attribute`` was bound in recorded queries."""
        self.schema.attribute(attribute)
        return self._attribute_counts.get(attribute, 0)

    def importance(self, smoothing: float = 1.0) -> dict[str, float]:
        """Query-driven importance: Laplace-smoothed binding frequency.

        With no recorded queries this degrades to uniform weights —
        the "new system" regime the paper describes.
        """
        if smoothing < 0:
            raise ValueError("smoothing cannot be negative")
        names = self.schema.attribute_names
        raw = {
            name: self._attribute_counts.get(name, 0) + smoothing
            for name in names
        }
        total = sum(raw.values())
        if total == 0:
            uniform = 1.0 / len(names)
            return {name: uniform for name in names}
        return {name: value / total for name, value in raw.items()}


def blend_importance(
    data_ordering: AttributeOrdering,
    workload: QueryWorkload,
    alpha: float = 0.5,
) -> AttributeOrdering:
    """Blend data-driven and query-driven importance.

    ``alpha`` is the weight of the query-driven estimate: 0 returns the
    mined ordering unchanged, 1 trusts the workload alone.  The paper
    positions the two approaches as complements — data-driven for cold
    start, query-driven once workloads accumulate — and a linear blend
    is the natural dial between them.
    """
    if not 0.0 <= alpha <= 1.0:
        raise ValueError("alpha must be in [0, 1]")
    if alpha == 0.0:
        return data_ordering
    query_driven = workload.importance()
    blended = {
        name: (1.0 - alpha) * data_ordering.importance.get(name, 0.0)
        + alpha * query_driven[name]
        for name in workload.schema.attribute_names
    }
    return retune_ordering(data_ordering, blended)
