"""Relevance feedback and query-driven importance (paper §7 extensions).

The paper closes with two proposed extensions: tuning the mined
importance weights and value similarities from user relevance feedback,
and complementing the data-driven importance with query-workload-driven
estimates.  This package implements both.
"""

from repro.feedback.events import FeedbackEvent, FeedbackLog
from repro.feedback.tuning import (
    ImportanceTuner,
    ValueSimilarityTuner,
    retune_ordering,
)
from repro.feedback.workload import QueryWorkload, blend_importance

__all__ = [
    "FeedbackEvent",
    "FeedbackLog",
    "ImportanceTuner",
    "QueryWorkload",
    "ValueSimilarityTuner",
    "blend_importance",
    "retune_ordering",
]
