"""Tuning mined models from relevance feedback (paper §7 future work).

Two tuners mirror the two mined artifacts:

* :class:`ImportanceTuner` adjusts the attribute importance weights.
  The contrastive rule per judged answer: compute each bound
  attribute's agreement with the query, compare it to the answer's
  mean agreement, and move weight toward the attributes that *explain*
  the judgement — in a relevant answer, the attributes that agreed
  more than average get boosted; in an irrelevant answer they get
  penalised (they matched, yet the user was unhappy) while the
  disagreeing attributes — the likely cause of irrelevance — gain.
* :class:`ValueSimilarityTuner` nudges categorical VSim entries: a
  relevant answer whose value differs from the query's pulls that pair
  closer (``s ← s + η(1−s)``), an irrelevant one pushes it away
  (``s ← s(1−η)``).

Both tuners are pure: they return new model objects and never mutate
the mined ones, so a deployment can keep the data-driven baseline and
per-user tuned variants side by side.
"""

from __future__ import annotations

from repro.core.attribute_order import AttributeOrdering
from repro.core.similarity import numeric_similarity
from repro.db.schema import RelationSchema
from repro.feedback.events import FeedbackLog
from repro.simmining.estimator import SimilarityModel

__all__ = ["ImportanceTuner", "ValueSimilarityTuner", "retune_ordering"]


def _clone_similarity(model: SimilarityModel) -> SimilarityModel:
    clone = SimilarityModel(model.attributes)
    for attribute in model.attributes:
        for value in model.known_values(attribute):
            clone.register_value(attribute, value)
        for (a, b), sim in model.pairs(attribute).items():
            clone.record(attribute, a, b, sim)
    return clone


def retune_ordering(
    ordering: AttributeOrdering, new_importance: dict[str, float]
) -> AttributeOrdering:
    """Rebuild an ordering around updated importance weights.

    The relaxation order is re-sorted ascending by the new weights so
    the invariant "least important relaxes first" survives tuning; the
    deciding/dependent split and mined key are carried over unchanged
    (they describe the data, not the user).
    """
    total = sum(new_importance.values())
    if total <= 0:
        raise ValueError("importance weights must have positive mass")
    normalised = {name: w / total for name, w in new_importance.items()}
    position = {name: i for i, name in enumerate(ordering.relaxation_order)}
    new_order = tuple(
        sorted(normalised, key=lambda name: (normalised[name], position[name]))
    )
    return AttributeOrdering(
        relaxation_order=new_order,
        importance=normalised,
        deciding=ordering.deciding,
        dependent=ordering.dependent,
        best_key=ordering.best_key,
        decides_weight=ordering.decides_weight,
        depends_weight=ordering.depends_weight,
    )


class ImportanceTuner:
    """Contrastive multiplicative updates on W_imp from feedback."""

    def __init__(
        self,
        schema: RelationSchema,
        learning_rate: float = 0.1,
        weight_floor: float = 0.01,
    ) -> None:
        if not 0.0 < learning_rate <= 1.0:
            raise ValueError("learning_rate must be in (0, 1]")
        if weight_floor < 0:
            raise ValueError("weight_floor cannot be negative")
        self.schema = schema
        self.learning_rate = learning_rate
        self.weight_floor = weight_floor

    def _agreement(
        self,
        attribute: str,
        expected: object,
        actual: object,
        similarity: SimilarityModel | None,
    ) -> float:
        if expected is None or actual is None:
            return 0.0
        if self.schema.attribute(attribute).is_numeric:
            return numeric_similarity(float(expected), float(actual))  # type: ignore[arg-type]
        if similarity is not None:
            return similarity.similarity(attribute, str(expected), str(actual))
        return 1.0 if expected == actual else 0.0

    def tune(
        self,
        ordering: AttributeOrdering,
        log: FeedbackLog,
        value_similarity: SimilarityModel | None = None,
    ) -> AttributeOrdering:
        """Return a new ordering with feedback-adjusted weights."""
        weights = dict(ordering.importance)
        eta = self.learning_rate
        for event in log:
            bindings = event.bindings()
            if not bindings:
                continue
            agreements = {
                attribute: self._agreement(
                    attribute,
                    expected,
                    event.answer_row[self.schema.position(attribute)],
                    value_similarity,
                )
                for attribute, expected in bindings.items()
            }
            mean_agreement = sum(agreements.values()) / len(agreements)
            direction = 1.0 if event.relevant else -1.0
            for attribute, agreement in agreements.items():
                delta = direction * eta * (agreement - mean_agreement)
                weights[attribute] = max(
                    self.weight_floor, weights.get(attribute, 0.0) * (1.0 + delta)
                )
        return retune_ordering(ordering, weights)


class ValueSimilarityTuner:
    """Per-pair VSim nudges from feedback."""

    def __init__(
        self, schema: RelationSchema, learning_rate: float = 0.1
    ) -> None:
        if not 0.0 < learning_rate <= 1.0:
            raise ValueError("learning_rate must be in (0, 1]")
        self.schema = schema
        self.learning_rate = learning_rate

    def tune(
        self, model: SimilarityModel, log: FeedbackLog
    ) -> SimilarityModel:
        """Return a new similarity model with feedback-adjusted pairs."""
        tuned = _clone_similarity(model)
        eta = self.learning_rate
        for event in log:
            for attribute, expected in event.bindings().items():
                if self.schema.attribute(attribute).is_numeric:
                    continue
                actual = event.answer_row[self.schema.position(attribute)]
                if actual is None or expected == actual:
                    continue
                if attribute not in tuned.attributes:
                    continue
                current = tuned.similarity(attribute, str(expected), str(actual))
                if event.relevant:
                    updated = current + eta * (1.0 - current)
                else:
                    updated = current * (1.0 - eta)
                tuned.record(attribute, str(expected), str(actual), updated)
        return tuned
