"""ROCK's agglomerative clustering over links.

Clusters merge greedily by the *goodness measure*

    g(Ci, Cj) = link(Ci, Cj) /
                ((n_i + n_j)^(1+2f(θ)) − n_i^(1+2f(θ)) − n_j^(1+2f(θ)))

with ``f(θ) = (1−θ)/(1+θ)`` — the denominator is the expected number of
cross links, so goodness rewards pairs with more links than chance.
Merging stops when the requested cluster count is reached or no pair of
clusters shares a link (ROCK never merges link-free clusters).

The implementation keeps per-cluster-pair link counts in a dict and a
global lazy max-heap of goodness entries, invalidated by cluster
version counters — the standard trick that keeps the loop near
O(m log m) in the number of linked pairs.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field

from repro.rock.links import LinkMatrix, compute_links
from repro.rock.neighbors import neighbor_lists

__all__ = ["RockConfig", "RockClustering", "RockTimings", "cluster_rock"]


@dataclass(frozen=True)
class RockConfig:
    """ROCK hyperparameters.

    ``theta`` is the neighbour threshold; ``n_clusters`` the target
    cluster count; ``numeric_bins`` the discretisation used when tuples
    are turned into item sets.
    """

    theta: float = 0.5
    n_clusters: int = 10
    numeric_bins: int = 10

    def __post_init__(self) -> None:
        if not 0.0 <= self.theta < 1.0:
            raise ValueError("theta must be in [0, 1)")
        if self.n_clusters < 1:
            raise ValueError("n_clusters must be at least 1")
        if self.numeric_bins < 1:
            raise ValueError("numeric_bins must be at least 1")

    @property
    def f_theta(self) -> float:
        """ROCK's f(θ) = (1−θ)/(1+θ)."""
        return (1.0 - self.theta) / (1.0 + self.theta)

    @property
    def exponent(self) -> float:
        """The 1 + 2f(θ) exponent of the goodness denominator."""
        return 1.0 + 2.0 * self.f_theta


@dataclass
class RockTimings:
    """Wall-clock accounting for Table 2's ROCK rows."""

    link_seconds: float = 0.0
    clustering_seconds: float = 0.0
    labeling_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return self.link_seconds + self.clustering_seconds + self.labeling_seconds


@dataclass
class RockClustering:
    """Result of clustering the sample: members per cluster."""

    config: RockConfig
    clusters: list[list[int]]
    cluster_of: dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.cluster_of:
            self.cluster_of = {
                point: index
                for index, members in enumerate(self.clusters)
                for point in members
            }

    @property
    def n_clusters(self) -> int:
        return len(self.clusters)

    def members(self, cluster_id: int) -> list[int]:
        return list(self.clusters[cluster_id])


def _goodness(
    links: int, size_a: int, size_b: int, exponent: float
) -> float:
    expected = (
        (size_a + size_b) ** exponent
        - size_a ** exponent
        - size_b ** exponent
    )
    if expected <= 0:  # degenerate only for pathological θ
        return float(links)
    return links / expected


def cluster_rock(
    items: list[frozenset[str]],
    config: RockConfig | None = None,
    timings: RockTimings | None = None,
) -> RockClustering:
    """Cluster item-set points with ROCK's goodness-driven merging."""
    config = config or RockConfig()
    n_points = len(items)
    if n_points == 0:
        return RockClustering(config=config, clusters=[])

    start = time.perf_counter()
    neighbors = neighbor_lists(items, config.theta)
    matrix: LinkMatrix = compute_links(neighbors)
    if timings is not None:
        timings.link_seconds += time.perf_counter() - start

    start = time.perf_counter()
    members: dict[int, list[int]] = {i: [i] for i in range(n_points)}
    version: dict[int, int] = {i: 0 for i in range(n_points)}
    cross_links: dict[tuple[int, int], int] = {
        (a, b): count for a, b, count in matrix.pairs()
    }
    # links per cluster id, for efficient merge updates
    linked_to: dict[int, set[int]] = {i: set() for i in range(n_points)}
    for a, b in cross_links:
        linked_to[a].add(b)
        linked_to[b].add(a)

    exponent = config.exponent
    heap: list[tuple[float, int, int, int, int]] = []
    for (a, b), count in cross_links.items():
        goodness = _goodness(count, 1, 1, exponent)
        heapq.heappush(heap, (-goodness, a, b, version[a], version[b]))

    next_id = n_points
    active = set(members)

    while len(active) > config.n_clusters and heap:
        negative_goodness, a, b, va, vb = heapq.heappop(heap)
        if a not in active or b not in active:
            continue
        if version[a] != va or version[b] != vb:
            continue

        merged_id = next_id
        next_id += 1
        merged_members = members.pop(a) + members.pop(b)
        members[merged_id] = merged_members
        active.discard(a)
        active.discard(b)
        active.add(merged_id)
        version[merged_id] = 0

        # Recompute links from the merged cluster to every neighbour.
        neighbors_of_merged = (linked_to.pop(a) | linked_to.pop(b)) - {a, b}
        linked_to[merged_id] = set()
        # Sorted so link bookkeeping (and therefore tie-breaking among
        # equal-goodness merges) is independent of set hash order.
        for other in sorted(neighbors_of_merged):
            if other not in active:
                continue
            count = cross_links.pop(_pair(a, other), 0) + cross_links.pop(
                _pair(b, other), 0
            )
            if count <= 0:
                continue
            cross_links[_pair(merged_id, other)] = count
            linked_to[merged_id].add(other)
            linked_to[other].discard(a)
            linked_to[other].discard(b)
            linked_to[other].add(merged_id)
            goodness = _goodness(
                count, len(merged_members), len(members[other]), exponent
            )
            heapq.heappush(
                heap,
                (
                    -goodness,
                    merged_id,
                    other,
                    version[merged_id],
                    version[other],
                ),
            )
        # Drop any stale link keys between a/b (now fully migrated).
        version[a] = -1
        version[b] = -1

    clusters = [sorted(members[cid]) for cid in sorted(active)]
    clusters.sort(key=lambda group: (-len(group), group[0]))
    result = RockClustering(config=config, clusters=clusters)
    if timings is not None:
        timings.clustering_seconds += time.perf_counter() - start
    return result


def _pair(a: int, b: int) -> tuple[int, int]:
    return (a, b) if a <= b else (b, a)
