"""Link computation (ROCK's central statistic).

``link(p, q)`` is the number of common neighbours of p and q.  Following
the ROCK paper's algorithm, links are computed by iterating over each
point's neighbour list and crediting every neighbour pair — O(Σ deg²)
overall, the cubic-in-the-worst-case step the AIMQ paper's complexity
comparison (§6.1) points at.
"""

from __future__ import annotations

from collections import defaultdict

__all__ = ["LinkMatrix", "compute_links"]


class LinkMatrix:
    """Sparse symmetric counts of common neighbours between points."""

    def __init__(self, n_points: int) -> None:
        self.n_points = n_points
        self._links: dict[tuple[int, int], int] = defaultdict(int)

    @staticmethod
    def _key(a: int, b: int) -> tuple[int, int]:
        return (a, b) if a <= b else (b, a)

    def increment(self, a: int, b: int, amount: int = 1) -> None:
        self._links[self._key(a, b)] += amount

    def link(self, a: int, b: int) -> int:
        return self._links.get(self._key(a, b), 0)

    def pairs(self) -> list[tuple[int, int, int]]:
        """All linked pairs (a < b, count > 0), deterministic order."""
        return sorted(
            (a, b, count)
            for (a, b), count in self._links.items()
            if count > 0 and a != b
        )

    def __len__(self) -> int:
        return sum(1 for (a, b), c in self._links.items() if c > 0 and a != b)


def compute_links(neighbors: list[list[int]]) -> LinkMatrix:
    """links(p, q) = |N(p) ∩ N(q)| via the neighbour-list pass.

    Each point ``x`` contributes one link to every unordered pair drawn
    from its neighbour list — ROCK's compute_links procedure.  Because
    a point is trivially a neighbour of itself, the lists include the
    centre, and two θ-neighbours p, q therefore link through p and q
    themselves as well as through third parties.
    """
    matrix = LinkMatrix(len(neighbors))
    for neighborhood in neighbors:
        for i, a in enumerate(neighborhood):
            for b in neighborhood[i + 1 :]:
                matrix.increment(a, b)
    return matrix
