"""ROCK's data-labelling phase.

ROCK clusters a random sample, then assigns every remaining (disk-
resident) point to the cluster where it has the most neighbours,
normalised by the cluster's expected neighbour count: point ``p`` joins
the cluster ``C`` maximising

    N_C(p) / (|C| + 1)^f(θ)

where ``N_C(p)`` counts members of C whose similarity to p reaches θ.
Points with no neighbour in any cluster are outliers (label −1).
"""

from __future__ import annotations

import time

from repro.rock.clustering import RockClustering, RockTimings
from repro.rock.neighbors import rock_similarity

__all__ = ["label_points"]


def label_points(
    clustering: RockClustering,
    sample_items: list[frozenset[str]],
    all_items: list[frozenset[str]],
    timings: RockTimings | None = None,
) -> list[int]:
    """Cluster id per point of ``all_items`` (−1 for outliers).

    ``sample_items`` are the points that were clustered;
    ``clustering.clusters`` indexes into that list.
    """
    start = time.perf_counter()
    config = clustering.config
    theta = config.theta
    f_theta = config.f_theta

    normalisers = [
        (len(members) + 1) ** f_theta for members in clustering.clusters
    ]

    labels: list[int] = []
    for point_items in all_items:
        best_cluster = -1
        best_score = 0.0
        for cluster_id, cluster_members in enumerate(clustering.clusters):
            neighbor_count = 0
            for member in cluster_members:
                if rock_similarity(point_items, sample_items[member]) >= theta:
                    neighbor_count += 1
            if neighbor_count == 0:
                continue
            score = neighbor_count / normalisers[cluster_id]
            if score > best_score:
                best_score = score
                best_cluster = cluster_id
        labels.append(best_cluster)
    if timings is not None:
        timings.labeling_seconds += time.perf_counter() - start
    return labels
