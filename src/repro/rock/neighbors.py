"""Point representation and neighbour computation for ROCK.

ROCK (Guha, Rastogi & Shim, ICDE 1999) clusters *categorical* records:
each tuple becomes the set of its attribute-value items, similarity is
the set Jaccard coefficient, and two points are *neighbours* when their
similarity reaches the threshold θ.  Numeric attributes are discretised
into range labels first (ROCK's own market-basket framing assumes
categorical items), reusing the supertuple binners.

This module also carries the O(n²) neighbour-matrix pass whose cost is
the first ROCK row of the paper's Table 2.
"""

from __future__ import annotations

from typing import Sequence

from repro.db.schema import RelationSchema
from repro.db.table import Table
from repro.simmining.bag import jaccard_sets
from repro.simmining.supertuple import NumericBinner, build_binners

__all__ = ["tuple_items", "itemize_table", "neighbor_lists", "rock_similarity"]


def tuple_items(
    row: Sequence[object],
    schema: RelationSchema,
    binners: dict[str, NumericBinner] | None = None,
) -> frozenset[str]:
    """The AV-pair item set of one tuple.

    Items are ``"Attr=value"`` strings; numeric attributes contribute
    their bin label when a binner is supplied and are skipped otherwise.
    Null values contribute nothing.
    """
    binners = binners or {}
    items: list[str] = []
    for attribute in schema:
        value = row[schema.position(attribute.name)]
        if value is None:
            continue
        if attribute.is_numeric:
            binner = binners.get(attribute.name)
            if binner is None:
                continue
            items.append(f"{attribute.name}={binner.label(float(value))}")
        else:
            items.append(f"{attribute.name}={value}")
    return frozenset(items)


def itemize_table(
    table: Table, numeric_bins: int = 10
) -> tuple[list[frozenset[str]], dict[str, NumericBinner]]:
    """Item sets for every row of ``table`` plus the binners used."""
    binners = build_binners(table, numeric_bins)
    schema = table.schema
    items = [tuple_items(row, schema, binners) for row in table]
    return items, binners


def rock_similarity(a: frozenset[str], b: frozenset[str]) -> float:
    """ROCK's similarity: plain set Jaccard over item sets."""
    return jaccard_sets(a, b)


def neighbor_lists(
    items: list[frozenset[str]], theta: float
) -> list[list[int]]:
    """Neighbour ids per point: sim(p, q) ≥ θ (a point is its own
    neighbour, as in the ROCK paper's link definition).

    The O(n²) pairwise pass is the dominating preprocessing cost ROCK
    pays before link computation.
    """
    if not 0.0 <= theta <= 1.0:
        raise ValueError("theta must be in [0, 1]")
    n_points = len(items)
    neighbors: list[list[int]] = [[i] for i in range(n_points)]
    for i in range(n_points):
        items_i = items[i]
        for j in range(i + 1, n_points):
            if rock_similarity(items_i, items[j]) >= theta:
                neighbors[i].append(j)
                neighbors[j].append(i)
    return neighbors
