"""ROCK clustering (Guha et al., ICDE 1999) and the cluster-based
imprecise-query answering system the paper compares AIMQ against."""

from repro.rock.answering import RockAnswer, RockQueryAnswerer
from repro.rock.clustering import (
    RockClustering,
    RockConfig,
    RockTimings,
    cluster_rock,
)
from repro.rock.labeling import label_points
from repro.rock.links import LinkMatrix, compute_links
from repro.rock.neighbors import (
    itemize_table,
    neighbor_lists,
    rock_similarity,
    tuple_items,
)

__all__ = [
    "LinkMatrix",
    "RockAnswer",
    "RockClustering",
    "RockConfig",
    "RockQueryAnswerer",
    "RockTimings",
    "cluster_rock",
    "compute_links",
    "itemize_table",
    "label_points",
    "neighbor_lists",
    "rock_similarity",
    "tuple_items",
]
