"""Imprecise-query answering with ROCK clusters (the paper's comparator).

§6.1: "we also set up another query answering system that uses the ROCK
clustering algorithm to cluster all the tuples in the dataset and then
uses these clusters to determine similar tuples."  Concretely:

* offline, ROCK clusters a sample of the relation and labels every
  tuple with its cluster;
* online, a query (or example tuple) is itemised the same way, routed
  to the cluster where it has the most normalised neighbours, and the
  cluster's tuples are ranked by plain item-set Jaccard to the query.

Note what this baseline shares with AIMQ — domain independence, no user
metrics — and what it lacks: attribute-importance weighting and graded
value similarity.  Both differences are exactly what Figures 8 and 9
measure.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.db.table import Table
from repro.obs.runtime import OBS
from repro.rock.clustering import (
    RockClustering,
    RockConfig,
    RockTimings,
    cluster_rock,
)
from repro.rock.labeling import label_points
from repro.rock.neighbors import itemize_table, rock_similarity, tuple_items
from repro.simmining.supertuple import NumericBinner

__all__ = ["RockAnswer", "RockQueryAnswerer"]


@dataclass(frozen=True)
class RockAnswer:
    """One ranked answer from the ROCK-based system."""

    row_id: int
    row: tuple
    similarity: float
    cluster_id: int


class RockQueryAnswerer:
    """Offline-clustered, cluster-routed top-k answering."""

    def __init__(
        self,
        table: Table,
        config: RockConfig | None = None,
        sample_size: int = 500,
        seed: int = 0,
        rank_mode: str = "cluster",
    ) -> None:
        """``rank_mode`` controls how answers inside the routed cluster
        are ordered:

        * ``"cluster"`` (paper-faithful): ROCK's similarity notion is
          cluster membership plus the binary neighbour relation, so
          θ-neighbours of the query come first and remaining members
          follow in deterministic order — no graded tuple similarity
          exists in the clustering model;
        * ``"jaccard"``: rank members by graded item-set Jaccard to the
          query — a strictly stronger nearest-neighbour hybrid, kept as
          an ablation.
        """
        if rank_mode not in ("cluster", "jaccard"):
            raise ValueError("rank_mode must be 'cluster' or 'jaccard'")
        self.table = table
        self.config = config or RockConfig()
        self.rank_mode = rank_mode
        self.timings = RockTimings()
        self._rng = random.Random(seed)
        self._sample_size = min(sample_size, len(table))
        self._fitted = False
        self._binners: dict[str, NumericBinner] = {}
        self._all_items: list[frozenset[str]] = []
        self._sample_items: list[frozenset[str]] = []
        self._clustering: RockClustering | None = None
        self._labels: list[int] = []
        self._members_by_cluster: dict[int, list[int]] = {}

    # -- offline ------------------------------------------------------------

    def fit(self) -> "RockQueryAnswerer":
        """Cluster the sample and label the full relation."""
        with OBS.span(
            "rock.fit", n_rows=len(self.table), sample=self._sample_size
        ) as root:
            with OBS.span("rock.itemize"):
                self._all_items, self._binners = itemize_table(
                    self.table, self.config.numeric_bins
                )
            if self._sample_size and len(self.table) > self._sample_size:
                sample_ids = sorted(
                    self._rng.sample(range(len(self.table)), self._sample_size)
                )
            else:
                sample_ids = list(range(len(self.table)))
            self._sample_items = [self._all_items[i] for i in sample_ids]

            with OBS.span("rock.cluster"):
                self._clustering = cluster_rock(
                    self._sample_items, self.config, timings=self.timings
                )
            with OBS.span("rock.label"):
                self._labels = label_points(
                    self._clustering,
                    self._sample_items,
                    self._all_items,
                    timings=self.timings,
                )
            self._members_by_cluster = {}
            for row_id, label in enumerate(self._labels):
                self._members_by_cluster.setdefault(label, []).append(row_id)
            root.set_attribute("clusters", len(self._clustering.clusters))
        if OBS.enabled:
            phases = OBS.registry.histogram(
                "repro_rock_fit_seconds",
                "Wall-clock seconds per ROCK offline phase.",
                labels=("phase",),
            )
            phases.labels(phase="links").observe(self.timings.link_seconds)
            phases.labels(phase="clustering").observe(
                self.timings.clustering_seconds
            )
            phases.labels(phase="labeling").observe(
                self.timings.labeling_seconds
            )
        self._fitted = True
        return self

    @property
    def clustering(self) -> RockClustering:
        self._require_fitted()
        assert self._clustering is not None
        return self._clustering

    @property
    def labels(self) -> list[int]:
        self._require_fitted()
        return list(self._labels)

    # -- online ---------------------------------------------------------------

    def answer_example(
        self, row: tuple, k: int = 10, exclude_row_id: int | None = None
    ) -> list[RockAnswer]:
        """Top-k tuples similar to an example tuple."""
        self._require_fitted()
        items = tuple_items(row, self.table.schema, self._binners)
        return self._answer_items(items, k, exclude_row_id)

    def answer_bindings(
        self, bindings: dict[str, object], k: int = 10
    ) -> list[RockAnswer]:
        """Top-k tuples for a partial binding (an imprecise query)."""
        self._require_fitted()
        schema = self.table.schema
        row = [bindings.get(name) for name in schema.attribute_names]
        items = tuple_items(tuple(row), schema, self._binners)
        return self._answer_items(items, k, None)

    def answer_row_id(self, row_id: int, k: int = 10) -> list[RockAnswer]:
        """Top-k tuples similar to an existing tuple (itself excluded)."""
        self._require_fitted()
        return self._answer_items(self._all_items[row_id], k, row_id)

    # -- internals ---------------------------------------------------------

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError("call fit() before answering queries")

    def _route_to_cluster(self, items: frozenset[str]) -> int:
        """Labelling rule applied to the query's item set."""
        assert self._clustering is not None
        theta = self.config.theta
        f_theta = self.config.f_theta
        best_cluster, best_score = -1, 0.0
        for cluster_id, members in enumerate(self._clustering.clusters):
            count = sum(
                1
                for member in members
                if rock_similarity(items, self._sample_items[member]) >= theta
            )
            if count == 0:
                continue
            score = count / ((len(members) + 1) ** f_theta)
            if score > best_score:
                best_cluster, best_score = cluster_id, score
        return best_cluster

    def _answer_items(
        self,
        items: frozenset[str],
        k: int,
        exclude_row_id: int | None,
    ) -> list[RockAnswer]:
        with OBS.span("rock.route_to_cluster"):
            cluster_id = self._route_to_cluster(items)
        candidate_ids = self._members_by_cluster.get(cluster_id, [])
        routed = cluster_id != -1 and bool(candidate_ids)
        if not routed:
            # Outlier query: fall back to a full ranking pass so the
            # system still answers (mirrors labelling every point).
            candidate_ids = range(len(self._all_items))
        if OBS.enabled:
            OBS.registry.counter(
                "repro_rock_queries_total",
                "ROCK queries answered, by routing outcome.",
                labels=("routed",),
            ).labels(routed="yes" if routed else "fallback").inc()
        scored: list[RockAnswer] = []
        theta = self.config.theta
        for row_id in candidate_ids:
            if row_id == exclude_row_id:
                continue
            similarity = rock_similarity(items, self._all_items[row_id])
            if similarity <= 0.0:
                continue
            if self.rank_mode == "cluster":
                # Binary neighbour relation: graded similarity does not
                # exist in ROCK's model, only "neighbour or not".
                rank_score = 1.0 if similarity >= theta else 0.0
            else:
                rank_score = similarity
            scored.append(
                RockAnswer(
                    row_id=row_id,
                    row=self.table.row(row_id),
                    similarity=rank_score,
                    cluster_id=self._labels[row_id],
                )
            )
        scored.sort(key=lambda answer: (-answer.similarity, answer.row_id))
        return scored[:k]
