"""Bags of keywords with bag-semantics Jaccard similarity.

A supertuple attribute is a *bag of keywords*: "we extend the semantics
of a set of keywords by associating an occurrence count for each member
of the set" (paper §5.2, Table 1).  Similarity between two bags uses the
Jaccard coefficient under bag (multiset) semantics:

    SimJ(A, B) = |A ∩ B| / |A ∪ B|

where intersection takes the per-element minimum of counts and union the
per-element maximum.  Because ``max(a, b) = a + b − min(a, b)``, the
union size is computable from the totals and the intersection in one
pass over the smaller bag.
"""

from __future__ import annotations

from collections import Counter
from typing import Hashable, Iterable, Iterator, Mapping

__all__ = ["Bag", "jaccard_bags", "jaccard_sets"]


class Bag:
    """An immutable-by-convention multiset of hashable keywords."""

    __slots__ = ("_counts", "_total")

    def __init__(self, items: Iterable[Hashable] = ()) -> None:
        self._counts: Counter = Counter(items)
        self._total = sum(self._counts.values())

    @classmethod
    def from_counts(cls, counts: Mapping[Hashable, int]) -> "Bag":
        """Build from an explicit ``{keyword: occurrence_count}`` map."""
        bag = cls()
        for keyword, count in counts.items():
            if count < 0:
                raise ValueError(f"negative count {count} for {keyword!r}")
            if count:
                bag._counts[keyword] = count
        bag._total = sum(bag._counts.values())
        return bag

    # -- collection protocol ----------------------------------------------

    def __len__(self) -> int:
        """Total occurrences (with multiplicity)."""
        return self._total

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._counts)

    def __contains__(self, keyword: Hashable) -> bool:
        return keyword in self._counts

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bag):
            return NotImplemented
        return self._counts == other._counts

    def __hash__(self) -> int:  # pragma: no cover - rarely needed
        return hash(frozenset(self._counts.items()))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        head = ", ".join(
            f"{keyword!r}:{count}"
            for keyword, count in sorted(
                self._counts.items(), key=lambda kv: (-kv[1], str(kv[0]))
            )[:6]
        )
        suffix = ", ..." if len(self._counts) > 6 else ""
        return f"Bag({{{head}{suffix}}})"

    # -- accessors ----------------------------------------------------------

    def count(self, keyword: Hashable) -> int:
        return self._counts.get(keyword, 0)

    @property
    def support(self) -> int:
        """Number of distinct keywords."""
        return len(self._counts)

    def counts(self) -> dict[Hashable, int]:
        """Copy of the underlying count map."""
        return dict(self._counts)

    def most_common(self, n: int | None = None) -> list[tuple[Hashable, int]]:
        return self._counts.most_common(n)

    def as_set(self) -> frozenset:
        """Forget multiplicities (set-semantics ablation)."""
        return frozenset(self._counts)

    # -- algebra ---------------------------------------------------------------

    def intersection_size(self, other: "Bag") -> int:
        """|A ∩ B| under bag semantics (sum of per-keyword minimums)."""
        small, large = (
            (self, other) if self.support <= other.support else (other, self)
        )
        return sum(
            min(count, large._counts.get(keyword, 0))
            for keyword, count in small._counts.items()
        )

    def union_size(self, other: "Bag") -> int:
        """|A ∪ B| under bag semantics (sum of per-keyword maximums)."""
        return self._total + other._total - self.intersection_size(other)

    def jaccard(self, other: "Bag") -> float:
        """Bag-semantics Jaccard coefficient in [0, 1].

        Two empty bags are defined to be identical (similarity 1).
        """
        if not self._total and not other._total:
            return 1.0
        intersection = self.intersection_size(other)
        union = self._total + other._total - intersection
        return intersection / union


def jaccard_bags(a: Bag, b: Bag) -> float:
    """Module-level alias of :meth:`Bag.jaccard` (reads better in formulas)."""
    return a.jaccard(b)


def jaccard_sets(a: frozenset, b: frozenset) -> float:
    """Plain set-semantics Jaccard; used by ROCK and the bag-vs-set ablation."""
    if not a and not b:
        return 1.0
    intersection = len(a & b)
    return intersection / (len(a) + len(b) - intersection)
