"""Supertuples: bag-of-keyword summaries of an AV-pair's answer set.

"We represent the answerset containing each AV-pair as a structure
called the supertuple.  The supertuple contains a bag of keywords for
each attribute in the relation not bound by the AV-pair" (paper §5.2,
Table 1).  Categorical co-occurring values enter the bags directly;
numeric values are discretised into range labels — Table 1 itself shows
``Mileage 10k-15k:3`` and ``Price 1k-5k:5`` — so a
:class:`NumericBinner` derived from the sample's extents produces those
labels here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.db.schema import RelationSchema
from repro.db.table import Table
from repro.simmining.avpair import AVPair
from repro.simmining.bag import Bag

__all__ = ["NumericBinner", "SuperTuple", "build_supertuple", "build_binners"]


@dataclass(frozen=True)
class NumericBinner:
    """Equal-width discretiser mapping numbers to range labels."""

    attribute: str
    low: float
    high: float
    n_bins: int

    def __post_init__(self) -> None:
        if self.n_bins < 1:
            raise ValueError("n_bins must be at least 1")
        if self.low > self.high:
            raise ValueError(f"inverted extent {self.low}..{self.high}")

    @property
    def width(self) -> float:
        if self.high == self.low:
            return 1.0
        return (self.high - self.low) / self.n_bins

    def bin_index(self, value: float) -> int:
        """Index of the bin containing ``value`` (clamped to the extent)."""
        if value <= self.low:
            return 0
        if value >= self.high:
            return self.n_bins - 1
        return min(int((value - self.low) / self.width), self.n_bins - 1)

    def label(self, value: float) -> str:
        """Human-readable range label, e.g. ``"10000-15000"``."""
        index = self.bin_index(value)
        bin_low = self.low + index * self.width
        bin_high = bin_low + self.width
        return f"{bin_low:g}-{bin_high:g}"


def build_binners(
    table: Table, n_bins: int = 10
) -> dict[str, NumericBinner]:
    """One binner per numeric attribute, sized to the sample's extent."""
    binners: dict[str, NumericBinner] = {}
    for name in table.schema.numeric_names:
        extent = table.numeric_extent(name)
        if extent is None:
            continue
        low, high = float(extent[0]), float(extent[1])
        binners[name] = NumericBinner(
            attribute=name, low=low, high=high, n_bins=n_bins
        )
    return binners


class SuperTuple:
    """Per-attribute keyword bags describing one AV-pair's answer set."""

    def __init__(
        self,
        avpair: AVPair,
        bags: Mapping[str, Bag],
        answerset_size: int,
    ) -> None:
        self.avpair = avpair
        self._bags = dict(bags)
        self.answerset_size = answerset_size

    @property
    def attributes(self) -> tuple[str, ...]:
        """Attributes summarised by this supertuple (all but the bound one)."""
        return tuple(self._bags)

    def bag(self, attribute: str) -> Bag:
        """The keyword bag for ``attribute`` (empty bag if absent)."""
        return self._bags.get(attribute, Bag())

    def bag_magnitude(self, attribute: str, bag_semantics: bool = True) -> int:
        """Bag size under the active semantics (the SimJ denominator cap).

        Total occurrences under bag semantics, distinct keywords under
        set semantics — the quantity both the prune bound and the
        inverted index cache per vector.
        """
        bag = self.bag(attribute)
        return len(bag) if bag_semantics else bag.support

    def __contains__(self, attribute: str) -> bool:
        return attribute in self._bags

    def describe(self, top: int = 5) -> str:
        """Render in the 2-column style of paper Table 1."""
        lines = [f"SuperTuple[{self.avpair}] ({self.answerset_size} tuples)"]
        for attribute in self.attributes:
            entries = ", ".join(
                f"{keyword}:{count}"
                for keyword, count in self.bag(attribute).most_common(top)
            )
            lines.append(f"  {attribute:<12} {entries}")
        return "\n".join(lines)


def build_supertuple(
    avpair: AVPair,
    rows: Sequence[tuple],
    schema: RelationSchema,
    binners: Mapping[str, NumericBinner] | None = None,
) -> SuperTuple:
    """Summarise ``rows`` (the AV-pair's answer set) into a supertuple.

    ``rows`` must already be the answer set of ``avpair.as_query()``;
    the builder does not re-filter.  Null values contribute nothing to
    the bags.
    """
    binners = binners or {}
    keyword_lists: dict[str, list] = {
        attribute.name: []
        for attribute in schema
        if attribute.name != avpair.attribute
    }
    for row in rows:
        for attribute in schema:
            name = attribute.name
            if name == avpair.attribute:
                continue
            value = row[schema.position(name)]
            if value is None:
                continue
            if attribute.is_numeric and name in binners:
                keyword_lists[name].append(binners[name].label(float(value)))
            else:
                keyword_lists[name].append(value)
    bags = {name: Bag(items) for name, items in keyword_lists.items()}
    return SuperTuple(avpair=avpair, bags=bags, answerset_size=len(rows))
