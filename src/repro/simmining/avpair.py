"""Attribute-Value pairs (AV-pairs).

An AV-pair is "a distinct combination of a categorical attribute and a
value binding the attribute" (paper §5.1), e.g. ``Make=Ford``.  Viewed
as a selection query binding a single attribute, an AV-pair identifies
the set of tuples that *contain* it; that answer set is summarised by a
supertuple and drives value-similarity estimation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.db.predicates import Eq
from repro.db.query import SelectionQuery

__all__ = ["AVPair"]


@dataclass(frozen=True, order=True)
class AVPair:
    """A categorical attribute bound to one of its values."""

    attribute: str
    value: str

    def __post_init__(self) -> None:
        if not self.attribute:
            raise ValueError("AV-pair needs an attribute name")
        if not isinstance(self.value, str) or not self.value:
            raise ValueError(
                f"AV-pair value must be a non-empty string, got {self.value!r}"
            )

    def as_query(self) -> SelectionQuery:
        """The single-attribute selection query this AV-pair denotes."""
        return SelectionQuery((Eq(self.attribute, self.value),))

    def describe(self) -> str:
        return f"{self.attribute}={self.value}"

    def __str__(self) -> str:  # pragma: no cover - delegation
        return self.describe()
