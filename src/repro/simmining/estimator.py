"""Similarity Miner: estimating VSim between categorical values.

For every categorical attribute, every distinct value's answer set is
summarised as a supertuple, and the similarity between two values is the
importance-weighted sum of bag-Jaccard similarities of their supertuples
(paper §5.2):

    VSim(C1, C2) = Σ_i  W_imp(A_i) · SimJ(C1.A_i, C2.A_i)

The pairwise pass over the ``k`` distinct values of each of ``m``
categorical attributes is the O(m·k²) cost the paper contrasts with
ROCK's O(n³) (§6.1): it depends on the number of AV-pairs, not on the
number of tuples.

Three fast paths attack that cost (all opt-in, all provably
result-equivalent to the naive pass — see ``docs/PERFORMANCE.md``):

* **Prune bounds** (``prune_bound=True``): per bag,
  ``SimJ(A, B) ≤ min(|A|, |B|) / max(|A|, |B|)`` (the intersection is
  at most the smaller bag, the union at least the larger), so
  ``Σᵢ wᵢ·boundᵢ < store_threshold`` rejects a pair from its bag sizes
  alone, and a running suffix-bound aborts mid-evaluation once the
  remaining attributes cannot lift the score over the threshold.
* **Parallel estimation** (``workers > 1``): the pair grid of every
  attribute is chunked across a ``ProcessPoolExecutor``; results are
  folded back in deterministic task order.  ``workers=1`` keeps the
  serial loop bit-for-bit.
* **Inverted-index candidate generation** (``use_index=True``): each
  attribute's supertuples are indexed by their ``(attribute, keyword)``
  features (:class:`~repro.simmining.index.SuperTupleIndex`) and only
  pairs sharing at least one feature are evaluated — skipped pairs
  have VSim exactly 0 and could never be stored.  The candidate list
  replaces the pair grid in both the serial and the parallel path, so
  the index composes with ``workers``/``prune_bound`` bit-identically.

``index_topk=True`` additionally attaches a
:class:`~repro.simmining.index.TopSimilarIndex` to the produced model,
making :meth:`SimilarityModel.top_similar` an O(n)-entry merge instead
of a scan over all known values — identical rankings, tie order
included.
"""

from __future__ import annotations

import gc
import heapq
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from types import MappingProxyType
from typing import Iterable, Mapping, Sequence

from repro.db.schema import RelationSchema
from repro.db.table import Table
from repro.obs.runtime import OBS, timed_phase
from repro.simmining.avpair import AVPair
from repro.simmining.bag import jaccard_bags, jaccard_sets
from repro.simmining.index import SuperTupleIndex, TopSimilarIndex
from repro.simmining.supertuple import (
    SuperTuple,
    build_binners,
    build_supertuple,
)

__all__ = [
    "SimilarityMinerConfig",
    "SimilarityModel",
    "ValueSimilarityMiner",
    "MiningTimings",
]


@dataclass(frozen=True)
class SimilarityMinerConfig:
    """Knobs of the value-similarity estimation pass.

    Parameters
    ----------
    numeric_bins:
        Bins used to discretise numeric attributes inside supertuples.
    min_value_count:
        Values rarer than this in the sample get no supertuple (their
        statistics would be noise); they fall back to similarity 0.
    store_threshold:
        Pairs scoring below this are not stored (lookup returns 0.0);
        keeps the model small without changing rankings near the top.
    bag_semantics:
        True (paper) = multiset Jaccard; False = set Jaccard ablation.
    workers:
        Process count for the pairwise estimation pass.  1 (default)
        preserves the serial path bit-for-bit; >1 chunks each
        attribute's pair grid across a ``ProcessPoolExecutor`` and
        produces an identical model (same pairs, same scores).
    prune_bound:
        When True, skip ``_vsim`` for pairs whose bag-size upper bound
        ``Σ wᵢ·min(|Aᵢ|,|Bᵢ|)/max(|Aᵢ|,|Bᵢ|)`` cannot reach
        ``store_threshold``.  Never drops a pair the naive loop would
        have stored; a no-op when ``store_threshold`` is 0.
    parallel_chunk_pairs:
        Pairs per worker task when ``workers > 1``.
    use_index:
        When True, build a :class:`~repro.simmining.index.SuperTupleIndex`
        per attribute and evaluate only the candidate pairs it emits
        (pairs sharing at least one co-occurring keyword or both-empty
        bag).  Skipped pairs have VSim exactly 0, so the produced model
        is bit-identical at any ``store_threshold``; composes with
        ``workers`` and ``prune_bound``.
    index_topk:
        When True, the produced :class:`SimilarityModel` carries a
        :class:`~repro.simmining.index.TopSimilarIndex` per attribute,
        serving ``top_similar`` sublinearly with identical rankings.
    """

    numeric_bins: int = 10
    min_value_count: int = 2
    store_threshold: float = 0.0
    bag_semantics: bool = True
    workers: int = 1
    prune_bound: bool = False
    parallel_chunk_pairs: int = 512
    use_index: bool = False
    index_topk: bool = False

    def __post_init__(self) -> None:
        if self.numeric_bins < 1:
            raise ValueError("numeric_bins must be at least 1")
        if self.min_value_count < 1:
            raise ValueError("min_value_count must be at least 1")
        if not 0.0 <= self.store_threshold < 1.0:
            raise ValueError("store_threshold must be in [0, 1)")
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        if self.parallel_chunk_pairs < 1:
            raise ValueError("parallel_chunk_pairs must be at least 1")


@dataclass
class MiningTimings:
    """Wall-clock accounting for Table 2."""

    supertuple_seconds: float = 0.0
    estimation_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return self.supertuple_seconds + self.estimation_seconds


#: Shared immutable view returned by ``pairs()`` for unknown attributes.
_NO_PAIRS: Mapping[tuple[str, str], float] = MappingProxyType({})


class SimilarityModel:
    """Mined value-similarity lookup for categorical attributes.

    With :meth:`enable_top_index` (or ``index_topk=True`` in the miner
    config) every attribute carries a
    :class:`~repro.simmining.index.TopSimilarIndex` that is maintained
    incrementally by :meth:`record`/:meth:`register_value`, and
    :meth:`top_similar` retrieves sublinearly instead of scanning all
    known values — the rankings are identical either way.
    """

    def __init__(self, attributes: Iterable[str]) -> None:
        self._pairs: dict[str, dict[tuple[str, str], float]] = {
            name: {} for name in attributes
        }
        self._values: dict[str, set[str]] = {name: set() for name in attributes}
        self._pair_views: dict[str, Mapping[tuple[str, str], float]] = {}
        self._top_index: dict[str, TopSimilarIndex] | None = None

    @property
    def attributes(self) -> tuple[str, ...]:
        return tuple(self._pairs)

    @property
    def has_top_index(self) -> bool:
        """Whether ``top_similar`` is served from the neighbour index."""
        return self._top_index is not None

    def enable_top_index(self) -> None:
        """Attach (and backfill) a per-attribute top-k retrieval index.

        Safe to call at any point: pairs and values recorded so far are
        replayed into the index, later ones are indexed incrementally.
        Idempotent.
        """
        if self._top_index is not None:
            return
        index = {name: TopSimilarIndex() for name in self._pairs}
        for name, values in self._values.items():
            for value in sorted(values):
                index[name].register(value)
        for name, pairs in self._pairs.items():
            for (value_a, value_b), similarity in pairs.items():
                index[name].record(value_a, value_b, similarity)
        self._top_index = index

    def known_values(self, attribute: str) -> frozenset[str]:
        return frozenset(self._values.get(attribute, ()))

    def record(
        self, attribute: str, value_a: str, value_b: str, similarity: float
    ) -> None:
        if attribute not in self._pairs:
            raise KeyError(f"unknown categorical attribute {attribute!r}")
        if not 0.0 <= similarity <= 1.0:
            raise ValueError(f"similarity {similarity} out of [0, 1]")
        key = (value_a, value_b) if value_a <= value_b else (value_b, value_a)
        self._pairs[attribute][key] = similarity
        self._values[attribute].update((value_a, value_b))
        if self._top_index is not None:
            self._top_index[attribute].record(value_a, value_b, similarity)

    def register_value(self, attribute: str, value: str) -> None:
        """Mark a value as seen even if it stores no pairs."""
        self._values[attribute].add(value)
        if self._top_index is not None:
            self._top_index[attribute].register(value)

    def similarity(self, attribute: str, value_a: str, value_b: str) -> float:
        """VSim lookup: 1 for identical values, 0 for unknown pairs."""
        if value_a == value_b:
            return 1.0
        pairs = self._pairs.get(attribute)
        if pairs is None:
            return 0.0
        key = (value_a, value_b) if value_a <= value_b else (value_b, value_a)
        return pairs.get(key, 0.0)

    def top_similar(
        self, attribute: str, value: str, n: int = 3
    ) -> list[tuple[str, float]]:
        """The ``n`` most similar other values (paper Table 3 rows)."""
        if self._top_index is not None:
            index = self._top_index.get(attribute)
            if index is not None:
                # Sorted-neighbour-list merge: identical ranking (tie
                # order included) touching only ~n entries.
                return index.top(value, n)
        scored = [
            (other, self.similarity(attribute, value, other))
            for other in self._values.get(attribute, ())
            if other != value
        ]
        # nsmallest(n, key=...) == sorted(key=...)[:n] by contract, so
        # the Table 3 rows are unchanged while only an n-sized heap is
        # kept over the k known values.
        return heapq.nsmallest(n, scored, key=lambda pair: (-pair[1], pair[0]))

    def max_similarity(self, attribute: str, value: str) -> float:
        """Upper bound on ``similarity(value, other)`` over ``other ≠ value``.

        Exact (the largest stored pair score involving ``value``) when
        the top index is enabled; the trivial bound 1.0 otherwise.
        Identical values always score 1.0 and are outside this bound —
        callers handle equality separately.
        """
        if self._top_index is None:
            return 1.0
        index = self._top_index.get(attribute)
        if index is None:
            # Unmined attribute: every non-identical lookup returns 0.
            return 0.0
        return index.max_score(value)

    def pairs(self, attribute: str) -> Mapping[tuple[str, str], float]:
        """Read-only **live view** of one attribute's stored pair scores.

        Contract: the returned mapping reflects later :meth:`record`
        calls and must not be mutated (it is a ``MappingProxyType``);
        copy it (``dict(model.pairs(a))``) to snapshot.  Views are
        memoised, so hot-path callers iterating per access (the Figure
        5 graph builder, feedback tuners, the model store) no longer
        pay an O(pairs) copy per call.
        """
        view = self._pair_views.get(attribute)
        if view is None:
            store = self._pairs.get(attribute)
            if store is None:
                return _NO_PAIRS
            view = MappingProxyType(store)
            self._pair_views[attribute] = view
        return view

    def pair_count(self) -> int:
        return sum(len(pairs) for pairs in self._pairs.values())


class ValueSimilarityMiner:
    """Builds a :class:`SimilarityModel` from a local sample table."""

    def __init__(
        self,
        config: SimilarityMinerConfig | None = None,
        importance_weights: Mapping[str, float] | None = None,
    ) -> None:
        self.config = config or SimilarityMinerConfig()
        self.importance_weights = dict(importance_weights or {})
        self.timings = MiningTimings()
        self._supertuples: dict[AVPair, SuperTuple] = {}
        self._supertuple_attributes: frozenset[str] = frozenset()

    # -- supertuple generation --------------------------------------------

    def build_supertuples(
        self, table: Table, attributes: Iterable[str] | None = None
    ) -> dict[AVPair, SuperTuple]:
        """Phase 1 (Table 2's "SuperTuple Generation").

        Builds one supertuple per sufficiently frequent AV-pair over the
        given categorical attributes (default: all of them).
        """
        schema = table.schema
        names = tuple(attributes) if attributes is not None else schema.categorical_names
        for name in names:
            if not schema.attribute(name).is_categorical:
                raise ValueError(f"attribute {name!r} is not categorical")
        observing = OBS.enabled
        with timed_phase(
            "simmining.supertuples",
            histogram="repro_simmining_phase_seconds",
            help_text="Wall-clock seconds per similarity-mining phase.",
            labels={"phase": "supertuple"},
            n_attributes=len(names),
        ) as phase:
            binners = build_binners(table, self.config.numeric_bins)
            supertuples: dict[AVPair, SuperTuple] = {}
            for name in names:
                attribute_start = time.perf_counter() if observing else 0.0
                index = table.hash_index(name) or table.create_hash_index(name)
                for value in index.distinct_values():
                    row_ids = index.lookup(value)
                    if len(row_ids) < self.config.min_value_count:
                        continue
                    avpair = AVPair(name, value)
                    supertuples[avpair] = build_supertuple(
                        avpair, table.rows(row_ids), schema, binners
                    )
                if observing:
                    OBS.registry.histogram(
                        "repro_simmining_supertuple_build_seconds",
                        "Supertuple construction time per attribute.",
                        labels=("attribute",),
                    ).labels(attribute=name).observe(
                        time.perf_counter() - attribute_start
                    )
        if observing:
            OBS.registry.counter(
                "repro_simmining_supertuples_total",
                "Supertuples built over sufficiently frequent AV-pairs.",
            ).inc(len(supertuples))
        self._supertuples = supertuples
        self._supertuple_attributes = frozenset(names)
        self.timings.supertuple_seconds += phase.elapsed_seconds
        return supertuples

    # -- pairwise estimation ------------------------------------------------

    def estimate(
        self, table: Table, attributes: Iterable[str] | None = None
    ) -> SimilarityModel:
        """Phase 2 (Table 2's "Similarity Estimation"): full VSim model.

        Supertuples are rebuilt automatically when the requested
        attribute set is not covered by the set
        :meth:`build_supertuples` last ran with — previously a stale
        build was silently reused and never-built attributes produced
        no pairs at all.
        """
        schema = table.schema
        names = tuple(attributes) if attributes is not None else schema.categorical_names
        if not set(names) <= self._supertuple_attributes:
            self.build_supertuples(table, names)
        config = self.config
        observing = OBS.enabled
        pair_evaluations = 0
        pairs_pruned = 0
        index_candidates = 0
        index_skipped = 0
        index_postings = 0
        with timed_phase(
            "simmining.estimate",
            histogram="repro_simmining_phase_seconds",
            help_text="Wall-clock seconds per similarity-mining phase.",
            labels={"phase": "estimation"},
            n_attributes=len(names),
        ) as phase:
            model = SimilarityModel(names)
            if config.index_topk:
                model.enable_top_index()
            by_attribute: dict[str, list[SuperTuple]] = {name: [] for name in names}
            for avpair, supertuple in self._supertuples.items():
                if avpair.attribute in by_attribute:
                    by_attribute[avpair.attribute].append(supertuple)
            jobs: list[tuple[str, list[SuperTuple], tuple[tuple[str, float], ...]]] = []
            for name in names:
                supertuples = sorted(
                    by_attribute[name], key=lambda st: st.avpair.value
                )
                for supertuple in supertuples:
                    model.register_value(name, supertuple.avpair.value)
                weights = self._attribute_weights(schema, bound=name)
                # Zero-weight attributes are skipped by _vsim anyway;
                # filtering here (in iteration order) keeps the exact
                # accumulation order of the naive loop.
                weight_items = tuple(
                    (attr, weight)
                    for attr, weight in weights.items()
                    if weight != 0.0
                )
                jobs.append((name, supertuples, weight_items))

            pair_lists: dict[str, list[tuple[int, int]]] | None = None
            if config.use_index:
                # Candidate generation via posting-list intersection:
                # only pairs sharing a feature survive, in the exact
                # grid order, so evaluation folds bit-identically and
                # every skipped pair has VSim exactly 0 (the empty-bag
                # sentinel keeps ∅-vs-∅ pairs, whose SimJ is 1).
                pair_lists = {}
                for name, supertuples, weight_items in jobs:
                    build_start = time.perf_counter() if observing else 0.0
                    index = SuperTupleIndex(
                        weight_items, bag_semantics=config.bag_semantics
                    )
                    for supertuple in supertuples:
                        index.add(supertuple)
                    candidates = index.candidate_pairs(
                        [st.avpair.value for st in supertuples]
                    )
                    pair_lists[name] = candidates
                    grid_size = len(supertuples) * (len(supertuples) - 1) // 2
                    index_candidates += len(candidates)
                    index_skipped += grid_size - len(candidates)
                    index_postings += index.posting_count
                    if observing:
                        OBS.registry.histogram(
                            "repro_simmining_index_build_seconds",
                            "Inverted-index construction time per "
                            "attribute.",
                            buckets=(
                                0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0,
                            ),
                        ).observe(time.perf_counter() - build_start)

            if config.workers > 1:
                outcomes = self._estimate_parallel(jobs, pair_lists)
            else:
                outcomes = [
                    (
                        name,
                        _evaluate_pairs(
                            supertuples,
                            weight_items,
                            pair_lists[name]
                            if pair_lists is not None
                            else _pair_grid(len(supertuples)),
                            bag_semantics=config.bag_semantics,
                            store_threshold=config.store_threshold,
                            prune=config.prune_bound,
                        ),
                    )
                    for name, supertuples, weight_items in jobs
                ]
            for name, (stored, evaluated, pruned) in outcomes:
                pair_evaluations += evaluated
                pairs_pruned += pruned
                for value_a, value_b, score in stored:
                    model.record(name, value_a, value_b, score)
        if observing:
            OBS.registry.counter(
                "repro_simmining_pair_evaluations_total",
                "VSim evaluations over AV-pair supertuple pairs (the "
                "paper's O(m*k^2) cost).",
            ).inc(pair_evaluations)
            OBS.registry.counter(
                "repro_simmining_pairs_pruned_total",
                "Supertuple pairs skipped by the bag-size upper bound "
                "before (or during) VSim evaluation.",
            ).inc(pairs_pruned)
            if config.use_index:
                OBS.registry.counter(
                    "repro_simmining_index_candidate_pairs_total",
                    "Supertuple pairs emitted by posting-list "
                    "intersection.",
                ).inc(index_candidates)
                OBS.registry.counter(
                    "repro_simmining_index_pairs_skipped_total",
                    "Grid pairs skipped as provably VSim 0 (no shared "
                    "feature).",
                ).inc(index_skipped)
                OBS.registry.counter(
                    "repro_simmining_index_postings_total",
                    "Posting entries inserted while building supertuple "
                    "indexes.",
                ).inc(index_postings)
        self.timings.estimation_seconds += phase.elapsed_seconds
        return model

    def _estimate_parallel(
        self,
        jobs: list[tuple[str, list[SuperTuple], tuple[tuple[str, float], ...]]],
        pair_lists: dict[str, list[tuple[int, int]]] | None = None,
    ) -> list[tuple[str, tuple[list[tuple[str, str, float]], int, int]]]:
        """Chunk every attribute's pair list across a process pool.

        The pairs are the full grid, or — with ``use_index`` — the
        index's candidate list (``pair_lists``), which is a subsequence
        of the grid in the grid's order, so chunking and folding are
        unchanged.  The shared supertuples travel once per worker (pool
        initializer); tasks carry only ``(attribute, pair indices)``.
        Results fold back in deterministic task order, and a pool that
        cannot start (sandboxed fork, missing semaphores) degrades to
        the serial path rather than failing the build.
        """
        config = self.config

        def pairs_for(name: str, count: int) -> list[tuple[int, int]]:
            if pair_lists is not None:
                return pair_lists[name]
            return _pair_grid(count)

        context = {
            "supertuples": {name: supertuples for name, supertuples, _ in jobs},
            "weights": {name: weight_items for name, _, weight_items in jobs},
            "bag_semantics": config.bag_semantics,
            "store_threshold": config.store_threshold,
            "prune": config.prune_bound,
        }
        tasks: list[tuple[str, list[tuple[int, int]]]] = []
        for name, supertuples, _ in jobs:
            grid = pairs_for(name, len(supertuples))
            for start in range(0, len(grid), config.parallel_chunk_pairs):
                tasks.append(
                    (name, grid[start : start + config.parallel_chunk_pairs])
                )
        # Workers are forked, so they inherit the parent's whole object
        # graph; without a freeze every collection in parent or child
        # rescans that inherited heap (and COW-faults its pages), which
        # can dwarf the scoring work itself when the parent is large.
        # Freezing exempts pre-fork objects from collection for the
        # pool's lifetime; the parent thaws afterwards.
        gc.collect()
        gc.freeze()
        try:
            try:
                with ProcessPoolExecutor(
                    max_workers=config.workers,
                    initializer=_init_vsim_worker,
                    initargs=(context,),
                ) as pool:
                    chunk_results = list(pool.map(_score_vsim_chunk, tasks))
            except (OSError, PermissionError):
                return [
                    (
                        name,
                        _evaluate_pairs(
                            supertuples,
                            weight_items,
                            pairs_for(name, len(supertuples)),
                            bag_semantics=config.bag_semantics,
                            store_threshold=config.store_threshold,
                            prune=config.prune_bound,
                        ),
                    )
                    for name, supertuples, weight_items in jobs
                ]
        finally:
            gc.unfreeze()
        merged: dict[str, tuple[list[tuple[str, str, float]], int, int]] = {
            name: ([], 0, 0) for name, _, _ in jobs
        }
        for (name, _), (stored, evaluated, pruned) in zip(tasks, chunk_results):
            previous = merged[name]
            merged[name] = (
                previous[0] + stored,
                previous[1] + evaluated,
                previous[2] + pruned,
            )
        return [(name, merged[name]) for name, _, _ in jobs]

    def mine(
        self, table: Table, attributes: Iterable[str] | None = None
    ) -> SimilarityModel:
        """Both phases in one call."""
        self.build_supertuples(table, attributes)
        return self.estimate(table, attributes)

    # -- internals ---------------------------------------------------------

    def _attribute_weights(
        self, schema: RelationSchema, bound: str
    ) -> dict[str, float]:
        """Importance weights over the supertuple attributes (≠ bound).

        Uses the caller-supplied W_imp when given (renormalised over the
        unbound attributes), else uniform weights.
        """
        names = [n for n in schema.attribute_names if n != bound]
        if self.importance_weights:
            raw = {n: max(self.importance_weights.get(n, 0.0), 0.0) for n in names}
            total = sum(raw.values())
            if total > 0:
                return {n: w / total for n, w in raw.items()}
        uniform = 1.0 / len(names) if names else 0.0
        return {n: uniform for n in names}

    def _vsim(
        self,
        left: SuperTuple,
        right: SuperTuple,
        weights: Mapping[str, float],
    ) -> float:
        score = 0.0
        for attribute, weight in weights.items():
            if weight == 0.0:
                continue
            left_bag = left.bag(attribute)
            right_bag = right.bag(attribute)
            if self.config.bag_semantics:
                score += weight * jaccard_bags(left_bag, right_bag)
            else:
                score += weight * jaccard_sets(
                    left_bag.as_set(), right_bag.as_set()
                )
        return min(score, 1.0)


# -- pair-grid evaluation (shared by the serial and parallel paths) ----------

#: Slack applied to the *mid-evaluation* suffix-bound cutoff.  The
#: whole-pair bound is FP-safe without slack (every rounded operation is
#: monotone and term-wise dominates the score's), but the running cutoff
#: mixes evaluated terms with bound terms, so a generous margin — ~1e6×
#: the worst-case rounding error at these magnitudes — keeps it sound.
_PRUNE_SLACK = 1e-9


def _pair_grid(n: int) -> list[tuple[int, int]]:
    """Index pairs ``(i, j), i < j`` in the naive loop's order."""
    return [(i, j) for i in range(n) for j in range(i + 1, n)]


def _bag_magnitude(supertuple: SuperTuple, attribute: str, bag_semantics: bool) -> int:
    return supertuple.bag_magnitude(attribute, bag_semantics)


def _evaluate_pairs(
    supertuples: Sequence[SuperTuple],
    weight_items: Sequence[tuple[str, float]],
    pairs: Sequence[tuple[int, int]],
    bag_semantics: bool,
    store_threshold: float,
    prune: bool,
) -> tuple[list[tuple[str, str, float]], int, int]:
    """Score index ``pairs`` over one attribute's supertuples.

    Returns ``(stored, evaluated, pruned)`` where ``stored`` holds
    ``(value_a, value_b, score)`` triples that clear the store
    threshold, ``evaluated`` counts full VSim evaluations and
    ``pruned`` counts pairs rejected by the upper bound (outright or
    mid-evaluation).  With ``prune=False`` this is the naive pass.
    """
    stored: list[tuple[str, str, float]] = []
    evaluated = 0
    pruned = 0
    sizes: list[tuple[int, ...]] | None = None
    if prune and store_threshold > 0.0:
        sizes = [
            tuple(
                _bag_magnitude(st, attribute, bag_semantics)
                for attribute, _ in weight_items
            )
            for st in supertuples
        ]
    for i, j in pairs:
        left = supertuples[i]
        right = supertuples[j]
        if sizes is None:
            evaluated += 1
            score = 0.0
            for attribute, weight in weight_items:
                left_bag = left.bag(attribute)
                right_bag = right.bag(attribute)
                if bag_semantics:
                    score += weight * jaccard_bags(left_bag, right_bag)
                else:
                    score += weight * jaccard_sets(
                        left_bag.as_set(), right_bag.as_set()
                    )
            score = min(score, 1.0)
        else:
            # Per-term upper bounds from bag sizes alone:
            # SimJ(A, B) ≤ min(|A|, |B|) / max(|A|, |B|).
            left_sizes = sizes[i]
            right_sizes = sizes[j]
            bounds: list[float] = []
            total_bound = 0.0
            for t, (_, weight) in enumerate(weight_items):
                size_a = left_sizes[t]
                size_b = right_sizes[t]
                if size_a == 0 and size_b == 0:
                    ratio = 1.0  # two empty bags are identical (SimJ = 1)
                elif size_a == 0 or size_b == 0:
                    ratio = 0.0
                else:
                    ratio = (
                        (size_a if size_a < size_b else size_b)
                        / (size_a if size_a > size_b else size_b)
                    )
                term_bound = weight * ratio
                bounds.append(term_bound)
                total_bound += term_bound
            if total_bound < store_threshold:
                pruned += 1
                continue
            # Suffix sums of the remaining bounds for the running cutoff.
            suffix = [0.0] * len(bounds)
            acc = 0.0
            for t in range(len(bounds) - 1, 0, -1):
                acc += bounds[t]
                suffix[t - 1] = acc
            score = 0.0
            aborted = False
            for t, (attribute, weight) in enumerate(weight_items):
                left_bag = left.bag(attribute)
                right_bag = right.bag(attribute)
                if bag_semantics:
                    score += weight * jaccard_bags(left_bag, right_bag)
                else:
                    score += weight * jaccard_sets(
                        left_bag.as_set(), right_bag.as_set()
                    )
                if score + suffix[t] < store_threshold - _PRUNE_SLACK:
                    aborted = True
                    break
            if aborted:
                pruned += 1
                continue
            evaluated += 1
            score = min(score, 1.0)
        if score >= store_threshold and score > 0.0:
            stored.append((left.avpair.value, right.avpair.value, score))
    return stored, evaluated, pruned


# -- process-pool plumbing ----------------------------------------------------

#: Per-worker context installed by the pool initializer so task payloads
#: stay small (attribute name + index pairs, not the supertuples).
_WORKER_CONTEXT: dict | None = None


def _init_vsim_worker(context: dict) -> None:
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = context


def _score_vsim_chunk(
    task: tuple[str, list[tuple[int, int]]],
) -> tuple[list[tuple[str, str, float]], int, int]:
    name, pairs = task
    context = _WORKER_CONTEXT
    assert context is not None, "worker used before initializer ran"
    return _evaluate_pairs(
        context["supertuples"][name],
        context["weights"][name],
        pairs,
        bag_semantics=context["bag_semantics"],
        store_threshold=context["store_threshold"],
        prune=context["prune"],
    )
