"""Similarity Miner: estimating VSim between categorical values.

For every categorical attribute, every distinct value's answer set is
summarised as a supertuple, and the similarity between two values is the
importance-weighted sum of bag-Jaccard similarities of their supertuples
(paper §5.2):

    VSim(C1, C2) = Σ_i  W_imp(A_i) · SimJ(C1.A_i, C2.A_i)

The pairwise pass over the ``k`` distinct values of each of ``m``
categorical attributes is the O(m·k²) cost the paper contrasts with
ROCK's O(n³) (§6.1): it depends on the number of AV-pairs, not on the
number of tuples.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.db.schema import RelationSchema
from repro.db.table import Table
from repro.obs.runtime import OBS, timed_phase
from repro.simmining.avpair import AVPair
from repro.simmining.bag import jaccard_bags, jaccard_sets
from repro.simmining.supertuple import (
    SuperTuple,
    build_binners,
    build_supertuple,
)

__all__ = [
    "SimilarityMinerConfig",
    "SimilarityModel",
    "ValueSimilarityMiner",
    "MiningTimings",
]


@dataclass(frozen=True)
class SimilarityMinerConfig:
    """Knobs of the value-similarity estimation pass.

    Parameters
    ----------
    numeric_bins:
        Bins used to discretise numeric attributes inside supertuples.
    min_value_count:
        Values rarer than this in the sample get no supertuple (their
        statistics would be noise); they fall back to similarity 0.
    store_threshold:
        Pairs scoring below this are not stored (lookup returns 0.0);
        keeps the model small without changing rankings near the top.
    bag_semantics:
        True (paper) = multiset Jaccard; False = set Jaccard ablation.
    """

    numeric_bins: int = 10
    min_value_count: int = 2
    store_threshold: float = 0.0
    bag_semantics: bool = True

    def __post_init__(self) -> None:
        if self.numeric_bins < 1:
            raise ValueError("numeric_bins must be at least 1")
        if self.min_value_count < 1:
            raise ValueError("min_value_count must be at least 1")
        if not 0.0 <= self.store_threshold < 1.0:
            raise ValueError("store_threshold must be in [0, 1)")


@dataclass
class MiningTimings:
    """Wall-clock accounting for Table 2."""

    supertuple_seconds: float = 0.0
    estimation_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return self.supertuple_seconds + self.estimation_seconds


class SimilarityModel:
    """Mined value-similarity lookup for categorical attributes."""

    def __init__(self, attributes: Iterable[str]) -> None:
        self._pairs: dict[str, dict[tuple[str, str], float]] = {
            name: {} for name in attributes
        }
        self._values: dict[str, set[str]] = {name: set() for name in attributes}

    @property
    def attributes(self) -> tuple[str, ...]:
        return tuple(self._pairs)

    def known_values(self, attribute: str) -> frozenset[str]:
        return frozenset(self._values.get(attribute, ()))

    def record(
        self, attribute: str, value_a: str, value_b: str, similarity: float
    ) -> None:
        if attribute not in self._pairs:
            raise KeyError(f"unknown categorical attribute {attribute!r}")
        if not 0.0 <= similarity <= 1.0:
            raise ValueError(f"similarity {similarity} out of [0, 1]")
        key = (value_a, value_b) if value_a <= value_b else (value_b, value_a)
        self._pairs[attribute][key] = similarity
        self._values[attribute].update((value_a, value_b))

    def register_value(self, attribute: str, value: str) -> None:
        """Mark a value as seen even if it stores no pairs."""
        self._values[attribute].add(value)

    def similarity(self, attribute: str, value_a: str, value_b: str) -> float:
        """VSim lookup: 1 for identical values, 0 for unknown pairs."""
        if value_a == value_b:
            return 1.0
        pairs = self._pairs.get(attribute)
        if pairs is None:
            return 0.0
        key = (value_a, value_b) if value_a <= value_b else (value_b, value_a)
        return pairs.get(key, 0.0)

    def top_similar(
        self, attribute: str, value: str, n: int = 3
    ) -> list[tuple[str, float]]:
        """The ``n`` most similar other values (paper Table 3 rows)."""
        scored = [
            (other, self.similarity(attribute, value, other))
            for other in self._values.get(attribute, ())
            if other != value
        ]
        scored.sort(key=lambda pair: (-pair[1], pair[0]))
        return scored[:n]

    def pairs(self, attribute: str) -> dict[tuple[str, str], float]:
        """Copy of the stored pair scores for one attribute."""
        return dict(self._pairs.get(attribute, {}))

    def pair_count(self) -> int:
        return sum(len(pairs) for pairs in self._pairs.values())


class ValueSimilarityMiner:
    """Builds a :class:`SimilarityModel` from a local sample table."""

    def __init__(
        self,
        config: SimilarityMinerConfig | None = None,
        importance_weights: Mapping[str, float] | None = None,
    ) -> None:
        self.config = config or SimilarityMinerConfig()
        self.importance_weights = dict(importance_weights or {})
        self.timings = MiningTimings()
        self._supertuples: dict[AVPair, SuperTuple] = {}

    # -- supertuple generation --------------------------------------------

    def build_supertuples(
        self, table: Table, attributes: Iterable[str] | None = None
    ) -> dict[AVPair, SuperTuple]:
        """Phase 1 (Table 2's "SuperTuple Generation").

        Builds one supertuple per sufficiently frequent AV-pair over the
        given categorical attributes (default: all of them).
        """
        schema = table.schema
        names = tuple(attributes) if attributes is not None else schema.categorical_names
        for name in names:
            if not schema.attribute(name).is_categorical:
                raise ValueError(f"attribute {name!r} is not categorical")
        observing = OBS.enabled
        with timed_phase(
            "simmining.supertuples",
            histogram="repro_simmining_phase_seconds",
            help_text="Wall-clock seconds per similarity-mining phase.",
            labels={"phase": "supertuple"},
            n_attributes=len(names),
        ) as phase:
            binners = build_binners(table, self.config.numeric_bins)
            supertuples: dict[AVPair, SuperTuple] = {}
            for name in names:
                attribute_start = time.perf_counter() if observing else 0.0
                index = table.hash_index(name) or table.create_hash_index(name)
                for value in index.distinct_values():
                    row_ids = index.lookup(value)
                    if len(row_ids) < self.config.min_value_count:
                        continue
                    avpair = AVPair(name, value)
                    supertuples[avpair] = build_supertuple(
                        avpair, table.rows(row_ids), schema, binners
                    )
                if observing:
                    OBS.registry.histogram(
                        "repro_simmining_supertuple_build_seconds",
                        "Supertuple construction time per attribute.",
                        labels=("attribute",),
                    ).labels(attribute=name).observe(
                        time.perf_counter() - attribute_start
                    )
        if observing:
            OBS.registry.counter(
                "repro_simmining_supertuples_total",
                "Supertuples built over sufficiently frequent AV-pairs.",
            ).inc(len(supertuples))
        self._supertuples = supertuples
        self.timings.supertuple_seconds += phase.elapsed_seconds
        return supertuples

    # -- pairwise estimation ------------------------------------------------

    def estimate(
        self, table: Table, attributes: Iterable[str] | None = None
    ) -> SimilarityModel:
        """Phase 2 (Table 2's "Similarity Estimation"): full VSim model."""
        schema = table.schema
        names = tuple(attributes) if attributes is not None else schema.categorical_names
        if not self._supertuples:
            self.build_supertuples(table, names)
        observing = OBS.enabled
        pair_evaluations = 0
        with timed_phase(
            "simmining.estimate",
            histogram="repro_simmining_phase_seconds",
            help_text="Wall-clock seconds per similarity-mining phase.",
            labels={"phase": "estimation"},
            n_attributes=len(names),
        ) as phase:
            model = SimilarityModel(names)
            by_attribute: dict[str, list[SuperTuple]] = {name: [] for name in names}
            for avpair, supertuple in self._supertuples.items():
                if avpair.attribute in by_attribute:
                    by_attribute[avpair.attribute].append(supertuple)
            for name in names:
                supertuples = sorted(
                    by_attribute[name], key=lambda st: st.avpair.value
                )
                for supertuple in supertuples:
                    model.register_value(name, supertuple.avpair.value)
                weights = self._attribute_weights(schema, bound=name)
                for i, left in enumerate(supertuples):
                    for right in supertuples[i + 1 :]:
                        pair_evaluations += 1
                        score = self._vsim(left, right, weights)
                        if score >= self.config.store_threshold and score > 0.0:
                            model.record(
                                name,
                                left.avpair.value,
                                right.avpair.value,
                                score,
                            )
        if observing:
            OBS.registry.counter(
                "repro_simmining_pair_evaluations_total",
                "VSim evaluations over AV-pair supertuple pairs (the "
                "paper's O(m*k^2) cost).",
            ).inc(pair_evaluations)
        self.timings.estimation_seconds += phase.elapsed_seconds
        return model

    def mine(
        self, table: Table, attributes: Iterable[str] | None = None
    ) -> SimilarityModel:
        """Both phases in one call."""
        self.build_supertuples(table, attributes)
        return self.estimate(table, attributes)

    # -- internals ---------------------------------------------------------

    def _attribute_weights(
        self, schema: RelationSchema, bound: str
    ) -> dict[str, float]:
        """Importance weights over the supertuple attributes (≠ bound).

        Uses the caller-supplied W_imp when given (renormalised over the
        unbound attributes), else uniform weights.
        """
        names = [n for n in schema.attribute_names if n != bound]
        if self.importance_weights:
            raw = {n: max(self.importance_weights.get(n, 0.0), 0.0) for n in names}
            total = sum(raw.values())
            if total > 0:
                return {n: w / total for n, w in raw.items()}
        uniform = 1.0 / len(names) if names else 0.0
        return {n: uniform for n in names}

    def _vsim(
        self,
        left: SuperTuple,
        right: SuperTuple,
        weights: Mapping[str, float],
    ) -> float:
        score = 0.0
        for attribute, weight in weights.items():
            if weight == 0.0:
                continue
            left_bag = left.bag(attribute)
            right_bag = right.bag(attribute)
            if self.config.bag_semantics:
                score += weight * jaccard_bags(left_bag, right_bag)
            else:
                score += weight * jaccard_sets(
                    left_bag.as_set(), right_bag.as_set()
                )
        return min(score, 1.0)
