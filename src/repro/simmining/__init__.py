"""Similarity Miner: association-based categorical value similarity.

Implements paper §5: AV-pairs, supertuples (bags of keywords per
unbound attribute, numeric values discretised into range labels), and
the importance-weighted bag-Jaccard estimator VSim, plus the Figure 5
similarity-graph view.
"""

from repro.simmining.avpair import AVPair
from repro.simmining.bag import Bag, jaccard_bags, jaccard_sets
from repro.simmining.estimator import (
    MiningTimings,
    SimilarityMinerConfig,
    SimilarityModel,
    ValueSimilarityMiner,
)
from repro.simmining.graph import neighbors_above, similarity_graph, strongest_edges
from repro.simmining.index import (
    SuperTupleIndex,
    TopSimilarIndex,
    preregister_index_metrics,
)
from repro.simmining.supertuple import (
    NumericBinner,
    SuperTuple,
    build_binners,
    build_supertuple,
)

__all__ = [
    "AVPair",
    "Bag",
    "MiningTimings",
    "NumericBinner",
    "SimilarityMinerConfig",
    "SimilarityModel",
    "SuperTuple",
    "SuperTupleIndex",
    "TopSimilarIndex",
    "ValueSimilarityMiner",
    "build_binners",
    "build_supertuple",
    "jaccard_bags",
    "jaccard_sets",
    "neighbors_above",
    "preregister_index_metrics",
    "similarity_graph",
    "strongest_edges",
]
