"""Similarity graphs over categorical values (paper Figure 5).

Figure 5 visualises the mined similarities for ``Make``: values are
nodes, and an edge appears when the similarity clears a threshold (BMW
ends up disconnected from Ford).  We materialise the same structure as a
:mod:`networkx` graph so experiments can check connectivity, strongest
edges and neighbourhoods.
"""

from __future__ import annotations

import networkx as nx

from repro.simmining.estimator import SimilarityModel

__all__ = ["similarity_graph", "strongest_edges", "neighbors_above"]


def similarity_graph(
    model: SimilarityModel, attribute: str, threshold: float = 0.1
) -> "nx.Graph":
    """Graph of values of ``attribute`` with edges at/above ``threshold``.

    Every known value appears as a node even when isolated, so
    disconnection (the BMW case) is observable.
    """
    if not 0.0 <= threshold <= 1.0:
        raise ValueError("threshold must be in [0, 1]")
    graph = nx.Graph(attribute=attribute, threshold=threshold)
    graph.add_nodes_from(sorted(model.known_values(attribute)))
    # pairs() is a read-only live view (no per-call copy), so rendering
    # many thresholds over a large model stays O(pairs) per graph.
    for (value_a, value_b), similarity in model.pairs(attribute).items():
        if similarity >= threshold:
            graph.add_edge(value_a, value_b, weight=similarity)
    return graph


def strongest_edges(
    graph: "nx.Graph", n: int = 10
) -> list[tuple[str, str, float]]:
    """Top-n edges by weight, deterministic order."""
    edges = [
        (min(a, b), max(a, b), data["weight"])
        for a, b, data in graph.edges(data=True)
    ]
    edges.sort(key=lambda edge: (-edge[2], edge[0], edge[1]))
    return edges[:n]


def neighbors_above(
    graph: "nx.Graph", value: str, threshold: float = 0.0
) -> list[tuple[str, float]]:
    """Neighbours of ``value`` with edge weight above ``threshold``."""
    if value not in graph:
        return []
    scored = [
        (other, graph[value][other]["weight"])
        for other in graph.neighbors(value)
        if graph[value][other]["weight"] > threshold
    ]
    scored.sort(key=lambda pair: (-pair[1], pair[0]))
    return scored
