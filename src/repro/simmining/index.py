"""Inverted-index retrieval over supertuples and mined similarities.

Two exact-by-construction index structures back the sublinear
similarity paths (ROADMAP's "index the similarity side" item; see
``docs/PERFORMANCE.md`` §9 for the full argument):

:class:`SuperTupleIndex`
    Each supertuple is a sparse vector over the features
    ``(unbound attribute, keyword)``; the index maps every feature to
    its posting list of ``(value, keyword count)`` entries.  Candidate
    generation for VSim mining intersects posting lists: only value
    pairs sharing at least one feature are emitted, and every skipped
    pair provably has VSim exactly 0.  The one subtlety is emptiness:
    ``SimJ(∅, ∅) = 1`` (two empty bags are identical), so a supertuple
    whose bag for some attribute is empty carries a per-attribute
    *empty-bag sentinel* feature — two such supertuples share the
    sentinel and are correctly kept as candidates.  Postings are stored
    and traversed in deterministic insertion order, and candidate pairs
    come out in the exact ``(i, j), i < j`` order of the naive grid, so
    downstream evaluation folds bit-identically.

:class:`TopSimilarIndex`
    Per-value neighbour lists over the *mined* pairs, kept sorted by
    the ranking key ``(-similarity, value)`` under incremental
    :meth:`TopSimilarIndex.record` updates.  ``top(value, n)`` merges
    the neighbour list with a lexicographic stream of similarity-0
    known values (``heapq.merge``), reproducing the linear scan's
    ranking — including tie order — while touching only ``O(n)``
    entries.  The head of a neighbour list is also the sharp upper
    bound on any non-identical similarity involving that value, which
    is what drives the engine's early-terminating candidate scorer.

Both structures support incremental add/remove so a drifting source
does not force a full rebuild; :func:`preregister_index_metrics`
zero-registers every ``repro_simmining_index_*`` family per the repo's
"quiet ≠ absent" convention.
"""

from __future__ import annotations

import heapq
from bisect import insort
from typing import Any, Iterator, Sequence

from repro.obs.runtime import OBS
from repro.simmining.supertuple import SuperTuple

__all__ = [
    "SuperTupleIndex",
    "TopSimilarIndex",
    "preregister_index_metrics",
]

#: Sentinel keyword marking "this attribute's bag is empty".  Two empty
#: bags have SimJ exactly 1 (not 0), so empty-vs-empty pairs must stay
#: candidates; the sentinel makes them share a feature.  The NUL prefix
#: keeps it disjoint from any real keyword.
EMPTY_BAG = "\0<empty>"


class SuperTupleIndex:
    """Inverted index over one attribute's supertuples.

    Parameters
    ----------
    weight_items:
        The ``(attribute, weight)`` pairs the VSim evaluation will use,
        pre-filtered to non-zero weights (zero-weight attributes
        contribute nothing to VSim and therefore index nothing).
    bag_semantics:
        Matches the miner's setting; only bag *emptiness* feeds the
        candidate criterion, which is identical under both semantics,
        but the cached magnitudes follow the active semantics.
    """

    def __init__(
        self,
        weight_items: Sequence[tuple[str, float]],
        bag_semantics: bool = True,
    ) -> None:
        self.weight_items = tuple(weight_items)
        self.bag_semantics = bag_semantics
        # feature -> {value: keyword count}; both levels keep
        # deterministic insertion order (plain dicts, never sets).
        self._postings: dict[tuple[str, str], dict[str, int]] = {}
        # value -> features carried, in extraction order.
        self._features: dict[str, tuple[tuple[str, str], ...]] = {}
        # value -> per-attribute bag magnitudes aligned with
        # ``weight_items`` (the cached "vector norms": exactly the
        # sizes the prune bound needs).
        self._magnitudes: dict[str, tuple[int, ...]] = {}

    # -- maintenance -------------------------------------------------------

    def add(self, supertuple: SuperTuple) -> None:
        """Index one supertuple's postings (replacing any stale entry)."""
        value = supertuple.avpair.value
        if value in self._features:
            self.remove(value)
        features: list[tuple[str, str]] = []
        magnitudes: list[int] = []
        for attribute, _ in self.weight_items:
            bag = supertuple.bag(attribute)
            magnitudes.append(
                supertuple.bag_magnitude(attribute, self.bag_semantics)
            )
            if bag.support == 0:
                feature = (attribute, EMPTY_BAG)
                features.append(feature)
                self._postings.setdefault(feature, {})[value] = 0
                continue
            for keyword in bag:
                feature = (attribute, str(keyword))
                features.append(feature)
                self._postings.setdefault(feature, {})[value] = bag.count(
                    keyword
                )
        self._features[value] = tuple(features)
        self._magnitudes[value] = tuple(magnitudes)

    def remove(self, value: str) -> None:
        """Drop one value's postings (no-op when it was never added)."""
        features = self._features.pop(value, ())
        self._magnitudes.pop(value, None)
        for feature in features:
            posting = self._postings.get(feature)
            if posting is None:
                continue
            posting.pop(value, None)
            if not posting:
                del self._postings[feature]

    # -- accessors ---------------------------------------------------------

    def __contains__(self, value: str) -> bool:
        return value in self._features

    def __len__(self) -> int:
        return len(self._features)

    @property
    def posting_count(self) -> int:
        """Total posting entries across all features."""
        return sum(len(posting) for posting in self._postings.values())

    @property
    def feature_count(self) -> int:
        return len(self._postings)

    def magnitudes(self, value: str) -> tuple[int, ...]:
        """Cached bag sizes aligned with ``weight_items``."""
        return self._magnitudes[value]

    def snapshot(self) -> dict[tuple[str, str], tuple[tuple[str, int], ...]]:
        """Canonical (sorted) posting map, for equality checks.

        Two indexes over the same surviving supertuples are equal here
        regardless of the add/remove history that produced them.
        """
        return {
            feature: tuple(sorted(self._postings[feature].items()))
            for feature in sorted(self._postings)
        }

    # -- candidate generation ----------------------------------------------

    def candidate_pairs(
        self, values: Sequence[str] | None = None
    ) -> list[tuple[int, int]]:
        """Index pairs ``(i, j), i < j`` that share at least one feature.

        ``values`` fixes the ordinal order (the miner passes its
        sorted-by-value supertuple order); default is sorted values.
        The output is the subsequence of the full pair grid restricted
        to co-occurring pairs, in the grid's exact order, so feeding it
        to the evaluator reproduces the naive loop's accumulation
        order.  Every omitted pair shares no feature, hence every
        weighted SimJ term is 0 (empty-vs-empty pairs share the
        sentinel), hence VSim is exactly 0 and the pair could never be
        stored.
        """
        order = list(values) if values is not None else sorted(self._features)
        ordinal = {value: index for index, value in enumerate(order)}
        pairs: list[tuple[int, int]] = []
        for index, value in enumerate(order):
            partners: set[int] = set()
            for feature in self._features.get(value, ()):
                for other in self._postings[feature]:
                    other_index = ordinal.get(other)
                    if other_index is not None and other_index > index:
                        partners.add(other_index)
            for other_index in sorted(partners):
                pairs.append((index, other_index))
        return pairs


class TopSimilarIndex:
    """Sorted neighbour lists over mined pairs for one attribute.

    Maintains, per value, the list of ``(-similarity, other, similarity)``
    entries sorted ascending — i.e. by the exact ranking key the linear
    ``top_similar`` scan uses — under incremental :meth:`record` and
    :meth:`register` updates (re-recording a pair replaces its old
    entries).  :meth:`top` then serves top-``n`` retrieval by merging
    the neighbour list with the lexicographic zero-similarity stream of
    the remaining known values.
    """

    __slots__ = ("_neighbors", "_scores", "_known", "_known_set")

    def __init__(self) -> None:
        self._neighbors: dict[str, list[tuple[float, str, float]]] = {}
        self._scores: dict[tuple[str, str], float] = {}
        self._known: list[str] = []
        self._known_set: set[str] = set()

    def register(self, value: str) -> None:
        """Mark a value as known (a zero-similarity candidate)."""
        if value not in self._known_set:
            self._known_set.add(value)
            insort(self._known, value)

    def record(self, value_a: str, value_b: str, similarity: float) -> None:
        """Insert or replace one mined pair."""
        self.register(value_a)
        self.register(value_b)
        if value_a == value_b:
            # Identity similarity is definitional (1.0) and the ranking
            # skips self-pairs, so there is nothing to index.
            return
        key = (
            (value_a, value_b) if value_a <= value_b else (value_b, value_a)
        )
        old = self._scores.get(key)
        if old is not None:
            self._neighbors[value_a].remove((-old, value_b, old))
            self._neighbors[value_b].remove((-old, value_a, old))
        self._scores[key] = similarity
        insort(
            self._neighbors.setdefault(value_a, []),
            (-similarity, value_b, similarity),
        )
        insort(
            self._neighbors.setdefault(value_b, []),
            (-similarity, value_a, similarity),
        )

    def remove_value(self, value: str) -> None:
        """Drop a value and every pair that mentions it."""
        if value not in self._known_set:
            return
        self._known_set.discard(value)
        self._known.remove(value)
        for _, other, similarity in self._neighbors.pop(value, []):
            self._neighbors[other].remove((-similarity, value, similarity))
            key = (value, other) if value <= other else (other, value)
            del self._scores[key]

    # -- retrieval ---------------------------------------------------------

    def max_score(self, value: str) -> float:
        """Sharp upper bound on similarity(value, other ≠ value).

        The head of the sorted neighbour list; 0.0 for values with no
        stored pairs (every non-identical lookup returns 0 for them).
        """
        neighbors = self._neighbors.get(value)
        if not neighbors:
            return 0.0
        return neighbors[0][2]

    def top(self, value: str, n: int) -> list[tuple[str, float]]:
        """Top-``n`` most similar other values, linear-scan-identical.

        The neighbour list is already in ranking-key order; the fill
        stream supplies the remaining known values (similarity 0) in
        lexicographic order, which is exactly their relative order
        under the key ``(-similarity, value)``.  ``heapq.merge`` is
        lazy, so only ~``n`` entries are ever materialised.
        """
        if OBS.enabled:
            OBS.registry.counter(
                "repro_simmining_index_topk_queries_total",
                "top_similar calls served from the neighbour-list index.",
            ).inc()
        neighbors = self._neighbors.get(value, [])

        def fill() -> Iterator[tuple[float, str, float]]:
            for other in self._known:
                if other == value:
                    continue
                key = (value, other) if value <= other else (other, value)
                if key in self._scores:
                    continue  # already streamed from the neighbour list
                yield (0.0, other, 0.0)

        ranked: list[tuple[str, float]] = []
        for _, other, similarity in heapq.merge(iter(neighbors), fill()):
            if other == value:
                continue
            ranked.append((other, similarity))
            if len(ranked) >= n:
                break
        return ranked

    def snapshot(
        self,
    ) -> tuple[tuple[str, ...], dict[tuple[str, str], float]]:
        """Canonical state (known values + pair scores) for equality."""
        return tuple(self._known), dict(self._scores)


def preregister_index_metrics(registry: Any = None) -> None:
    """Zero-init every ``repro_simmining_index_*`` family.

    Called by ``repro stats`` and the serving preregistration so a run
    that never touched the index still reports explicit zeros — the
    repo's "quiet ≠ absent" convention.
    """
    if registry is None:
        registry = OBS.registry
    registry.counter(
        "repro_simmining_index_candidate_pairs_total",
        "Supertuple pairs emitted by posting-list intersection.",
    ).inc(0)
    registry.counter(
        "repro_simmining_index_pairs_skipped_total",
        "Grid pairs skipped as provably VSim 0 (no shared feature).",
    ).inc(0)
    registry.counter(
        "repro_simmining_index_postings_total",
        "Posting entries inserted while building supertuple indexes.",
    ).inc(0)
    registry.counter(
        "repro_simmining_index_topk_queries_total",
        "top_similar calls served from the neighbour-list index.",
    ).inc(0)
    registry.histogram(
        "repro_simmining_index_build_seconds",
        "Inverted-index construction time per attribute.",
        buckets=(0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0),
    ).unlabelled()
