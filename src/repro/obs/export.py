"""Exporters: one metrics snapshot, two wire formats.

* :func:`to_json` — the registry snapshot as pretty-printed JSON, for
  experiment reports and ad-hoc diffing;
* :func:`to_prometheus` — the Prometheus text exposition format, so a
  scraper pointed at a file (or a future HTTP endpoint) ingests the
  same numbers.  Histograms render as standard ``_bucket``/``_sum``/
  ``_count`` series; the reservoir quantiles are JSON-only because the
  Prometheus histogram model has no slot for them.  Output always ends
  with the OpenMetrics ``# EOF`` terminator so file-based scrapes can
  tell a complete exposition from a truncated one.
"""

from __future__ import annotations

import json
import math
from typing import Mapping

from repro.obs.metrics import MetricsRegistry

__all__ = ["to_json", "to_prometheus"]


def _snapshot(source: MetricsRegistry | Mapping[str, object]) -> Mapping[str, object]:
    if isinstance(source, MetricsRegistry):
        return source.snapshot()
    return source


def to_json(source: MetricsRegistry | Mapping[str, object], indent: int = 2) -> str:
    """Render a registry (or a prebuilt snapshot) as JSON text."""
    return json.dumps(_snapshot(source), indent=indent, sort_keys=True)


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(labels: Mapping[str, object], extra: str = "") -> str:
    parts = [
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in sorted(labels.items())
    ]
    if extra:
        parts.append(extra)
    if not parts:
        return ""
    return "{" + ",".join(parts) + "}"


def _format_value(value: object) -> str:
    number = float(value)  # type: ignore[arg-type]
    if math.isinf(number):
        return "+Inf"
    if number.is_integer() and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def to_prometheus(source: MetricsRegistry | Mapping[str, object]) -> str:
    """Render a registry (or snapshot) in Prometheus text format."""
    snapshot = _snapshot(source)
    lines: list[str] = []
    for metric in snapshot.get("metrics", ()):  # type: ignore[union-attr]
        name = metric["name"]
        kind = metric["kind"]
        help_text = metric.get("help") or ""
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        for series in metric["series"]:
            labels: Mapping[str, object] = series.get("labels", {})
            if kind in ("counter", "gauge"):
                lines.append(
                    f"{name}{_render_labels(labels)} "
                    f"{_format_value(series['value'])}"
                )
                continue
            # histogram
            for bound, cumulative in series["buckets"].items():
                le = bound if bound == "+Inf" else _format_value(float(bound))
                rendered = _render_labels(labels, extra=f'le="{le}"')
                lines.append(f"{name}_bucket{rendered} {cumulative}")
            lines.append(
                f"{name}_sum{_render_labels(labels)} "
                f"{_format_value(series['sum'])}"
            )
            lines.append(
                f"{name}_count{_render_labels(labels)} {series['count']}"
            )
    lines.append("# EOF")
    return "\n".join(lines) + "\n"
