"""Wide-event query log: one flat JSON record per unit of work.

A *wide event* is the per-request complement of the metrics registry:
where counters aggregate across calls, an event carries every fact
about **one** call — query form, probe accounting, degradation flags,
per-phase latencies, trace id — as flat, scalar fields in a single
JSON-serialisable dict.  One event per ``AIMQEngine.answer`` /
``gather_similar`` call explains *why* that answer looks the way it
does; the opt-in ``probe_events`` flag adds one event per facade probe
and per resilience retry for fine-grained forensics.

Events live in a bounded ring (a long-lived server keeps the most
recent N without growing), and drain to a JSONL sink — one compact
JSON object per line — via :meth:`EventLog.write_jsonl` (the CLI's
``--events-out``).

The schema contract is deliberately strict and enforced at emit time:
event names are dotted snake_case (``engine.answer``), field names are
snake_case, and values are flat JSON scalars (str/int/float/bool/None)
— no nesting, so every field is directly filterable/groupable by any
log pipeline.  reprolint's REP005 enforces the same contract
statically at every call site.
"""

from __future__ import annotations

import json
import re
import threading
import time
from collections import deque

__all__ = ["EventLog", "EVENT_NAME_RE", "FIELD_NAME_RE"]

#: Event names: dotted snake_case, e.g. ``engine.answer``, ``db.probe``.
EVENT_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(?:\.[a-z][a-z0-9_]*)+$")

#: Field names: plain snake_case identifiers.
FIELD_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")

#: Fields the log stamps itself; emitters may not supply them.
_RESERVED_FIELDS = frozenset({"event", "ts", "seq"})

_SCALAR_TYPES = (str, int, float, bool)


class EventLog:
    """Thread-safe bounded ring of wide events with a JSONL sink.

    ``enabled`` gates all emission (off by default — the disabled path
    is one attribute read); ``probe_events`` additionally opts into the
    high-volume per-probe/per-retry events.  Both flags are independent
    of the tracer: events can be on with tracing off and vice versa.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.enabled = False
        self.probe_events = False
        self._lock = threading.Lock()
        self._ring: deque[dict[str, object]] = deque(maxlen=capacity)
        self._seq = 0

    # -- emission --------------------------------------------------------------

    def emit(
        self, event: str, /, **fields: object
    ) -> dict[str, object] | None:
        """Record one wide event; returns the stored record (or None).

        Validates the schema contract eagerly — a malformed emit is a
        programming error worth failing loudly on, not a log line worth
        silently mangling.  The name is positional-only so a reserved
        ``event=`` keyword lands in ``fields`` and is rejected.
        """
        if not self.enabled:
            return None
        record = self._build(event, fields)
        with self._lock:
            self._seq += 1
            record["seq"] = self._seq
            self._ring.append(record)
        return record

    @staticmethod
    def _build(event: str, fields: dict[str, object]) -> dict[str, object]:
        if not EVENT_NAME_RE.match(event):
            raise ValueError(
                f"event name {event!r} must be dotted snake_case "
                "(e.g. 'engine.answer')"
            )
        record: dict[str, object] = {"event": event, "ts": time.time()}
        for name, value in fields.items():
            if name in _RESERVED_FIELDS:
                raise ValueError(f"event field {name!r} is reserved")
            if not FIELD_NAME_RE.match(name):
                raise ValueError(
                    f"event field {name!r} must be snake_case"
                )
            if value is not None and not isinstance(value, _SCALAR_TYPES):
                raise TypeError(
                    f"event field {name!r} must be a flat JSON scalar, "
                    f"got {type(value).__name__}"
                )
            record[name] = value
        return record

    # -- inspection ------------------------------------------------------------

    def events(self) -> list[dict[str, object]]:
        """The buffered events, oldest first (copies of the records)."""
        with self._lock:
            return [dict(record) for record in self._ring]

    def last(self) -> dict[str, object] | None:
        with self._lock:
            return dict(self._ring[-1]) if self._ring else None

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    # -- sink ------------------------------------------------------------------

    def to_jsonl(self) -> str:
        """The buffered events as JSONL text (one object per line)."""
        lines = [
            json.dumps(record, sort_keys=True) for record in self.events()
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def write_jsonl(self, path: str) -> int:
        """Write the buffered events to ``path``; returns the count."""
        events = self.events()
        with open(path, "w", encoding="utf-8") as handle:
            for record in events:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        return len(events)

    def reset(self) -> None:
        """Drop buffered events and restart ``seq`` (flags unchanged)."""
        with self._lock:
            self._ring.clear()
            self._seq = 0
