"""Labeled metrics registry: counters, gauges, histograms.

The registry is the system's single source of numeric truth: every
layer (db, afd, simmining, core, rock) records into one shared
:class:`MetricsRegistry` through the runtime singleton, and exporters
(:mod:`repro.obs.export`) render one coherent snapshot.

Design choices, in the spirit of the Prometheus client model:

* a metric *family* has a name, a kind, a help string and a fixed tuple
  of label names; a *series* is one labelled child of a family;
* families are created idempotently — re-requesting a family with the
  same schema returns it, re-requesting with a different kind or label
  set is a programming error and raises;
* histograms combine fixed cumulative buckets (cheap, mergeable) with a
  streaming quantile reservoir (:mod:`repro.obs.summary`) so both
  "how many probes under 5 ms" and "what is p95" are answerable;
* everything is guarded by one registry-wide lock.  Metric updates are
  dict writes and float adds; contention is negligible next to the
  query work being measured, and a single lock keeps snapshots
  consistent.
"""

from __future__ import annotations

import math
import threading
from typing import Iterable, Mapping, Sequence

from repro.obs.summary import StreamingQuantile

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "DEFAULT_QUANTILES",
]

# Latency-flavoured default buckets, in seconds: probes in this repo run
# from tens of microseconds (indexed point lookups) to whole seconds
# (full scans at benchmark scale).
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0001,
    0.0005,
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
)

DEFAULT_QUANTILES: tuple[float, ...] = (0.5, 0.9, 0.99)


def _validate_name(name: str) -> None:
    if not name or not all(c.isalnum() or c in "_:" for c in name):
        raise ValueError(f"invalid metric name {name!r}")
    if name[0].isdigit():
        raise ValueError(f"metric name {name!r} cannot start with a digit")


class Counter:
    """Monotonically increasing total."""

    def __init__(self, lock: threading.RLock) -> None:
        self._lock = lock
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge instead")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """Instantaneous value that may move in either direction."""

    def __init__(self, lock: threading.RLock) -> None:
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed cumulative buckets plus a streaming quantile summary."""

    def __init__(
        self,
        lock: threading.RLock,
        buckets: Sequence[float],
        quantiles: Sequence[float],
        seed: int = 0,
    ) -> None:
        self._lock = lock
        self.bucket_bounds = tuple(sorted(buckets))
        self.quantile_marks = tuple(quantiles)
        self._bucket_counts = [0] * (len(self.bucket_bounds) + 1)  # +Inf slot
        self._count = 0
        self._sum = 0.0
        self._min: float | None = None
        self._max: float | None = None
        self._sketch = StreamingQuantile(seed=seed)

    def observe(self, value: float) -> None:
        with self._lock:
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value
            for index, bound in enumerate(self.bucket_bounds):
                if value <= bound:
                    self._bucket_counts[index] += 1
                    break
            else:
                self._bucket_counts[-1] += 1
            self._sketch.observe(value)

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def min(self) -> float | None:
        return self._min

    @property
    def max(self) -> float | None:
        return self._max

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, +Inf last."""
        pairs: list[tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.bucket_bounds, self._bucket_counts):
            running += count
            pairs.append((bound, running))
        pairs.append((float("inf"), self._count))
        return pairs

    def quantile(self, q: float) -> float | None:
        return self._sketch.quantile(q)


_Instrument = Counter | Gauge | Histogram


class MetricFamily:
    """One named metric with a fixed label schema and its series."""

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        kind: str,
        help_text: str,
        label_names: tuple[str, ...],
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        quantiles: tuple[float, ...] = DEFAULT_QUANTILES,
    ) -> None:
        self._registry = registry
        self.name = name
        self.kind = kind
        self.help_text = help_text
        self.label_names = label_names
        self.buckets = buckets
        self.quantiles = quantiles
        self._series: dict[tuple[str, ...], _Instrument] = {}

    def labels(self, **labels: object) -> _Instrument:
        """The series for one label binding, created on first use."""
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        with self._registry._lock:
            series = self._series.get(key)
            if series is None:
                series = self._make_instrument(key)
                self._series[key] = series
        return series

    def unlabelled(self) -> _Instrument:
        """The single series of a label-free family."""
        if self.label_names:
            raise ValueError(f"metric {self.name!r} requires labels")
        return self.labels()

    # Convenience passthroughs for label-free families -----------------------

    def inc(self, amount: float = 1.0) -> None:
        instrument = self.unlabelled()
        instrument.inc(amount)  # type: ignore[union-attr]

    def set(self, value: float) -> None:
        instrument = self.unlabelled()
        instrument.set(value)  # type: ignore[union-attr]

    def observe(self, value: float) -> None:
        instrument = self.unlabelled()
        instrument.observe(value)  # type: ignore[union-attr]

    def series(self) -> list[tuple[dict[str, str], _Instrument]]:
        """Snapshot of ``(labels, instrument)`` pairs, sorted by labels."""
        with self._registry._lock:
            items = sorted(self._series.items())
        return [
            (dict(zip(self.label_names, key)), instrument)
            for key, instrument in items
        ]

    def _make_instrument(self, key: tuple[str, ...]) -> _Instrument:
        lock = self._registry._lock
        if self.kind == "counter":
            return Counter(lock)
        if self.kind == "gauge":
            return Gauge(lock)
        seed = hash((self.name, key)) & 0x7FFFFFFF
        return Histogram(lock, self.buckets, self.quantiles, seed=seed)


class MetricsRegistry:
    """Thread-safe collection of metric families."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._families: dict[str, MetricFamily] = {}

    # -- family constructors -------------------------------------------------

    def counter(
        self, name: str, help_text: str = "", labels: Iterable[str] = ()
    ) -> MetricFamily:
        return self._family(name, "counter", help_text, labels)

    def gauge(
        self, name: str, help_text: str = "", labels: Iterable[str] = ()
    ) -> MetricFamily:
        return self._family(name, "gauge", help_text, labels)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Iterable[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        quantiles: Sequence[float] = DEFAULT_QUANTILES,
    ) -> MetricFamily:
        return self._family(
            name,
            "histogram",
            help_text,
            labels,
            buckets=tuple(buckets),
            quantiles=tuple(quantiles),
        )

    def _family(
        self,
        name: str,
        kind: str,
        help_text: str,
        labels: Iterable[str],
        **histogram_options: tuple[float, ...],
    ) -> MetricFamily:
        _validate_name(name)
        label_names = tuple(labels)
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or family.label_names != label_names:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{family.kind} with labels {family.label_names}"
                    )
                return family
            family = MetricFamily(
                self, name, kind, help_text, label_names, **histogram_options
            )
            self._families[name] = family
            return family

    # -- inspection -----------------------------------------------------------

    def families(self) -> list[MetricFamily]:
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def get(self, name: str) -> MetricFamily | None:
        with self._lock:
            return self._families.get(name)

    def reset(self) -> None:
        """Drop every family (between experiments / tests)."""
        with self._lock:
            self._families.clear()

    # -- snapshot -------------------------------------------------------------

    def snapshot(self) -> dict[str, object]:
        """Schema-stable JSON-ready view of every series.

        Layout::

            {"metrics": [
                {"name": ..., "kind": ..., "help": ...,
                 "series": [{"labels": {...}, ...kind-specific fields}]}
            ]}
        """
        metrics: list[dict[str, object]] = []
        with self._lock:
            for family in self.families():
                series_out: list[dict[str, object]] = []
                for labels, instrument in family.series():
                    entry: dict[str, object] = {"labels": labels}
                    if isinstance(instrument, (Counter, Gauge)):
                        entry["value"] = instrument.value
                    else:
                        entry.update(_histogram_entry(instrument))
                    series_out.append(entry)
                metrics.append(
                    {
                        "name": family.name,
                        "kind": family.kind,
                        "help": family.help_text,
                        "series": series_out,
                    }
                )
        return {"metrics": metrics}


def _histogram_entry(histogram: Histogram) -> dict[str, object]:
    buckets: dict[str, int] = {}
    for bound, cumulative in histogram.cumulative_buckets():
        label = "+Inf" if math.isinf(bound) else repr(bound)
        buckets[label] = cumulative
    quantiles: Mapping[str, float | None] = {
        repr(q): histogram.quantile(q) for q in histogram.quantile_marks
    }
    return {
        "count": histogram.count,
        "sum": histogram.sum,
        "min": histogram.min,
        "max": histogram.max,
        "buckets": buckets,
        "quantiles": dict(quantiles),
    }
