"""Per-call flight recorder: phases + fields → one wide event.

A :class:`FlightRecorder` is the engine-facing way to build the single
wide event an ``answer()``/``gather_similar()`` call emits.  The engine
creates one at call entry (via ``OBS.flight_recorder``), brackets its
phases with :meth:`FlightRecorder.phase`, accumulates flat fields with
:meth:`FlightRecorder.note`, and emits everything as one event with
:meth:`FlightRecorder.finish`.  Per-phase durations land as
``<phase>_seconds`` fields next to ``total_seconds``, so the event is
a self-contained latency breakdown as well as a work account.

The recorder carries the call's ``trace_id``: drawn fresh from the
deterministic counter at construction, and overwritten by the engine
with the answering span's id when tracing is on — so events and spans
of the same call always correlate.

This module deliberately knows nothing about the engine's types — it
takes scalar fields only — keeping ``repro.obs`` import-free of the
layers it observes (reprolint REP003).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

from repro.obs.events import EventLog
from repro.obs.tracing import next_trace_id

__all__ = ["FlightRecorder"]


class FlightRecorder:
    """Accumulates one call's wide-event fields, phase by phase."""

    def __init__(self, sink: EventLog, event: str) -> None:
        self._sink = sink
        self.event = event
        self.trace_id = next_trace_id()
        self._start = time.perf_counter()
        self._phases: dict[str, float] = {}
        self._fields: dict[str, object] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time one named phase; repeated phases accumulate."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._phases[name] = self._phases.get(name, 0.0) + elapsed

    def note(self, **fields: object) -> None:
        """Merge flat fields into the pending event."""
        self._fields.update(fields)

    def finish(self, **fields: object) -> dict[str, object] | None:
        """Emit the accumulated wide event; returns the stored record."""
        payload = dict(self._fields)
        payload.update(fields)
        for name, seconds in self._phases.items():
            payload[f"{name}_seconds"] = round(seconds, 6)
        payload["total_seconds"] = round(
            time.perf_counter() - self._start, 6
        )
        payload["trace_id"] = self.trace_id
        return self._sink.emit(self.event, **payload)
