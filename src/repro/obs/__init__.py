"""Unified observability: metrics, spans, wide events, exporters.

Everything the rest of the system needs is importable from here::

    from repro.obs import OBS, timed_phase, render_span_tree
    from repro.obs import to_json, to_prometheus, to_chrome_trace

``OBS`` is the process-wide runtime (disabled by default — enable it
with ``OBS.enable()`` or the CLI's ``--trace`` / ``--metrics-out``
flags; the wide-event log switches on separately via ``--events-out``
or ``OBS.events.enabled``).  See docs/OBSERVABILITY.md for the
metric-name catalogue, the span taxonomy, and the wide-event schema.
"""

from repro.obs.chrome import to_chrome_trace, write_chrome_trace
from repro.obs.events import EventLog
from repro.obs.export import to_json, to_prometheus
from repro.obs.flight import FlightRecorder
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
)
from repro.obs.runtime import OBS, Observability, timed_phase
from repro.obs.summary import StreamingQuantile
from repro.obs.tracing import (
    NOOP_SPAN,
    NullTracer,
    Span,
    TraceContext,
    Tracer,
    next_trace_id,
    render_span_tree,
    span_summary,
)

__all__ = [
    "OBS",
    "Observability",
    "timed_phase",
    "MetricsRegistry",
    "MetricFamily",
    "Counter",
    "Gauge",
    "Histogram",
    "StreamingQuantile",
    "EventLog",
    "FlightRecorder",
    "Tracer",
    "NullTracer",
    "Span",
    "TraceContext",
    "NOOP_SPAN",
    "next_trace_id",
    "render_span_tree",
    "span_summary",
    "to_json",
    "to_prometheus",
    "to_chrome_trace",
    "write_chrome_trace",
]
