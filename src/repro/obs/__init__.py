"""Unified observability: metrics registry, span tracing, exporters.

Everything the rest of the system needs is importable from here::

    from repro.obs import OBS, timed_phase, render_span_tree
    from repro.obs import to_json, to_prometheus

``OBS`` is the process-wide runtime (disabled by default — enable it
with ``OBS.enable()`` or the CLI's ``--trace`` / ``--metrics-out``
flags).  See docs/OBSERVABILITY.md for the metric-name catalogue and
the span taxonomy.
"""

from repro.obs.export import to_json, to_prometheus
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
)
from repro.obs.runtime import OBS, Observability, timed_phase
from repro.obs.summary import StreamingQuantile
from repro.obs.tracing import (
    NOOP_SPAN,
    NullTracer,
    Span,
    Tracer,
    render_span_tree,
)

__all__ = [
    "OBS",
    "Observability",
    "timed_phase",
    "MetricsRegistry",
    "MetricFamily",
    "Counter",
    "Gauge",
    "Histogram",
    "StreamingQuantile",
    "Tracer",
    "NullTracer",
    "Span",
    "NOOP_SPAN",
    "render_span_tree",
    "to_json",
    "to_prometheus",
]
