"""Chrome/Perfetto trace-event export of recorded span trees.

Renders :class:`~repro.obs.tracing.Span` trees in the Chrome Trace
Event JSON format — the "complete event" (``ph: "X"``) flavour, one
object per span with microsecond ``ts``/``dur`` — loadable directly in
``chrome://tracing``, Perfetto (https://ui.perfetto.dev) or ``speedscope``.
Each span's thread id becomes the Chrome ``tid``, so batch probes
dispatched through the planner's worker pool render as parallel tracks
under the answering call instead of one serial lane.
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.obs.tracing import Span

__all__ = ["to_chrome_trace", "write_chrome_trace"]

#: All spans of one process share one Chrome pid; the format requires it.
_PID = 1


def _span_event(span: Span) -> dict[str, object]:
    args: dict[str, object] = dict(span.attributes)
    args["status"] = span.status
    args["trace_id"] = span.trace_id
    if span.error:
        args["error"] = span.error
    return {
        "name": span.name,
        "cat": span.name.split(".", 1)[0],
        "ph": "X",
        "ts": round(span.started_at * 1e6, 3),
        "dur": round((span.duration_seconds or 0.0) * 1e6, 3),
        "pid": _PID,
        "tid": span.tid,
        "args": args,
    }


def to_chrome_trace(roots: Iterable[Span]) -> dict[str, object]:
    """The given span trees as a Chrome trace-event object."""
    events = [
        _span_event(span) for root in roots for span in root.walk()
    ]
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(roots: Iterable[Span], path: str) -> int:
    """Write the trees to ``path`` as JSON; returns the event count."""
    payload = to_chrome_trace(roots)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return len(payload["traceEvents"])  # type: ignore[arg-type]
