"""The process-wide observability runtime and its on/off switch.

Instrumented code throughout the repo talks to one module-level
:data:`OBS` object::

    from repro.obs.runtime import OBS

    if OBS.enabled:
        OBS.registry.counter("repro_db_probes_total").inc()
    with OBS.span("engine.ranking", candidates=n):
        ...

Disabled (the default) is the zero-cost mode the efficiency benchmarks
run in: ``OBS.enabled`` is a plain attribute read, ``OBS.span`` returns
the shared no-op span, and no metric family is ever touched.  Enabling
swaps in a real tracer; everything recorded since the last reset is
visible through ``OBS.registry`` / ``OBS.tracer``.

:class:`timed_phase` is the bridge between span timing and the older
wall-clock structs (``BuildTimings``, ``MiningTimings``): it always
measures, and when observability is on the elapsed value *is* the
span's duration, so the structs and the trace can never disagree.
"""

from __future__ import annotations

import time
from typing import Mapping

from repro.obs.events import EventLog
from repro.obs.flight import FlightRecorder
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import NOOP_SPAN, NullTracer, Span, Tracer, _NoopSpan

__all__ = ["Observability", "OBS", "timed_phase"]

_NULL_TRACER = NullTracer()


class Observability:
    """One registry + one tracer + one event log behind cheap flags.

    ``enabled`` gates metrics and spans; the event log carries its own
    ``events.enabled`` flag so wide events can be on with tracing off
    (the cheap production posture) or vice versa.
    """

    def __init__(self, enabled: bool = False, max_traces: int = 128) -> None:
        self.registry = MetricsRegistry()
        self._tracer = Tracer(max_traces=max_traces)
        self.events = EventLog()
        self.enabled = enabled

    @property
    def tracer(self) -> Tracer:
        return self._tracer

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Clear recorded metrics/traces/events (keeps the on/off state)."""
        self.registry.reset()
        self._tracer.reset()
        self.events.reset()

    def span(self, name: str, **attributes: object):
        """A real span when enabled, the shared no-op span otherwise."""
        if not self.enabled:
            return NOOP_SPAN
        return self._tracer.span(name, **attributes)

    # -- wide events -----------------------------------------------------------

    def emit_event(self, event: str, /, **fields: object):
        """Emit one wide event (no-op unless the event log is enabled).

        This is the blessed emission API reprolint REP005 checks call
        sites of: event names dotted snake_case, fields snake_case,
        values flat scalars.
        """
        if not self.events.enabled:
            return None
        return self.events.emit(event, **fields)

    def flight_recorder(self, event: str) -> FlightRecorder | None:
        """A per-call recorder when the event log is on, else None."""
        if not self.events.enabled:
            return None
        return FlightRecorder(self.events, event)

    def current_trace_id(self) -> str | None:
        """The trace id of this thread's open span, if any."""
        span = self._tracer.current()
        return span.trace_id if span is not None else None


#: The process-wide runtime every instrumented layer records into.
OBS = Observability(enabled=False)


class timed_phase:
    """Context manager timing one offline phase, span-first.

    Always measures (``elapsed_seconds`` is valid in disabled mode, via
    ``perf_counter``); when observability is enabled it additionally
    opens a span named ``name`` and, if ``histogram`` is given, records
    the duration into that histogram family with ``labels``.  With
    tracing on, ``elapsed_seconds`` is taken from the span itself so
    timing structs derived from it agree with the trace exactly.
    """

    def __init__(
        self,
        name: str,
        histogram: str | None = None,
        help_text: str = "",
        labels: Mapping[str, object] | None = None,
        **attributes: object,
    ) -> None:
        self.name = name
        self.histogram = histogram
        self.help_text = help_text
        self.labels = dict(labels or {})
        self.attributes = attributes
        self.elapsed_seconds = 0.0
        self._span_context = None
        self._span: Span | _NoopSpan | None = None
        self._start = 0.0

    def __enter__(self) -> "timed_phase":
        if OBS.enabled:
            self._span_context = OBS.tracer.span(self.name, **self.attributes)
            self._span = self._span_context.__enter__()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        elapsed = time.perf_counter() - self._start
        if self._span_context is not None:
            self._span_context.__exit__(exc_type, exc, tb)
            span = self._span
            if isinstance(span, Span) and span.duration_seconds is not None:
                elapsed = span.duration_seconds
        self.elapsed_seconds = elapsed
        if OBS.enabled and self.histogram is not None and exc_type is None:
            family = OBS.registry.histogram(
                self.histogram,
                help_text=self.help_text,
                labels=tuple(sorted(self.labels)),
            )
            instrument = family.labels(**self.labels)
            instrument.observe(elapsed)  # type: ignore[union-attr]
        return False
