"""Span tracing: nested, timed, attributed — with a no-op twin.

A span covers one region of work ("engine.answer", "pipeline.probing")
and records wall-clock start time, a monotonic duration, free-form
attributes and its child spans.  Spans nest through a per-thread stack,
so instrumented layers compose without passing context around: the
executor's probe span lands under whichever engine span is open on the
same thread.

Completed root spans go to a bounded ring buffer — a long-lived server
keeps the most recent traces without growing without bound.

Because the stack is thread-local, work dispatched to another thread
(the planner's batch pool) would start a fresh root there and lose its
parentage.  :meth:`Tracer.capture` + :meth:`Tracer.activate` fix that:
the dispatching thread captures its current span as a
:class:`TraceContext`, and the worker activates it, borrowing the
parent span as the bottom of its own stack — so spans the worker opens
nest under the dispatcher's span and share its trace id.  The borrowed
parent is never popped by the worker, so it cannot enter the ring
twice; child-list appends are atomic under the GIL, so concurrent
workers may attach children to one parent safely.

Every root span is assigned a ``trace_id`` from a deterministic
process-wide counter (no wall clock, no RNG — REP001-friendly), and
descendants inherit it; the id is what correlates a span tree with the
wide events (:mod:`repro.obs.events`) emitted during the same call.

When observability is disabled the runtime hands out :data:`NOOP_SPAN`
instead, whose enter/exit/set_attribute do nothing; the instrumentation
cost collapses to one attribute check plus an argument-dict build.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Iterator, Sequence

__all__ = [
    "Span",
    "TraceContext",
    "Tracer",
    "NullTracer",
    "NOOP_SPAN",
    "next_trace_id",
    "render_span_tree",
    "span_summary",
]

_TRACE_ID_LOCK = threading.Lock()
_TRACE_ID_COUNTER = 0


def next_trace_id() -> str:
    """The next id from the process-wide deterministic counter."""
    global _TRACE_ID_COUNTER
    with _TRACE_ID_LOCK:
        _TRACE_ID_COUNTER += 1
        return f"t-{_TRACE_ID_COUNTER:06d}"


class Span:
    """One timed, attributed region of work; may have child spans."""

    __slots__ = (
        "name",
        "attributes",
        "children",
        "started_at",
        "status",
        "error",
        "trace_id",
        "tid",
        "_start",
        "_duration",
    )

    def __init__(self, name: str, attributes: dict[str, object]) -> None:
        self.name = name
        self.attributes = attributes
        self.children: list[Span] = []
        self.started_at = time.time()  # wall clock, for correlation
        self.status = "in_progress"
        self.error: str | None = None
        self.trace_id = ""  # assigned at push: inherited or freshly drawn
        self.tid = threading.get_ident()  # thread that opened the span
        self._start = time.perf_counter()  # monotonic, for duration
        self._duration: float | None = None

    def set_attribute(self, key: str, value: object) -> None:
        self.attributes[key] = value

    def finish(self, error: BaseException | None = None) -> None:
        if self._duration is None:
            self._duration = time.perf_counter() - self._start
        if error is not None:
            self.status = "error"
            self.error = f"{type(error).__name__}: {error}"
        else:
            self.status = "ok"

    @property
    def duration_seconds(self) -> float | None:
        """Monotonic duration; None while the span is still open."""
        return self._duration

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def as_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "started_at": self.started_at,
            "duration_seconds": self._duration,
            "status": self.status,
            "error": self.error,
            "attributes": dict(self.attributes),
            "children": [child.as_dict() for child in self.children],
        }


class _NoopSpan:
    """Shared do-nothing span for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def set_attribute(self, key: str, value: object) -> None:
        pass


NOOP_SPAN = _NoopSpan()


class TraceContext:
    """A portable capture of one thread's current span.

    Produced by :meth:`Tracer.capture` on the dispatching thread and
    consumed by :meth:`Tracer.activate` on a worker thread; holding one
    keeps the parent span alive and addressable across the hop.
    """

    __slots__ = ("span",)

    def __init__(self, span: Span | None) -> None:
        self.span = span

    @property
    def trace_id(self) -> str | None:
        return self.span.trace_id if self.span is not None else None


class _SpanContext:
    """Context manager that opens a span on the tracer's thread stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._span.finish(error=exc)
        self._tracer._pop(self._span)
        return False  # never swallow the exception


class Tracer:
    """Builds span trees per thread; keeps completed roots in a ring."""

    def __init__(self, max_traces: int = 128) -> None:
        if max_traces < 1:
            raise ValueError("max_traces must be at least 1")
        self._local = threading.local()
        self._lock = threading.Lock()
        self._traces: deque[Span] = deque(maxlen=max_traces)

    # -- recording -----------------------------------------------------------

    def span(self, name: str, **attributes: object) -> _SpanContext:
        """Open a child of the current span (or a new root)::

            with tracer.span("engine.answer", query=q.describe()) as sp:
                ...
                sp.set_attribute("answers", len(result))
        """
        return _SpanContext(self, Span(name, dict(attributes)))

    def current(self) -> Span | None:
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def _push(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        if stack:
            parent = stack[-1]
            parent.children.append(span)
            span.trace_id = parent.trace_id
        else:
            span.trace_id = next_trace_id()
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if not stack or stack[-1] is not span:
            # Unbalanced exit — drop the whole stack rather than attach
            # spans to the wrong parent.
            self._local.stack = []
            return
        stack.pop()
        if not stack:
            with self._lock:
                self._traces.append(span)

    # -- cross-thread propagation ---------------------------------------------

    def capture(self) -> TraceContext:
        """Capture this thread's current span for another thread to adopt."""
        return TraceContext(self.current())

    @contextmanager
    def activate(self, context: TraceContext | None) -> Iterator[None]:
        """Adopt a captured span as this thread's parent for the block.

        The borrowed span sits at the bottom of a fresh stack: spans
        opened inside the block become its children (and inherit its
        trace id), but popping back down to it never re-enters it into
        the completed-trace ring — the owning thread finishes it.  The
        thread's previous stack is restored on exit, so activation
        nests and never leaks across pool task boundaries.
        """
        if context is None or context.span is None:
            yield
            return
        local = self._local
        saved = getattr(local, "stack", None)
        local.stack = [context.span]
        try:
            yield
        finally:
            local.stack = saved if saved is not None else []

    # -- inspection -----------------------------------------------------------

    def traces(self) -> list[Span]:
        """Completed root spans, oldest first."""
        with self._lock:
            return list(self._traces)

    def last_trace(self) -> Span | None:
        with self._lock:
            return self._traces[-1] if self._traces else None

    def iter_spans(self) -> Iterator[Span]:
        """Every recorded span across all completed traces."""
        for root in self.traces():
            yield from root.walk()

    def reset(self) -> None:
        with self._lock:
            self._traces.clear()
        self._local.stack = []


class NullTracer:
    """API-compatible tracer that records nothing at all."""

    def span(self, name: str, **attributes: object) -> _NoopSpan:
        return NOOP_SPAN

    def current(self) -> None:
        return None

    def capture(self) -> TraceContext:
        return TraceContext(None)

    @contextmanager
    def activate(self, context: TraceContext | None) -> Iterator[None]:
        yield

    def traces(self) -> list[Span]:
        return []

    def last_trace(self) -> None:
        return None

    def iter_spans(self) -> Iterator[Span]:
        return iter(())

    def reset(self) -> None:
        pass


def render_span_tree(span: Span, indent: int = 0) -> str:
    """Human-readable indented rendering of one span tree."""
    duration = span.duration_seconds
    timing = f"{duration * 1000:.2f} ms" if duration is not None else "open"
    attributes = ""
    if span.attributes:
        rendered = ", ".join(
            f"{key}={value}" for key, value in sorted(span.attributes.items())
        )
        attributes = f"  [{rendered}]"
    marker = " !" if span.status == "error" else ""
    lines = [f"{'  ' * indent}{span.name}  {timing}{marker}{attributes}"]
    if span.error:
        lines.append(f"{'  ' * (indent + 1)}error: {span.error}")
    for child in span.children:
        lines.append(render_span_tree(child, indent + 1))
    return "\n".join(lines)


def span_summary(roots: Sequence[Span]) -> list[dict[str, object]]:
    """Aggregate spans by name across the given trees.

    One row per distinct span name — call count, total and max
    duration, error count — sorted by total duration descending.  This
    is the ``repro trace`` CLI's default view: a profile of where one
    traced call spent its time, without the full tree.
    """
    rows: dict[str, dict[str, object]] = {}
    for root in roots:
        for span in root.walk():
            row = rows.setdefault(
                span.name,
                {
                    "name": span.name,
                    "count": 0,
                    "total_seconds": 0.0,
                    "max_seconds": 0.0,
                    "errors": 0,
                },
            )
            duration = span.duration_seconds or 0.0
            row["count"] = int(row["count"]) + 1
            row["total_seconds"] = float(row["total_seconds"]) + duration
            row["max_seconds"] = max(float(row["max_seconds"]), duration)
            if span.status == "error":
                row["errors"] = int(row["errors"]) + 1
    return sorted(
        rows.values(),
        key=lambda row: float(row["total_seconds"]),  # type: ignore[arg-type]
        reverse=True,
    )
