"""Span tracing: nested, timed, attributed — with a no-op twin.

A span covers one region of work ("engine.answer", "pipeline.probing")
and records wall-clock start time, a monotonic duration, free-form
attributes and its child spans.  Spans nest through a per-thread stack,
so instrumented layers compose without passing context around: the
executor's probe span lands under whichever engine span is open on the
same thread.

Completed root spans go to a bounded ring buffer — a long-lived server
keeps the most recent traces without growing without bound.

When observability is disabled the runtime hands out :data:`NOOP_SPAN`
instead, whose enter/exit/set_attribute do nothing; the instrumentation
cost collapses to one attribute check plus an argument-dict build.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Iterator

__all__ = ["Span", "Tracer", "NullTracer", "NOOP_SPAN", "render_span_tree"]


class Span:
    """One timed, attributed region of work; may have child spans."""

    __slots__ = (
        "name",
        "attributes",
        "children",
        "started_at",
        "status",
        "error",
        "_start",
        "_duration",
    )

    def __init__(self, name: str, attributes: dict[str, object]) -> None:
        self.name = name
        self.attributes = attributes
        self.children: list[Span] = []
        self.started_at = time.time()  # wall clock, for correlation
        self.status = "in_progress"
        self.error: str | None = None
        self._start = time.perf_counter()  # monotonic, for duration
        self._duration: float | None = None

    def set_attribute(self, key: str, value: object) -> None:
        self.attributes[key] = value

    def finish(self, error: BaseException | None = None) -> None:
        if self._duration is None:
            self._duration = time.perf_counter() - self._start
        if error is not None:
            self.status = "error"
            self.error = f"{type(error).__name__}: {error}"
        else:
            self.status = "ok"

    @property
    def duration_seconds(self) -> float | None:
        """Monotonic duration; None while the span is still open."""
        return self._duration

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def as_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "started_at": self.started_at,
            "duration_seconds": self._duration,
            "status": self.status,
            "error": self.error,
            "attributes": dict(self.attributes),
            "children": [child.as_dict() for child in self.children],
        }


class _NoopSpan:
    """Shared do-nothing span for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def set_attribute(self, key: str, value: object) -> None:
        pass


NOOP_SPAN = _NoopSpan()


class _SpanContext:
    """Context manager that opens a span on the tracer's thread stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._span.finish(error=exc)
        self._tracer._pop(self._span)
        return False  # never swallow the exception


class Tracer:
    """Builds span trees per thread; keeps completed roots in a ring."""

    def __init__(self, max_traces: int = 128) -> None:
        if max_traces < 1:
            raise ValueError("max_traces must be at least 1")
        self._local = threading.local()
        self._lock = threading.Lock()
        self._traces: deque[Span] = deque(maxlen=max_traces)

    # -- recording -----------------------------------------------------------

    def span(self, name: str, **attributes: object) -> _SpanContext:
        """Open a child of the current span (or a new root)::

            with tracer.span("engine.answer", query=q.describe()) as sp:
                ...
                sp.set_attribute("answers", len(result))
        """
        return _SpanContext(self, Span(name, dict(attributes)))

    def current(self) -> Span | None:
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def _push(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        if stack:
            stack[-1].children.append(span)
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if not stack or stack[-1] is not span:
            # Unbalanced exit — drop the whole stack rather than attach
            # spans to the wrong parent.
            self._local.stack = []
            return
        stack.pop()
        if not stack:
            with self._lock:
                self._traces.append(span)

    # -- inspection -----------------------------------------------------------

    def traces(self) -> list[Span]:
        """Completed root spans, oldest first."""
        with self._lock:
            return list(self._traces)

    def last_trace(self) -> Span | None:
        with self._lock:
            return self._traces[-1] if self._traces else None

    def iter_spans(self) -> Iterator[Span]:
        """Every recorded span across all completed traces."""
        for root in self.traces():
            yield from root.walk()

    def reset(self) -> None:
        with self._lock:
            self._traces.clear()
        self._local.stack = []


class NullTracer:
    """API-compatible tracer that records nothing at all."""

    def span(self, name: str, **attributes: object) -> _NoopSpan:
        return NOOP_SPAN

    def current(self) -> None:
        return None

    def traces(self) -> list[Span]:
        return []

    def last_trace(self) -> None:
        return None

    def iter_spans(self) -> Iterator[Span]:
        return iter(())

    def reset(self) -> None:
        pass


def render_span_tree(span: Span, indent: int = 0) -> str:
    """Human-readable indented rendering of one span tree."""
    duration = span.duration_seconds
    timing = f"{duration * 1000:.2f} ms" if duration is not None else "open"
    attributes = ""
    if span.attributes:
        rendered = ", ".join(
            f"{key}={value}" for key, value in sorted(span.attributes.items())
        )
        attributes = f"  [{rendered}]"
    marker = " !" if span.status == "error" else ""
    lines = [f"{'  ' * indent}{span.name}  {timing}{marker}{attributes}"]
    if span.error:
        lines.append(f"{'  ' * (indent + 1)}error: {span.error}")
    for child in span.children:
        lines.append(render_span_tree(child, indent + 1))
    return "\n".join(lines)
