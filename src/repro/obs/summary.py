"""Streaming quantile estimation for histogram summaries.

Latency distributions are long-tailed, so fixed buckets alone hide the
tail; the registry's histograms therefore also keep a bounded uniform
reservoir (Vitter's Algorithm R) from which arbitrary quantiles can be
read.  The reservoir is seeded per instrument, so snapshots are
reproducible run to run — a property every experiment in this repo
leans on.
"""

from __future__ import annotations

import random

__all__ = ["StreamingQuantile"]


class StreamingQuantile:
    """Uniform-reservoir quantile sketch over an unbounded value stream.

    ``observe`` is O(1); ``quantile`` sorts the (bounded) reservoir on
    demand.  With the default 512-slot reservoir the estimate of any
    central quantile is within a few percent for realistic streams,
    which is all a work-accounting dashboard needs.
    """

    def __init__(self, capacity: int = 512, seed: int = 0) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self._rng = random.Random(seed)
        self._reservoir: list[float] = []
        self._seen = 0

    @property
    def seen(self) -> int:
        """Total number of observations offered to the sketch."""
        return self._seen

    def observe(self, value: float) -> None:
        self._seen += 1
        if len(self._reservoir) < self.capacity:
            self._reservoir.append(value)
            return
        slot = self._rng.randrange(self._seen)
        if slot < self.capacity:
            self._reservoir[slot] = value

    def quantile(self, q: float) -> float | None:
        """The ``q``-quantile of the stream seen so far (None when empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if not self._reservoir:
            return None
        ordered = sorted(self._reservoir)
        # Nearest-rank with linear interpolation between neighbours.
        position = q * (len(ordered) - 1)
        lower = int(position)
        upper = min(lower + 1, len(ordered) - 1)
        fraction = position - lower
        return ordered[lower] * (1.0 - fraction) + ordered[upper] * fraction

    def reset(self) -> None:
        self._reservoir.clear()
        self._seen = 0
