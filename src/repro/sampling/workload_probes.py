"""Workload-driven probing (the paper's alternative sampling strategy).

§6.2: "An alternate approach is to pick the set of probe queries from a
set of actual queries that were directed at the system over a period of
time.  Although more sensitive to the actual queries, such an approach
has a chicken-and-egg problem as no statistics can be learned until the
system has processed a sufficient number of user queries."

This module implements that second approach for systems that *do* have
a workload: each recorded imprecise query is tightened to its base
query, numeric bindings are widened into bands (a point probe on a
continuous attribute returns almost nothing), and the union of the
probe results becomes the sample — biased toward the region of the
database users actually ask about, which is exactly the sensitivity the
paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.db.predicates import Between, Eq, Predicate
from repro.db.query import SelectionQuery
from repro.db.table import Table
from repro.db.webdb import AutonomousWebDatabase

if TYPE_CHECKING:
    # Typing-only: a runtime import here would put the sampling layer
    # above the engine and close a core <-> sampling package cycle.
    from repro.core.query import ImpreciseQuery

__all__ = ["WorkloadProbeReport", "probe_from_workload"]


@dataclass
class WorkloadProbeReport:
    """Accounting for one workload-driven collection run."""

    queries_probed: int = 0
    probes_issued: int = 0
    tuples_collected: int = 0
    duplicate_hits: int = 0
    empty_probes: int = 0
    notes: list[str] = field(default_factory=list)


def _probe_query(
    query: ImpreciseQuery, webdb: AutonomousWebDatabase, band: float
) -> SelectionQuery:
    """Tighten likeness to equality, then widen numeric points to bands."""
    schema = webdb.schema
    predicates: list[Predicate] = []
    for predicate in query.to_base_query().predicates:
        if (
            isinstance(predicate, Eq)
            and schema.attribute(predicate.attribute).is_numeric
            and isinstance(predicate.value, (int, float))
            and not isinstance(predicate.value, bool)
        ):
            center = predicate.value
            width = abs(center) * band or band
            predicates.append(
                Between(predicate.attribute, center - width, center + width)
            )
        else:
            predicates.append(predicate)
    return SelectionQuery(tuple(predicates))


def probe_from_workload(
    webdb: AutonomousWebDatabase,
    queries: list[ImpreciseQuery],
    numeric_band: float = 0.25,
    max_tuples: int | None = None,
    paginate: bool = True,
    max_pages_per_probe: int = 100,
) -> tuple[Table, WorkloadProbeReport]:
    """Collect a sample by replaying a query workload as probes.

    Returns the deduplicated union of all probe results.  ``max_tuples``
    bounds the sample; collection stops once it is reached.  The sample
    over-represents popular query regions by construction — callers who
    need coverage guarantees should mix in spanning probes
    (:func:`repro.sampling.collector.probe_all`).
    """
    if numeric_band <= 0:
        raise ValueError("numeric_band must be positive")
    report = WorkloadProbeReport()
    local = Table(webdb.schema)
    seen_ids: set[int] = set()

    for query in queries:
        query.validate_against(webdb.schema)
        report.queries_probed += 1
        probe = _probe_query(query, webdb, numeric_band)
        offset = 0
        pages = 0
        while True:
            result = webdb.query(probe, offset=offset)
            report.probes_issued += 1
            if not result:
                report.empty_probes += 1
            for row_id, row in zip(result.row_ids, result.rows):
                if row_id in seen_ids:
                    report.duplicate_hits += 1
                    continue
                seen_ids.add(row_id)
                local.insert(row)
                if max_tuples is not None and len(local) >= max_tuples:
                    report.tuples_collected = len(local)
                    report.notes.append(
                        f"stopped at the {max_tuples}-tuple cap"
                    )
                    return local, report
            offset += len(result)
            pages += 1
            if not result.truncated or not paginate or pages >= max_pages_per_probe:
                break

    report.tuples_collected = len(local)
    if not local:
        report.notes.append(
            "workload probes returned nothing; fall back to spanning probes"
        )
    return local, report
