"""Data Collector: probing an autonomous source to build local samples."""

from repro.sampling.checkpoint import CollectionCheckpoint, CollectionInterrupted
from repro.sampling.collector import (
    CollectionReport,
    collect_sample,
    nested_samples,
    probe_all,
)
from repro.sampling.spanning import (
    categorical_spanning_queries,
    choose_spanning_attribute,
    numeric_spanning_queries,
)
from repro.sampling.workload_probes import WorkloadProbeReport, probe_from_workload

__all__ = [
    "CollectionCheckpoint",
    "CollectionInterrupted",
    "CollectionReport",
    "WorkloadProbeReport",
    "probe_from_workload",
    "categorical_spanning_queries",
    "choose_spanning_attribute",
    "collect_sample",
    "nested_samples",
    "numeric_spanning_queries",
    "probe_all",
]
