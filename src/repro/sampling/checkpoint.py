"""Checkpoint/resume for probing-based collection runs.

Extracting a 100k-tuple sample through a Web form costs thousands of
probes; a source outage halfway through used to cost all of them.  In
resumable mode :func:`~repro.sampling.collector.probe_all` raises
:class:`CollectionInterrupted` carrying a
:class:`CollectionCheckpoint` — the exact position in the spanning
family, the page offset, and every row already collected — and a later
call continues from that position, re-issuing no completed probe.

Checkpoints round-trip through JSON so long collections can survive
process restarts, not just exception handling.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

__all__ = ["CollectionCheckpoint", "CollectionInterrupted"]


@dataclass(frozen=True)
class CollectionCheckpoint:
    """Where a collection run stopped and what it had.

    ``next_query_index`` indexes the deterministic spanning-query
    family (same order every run — REP001 guarantees it);
    ``next_offset`` is the result page to request next within that
    query.  ``rows`` holds every row collected so far, in collection
    order, so the resumed run rebuilds an identical local table.
    """

    spanning_attribute: str
    next_query_index: int
    next_offset: int
    rows: tuple[tuple, ...]
    probes_issued: int = 0
    truncated_probes: int = 0
    pages_followed: int = 0

    def __post_init__(self) -> None:
        if self.next_query_index < 0 or self.next_offset < 0:
            raise ValueError("checkpoint positions cannot be negative")

    def to_dict(self) -> dict[str, Any]:
        return {
            "spanning_attribute": self.spanning_attribute,
            "next_query_index": self.next_query_index,
            "next_offset": self.next_offset,
            "rows": [list(row) for row in self.rows],
            "probes_issued": self.probes_issued,
            "truncated_probes": self.truncated_probes,
            "pages_followed": self.pages_followed,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "CollectionCheckpoint":
        return cls(
            spanning_attribute=payload["spanning_attribute"],
            next_query_index=payload["next_query_index"],
            next_offset=payload["next_offset"],
            rows=tuple(tuple(row) for row in payload["rows"]),
            probes_issued=payload.get("probes_issued", 0),
            truncated_probes=payload.get("truncated_probes", 0),
            pages_followed=payload.get("pages_followed", 0),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "CollectionCheckpoint":
        return cls.from_dict(json.loads(text))


class CollectionInterrupted(Exception):
    """A resumable collection run hit a failure it could not ride out.

    Deliberately *not* a :class:`~repro.db.errors.DatabaseError`: the
    source error that caused the interruption is chained as
    ``__cause__``, while this exception's job is to hand the caller the
    :class:`CollectionCheckpoint` to resume from.
    """

    def __init__(self, checkpoint: CollectionCheckpoint, reason: str) -> None:
        self.checkpoint = checkpoint
        self.reason = reason
        super().__init__(
            f"collection interrupted at spanning query "
            f"{checkpoint.next_query_index} offset {checkpoint.next_offset} "
            f"with {len(checkpoint.rows)} rows collected: {reason}"
        )
