"""Data Collector: probing-based extraction of database samples.

The Data Collector (paper Figure 1) is the offline component that
"probes the databases to extract sample subsets".  It only talks to the
:class:`AutonomousWebDatabase` facade — never to the engine directly —
so it works against any source that answers form queries.

Two collection modes are provided:

* :func:`probe_all` — issue the full spanning family and materialise
  every reachable tuple locally (the paper's 100k CarDB extraction);
* :func:`collect_sample` — same, then simple random sampling without
  replacement down to a target size (the paper's 15k/25k/50k subsets).

:func:`nested_samples` derives several sample sizes from one pass so
robustness experiments (Figs 3–4) compare orderings across sizes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.db.errors import ProbeLimitExceededError, TransientSourceError
from repro.db.table import Table
from repro.db.webdb import AutonomousWebDatabase
from repro.obs.runtime import OBS
from repro.resilience.errors import ResilienceError
from repro.sampling.checkpoint import CollectionCheckpoint, CollectionInterrupted
from repro.sampling.spanning import (
    categorical_spanning_queries,
    choose_spanning_attribute,
)

__all__ = ["CollectionReport", "probe_all", "collect_sample", "nested_samples"]


@dataclass
class CollectionReport:
    """What one collection run did and what it may have missed."""

    spanning_attribute: str
    probes_issued: int = 0
    tuples_collected: int = 0
    truncated_probes: int = 0
    pages_followed: int = 0
    notes: list[str] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        """True when no probe page was left truncated by a result cap."""
        return self.truncated_probes == 0


def probe_all(
    webdb: AutonomousWebDatabase,
    spanning_attribute: str | None = None,
    paginate: bool = True,
    max_pages_per_probe: int = 1000,
    resumable: bool = False,
    checkpoint: CollectionCheckpoint | None = None,
) -> tuple[Table, CollectionReport]:
    """Materialise every reachable tuple via spanning probes.

    When a source caps result pages, ``paginate=True`` (default) keeps
    requesting later offsets — the way a scraper follows "next page"
    links — until the probe is exhausted or ``max_pages_per_probe`` is
    hit.  With ``paginate=False`` only the first page of each probe is
    taken and the report flags the under-coverage.

    With ``resumable=True`` a transient/budget/resilience failure does
    not discard the probes already paid for: the run raises
    :class:`~repro.sampling.checkpoint.CollectionInterrupted` carrying
    a :class:`~repro.sampling.checkpoint.CollectionCheckpoint`, and a
    later call with ``checkpoint=`` continues exactly where it stopped,
    re-issuing no completed probe.  By default (``resumable=False``)
    failures propagate unchanged, as they always did.
    """
    if checkpoint is not None:
        if (
            spanning_attribute is not None
            and spanning_attribute != checkpoint.spanning_attribute
        ):
            raise ValueError(
                "checkpoint was taken with spanning attribute "
                f"{checkpoint.spanning_attribute!r}, not {spanning_attribute!r}"
            )
        attribute = checkpoint.spanning_attribute
    else:
        attribute = spanning_attribute or choose_spanning_attribute(webdb)
    report = CollectionReport(spanning_attribute=attribute)
    local = Table(webdb.schema)
    collected: list[tuple] = []
    start_index = 0
    start_offset = 0
    if checkpoint is not None:
        for row in checkpoint.rows:
            local.insert(row)
            collected.append(row)
        report.probes_issued = checkpoint.probes_issued
        report.truncated_probes = checkpoint.truncated_probes
        report.pages_followed = checkpoint.pages_followed
        start_index = checkpoint.next_query_index
        start_offset = checkpoint.next_offset
        report.notes.append(
            f"resumed from checkpoint: spanning query {start_index}, "
            f"offset {start_offset}, {len(checkpoint.rows)} rows carried over"
        )
        if OBS.enabled:
            OBS.registry.counter(
                "repro_sampling_resumes_total",
                "Collection runs resumed from a checkpoint.",
            ).inc()
    for query_index, query in enumerate(
        categorical_spanning_queries(webdb, attribute)
    ):
        if query_index < start_index:
            continue
        offset = start_offset if query_index == start_index else 0
        pages = 0
        while True:
            try:
                result = webdb.query(query, offset=offset)
            except (
                TransientSourceError,
                ProbeLimitExceededError,
                ResilienceError,
            ) as exc:
                if not resumable:
                    raise
                position = CollectionCheckpoint(
                    spanning_attribute=attribute,
                    next_query_index=query_index,
                    next_offset=offset,
                    rows=tuple(collected),
                    probes_issued=report.probes_issued,
                    truncated_probes=report.truncated_probes,
                    pages_followed=report.pages_followed,
                )
                if OBS.enabled:
                    OBS.registry.counter(
                        "repro_sampling_interruptions_total",
                        "Resumable collection runs interrupted, by error.",
                        labels=("error",),
                    ).labels(error=type(exc).__name__).inc()
                raise CollectionInterrupted(position, reason=str(exc)) from exc
            report.probes_issued += 1
            for row in result:
                local.insert(row)
                collected.append(row)
            offset += len(result)
            pages += 1
            if not result.truncated:
                break
            if not paginate or pages >= max_pages_per_probe:
                report.truncated_probes += 1
                break
            report.pages_followed += 1
    report.tuples_collected = len(local)
    if report.truncated_probes:
        report.notes.append(
            f"{report.truncated_probes} probes were left truncated by the "
            "source's result cap; the extracted set under-covers the relation"
        )
    return local, report


def collect_sample(
    webdb: AutonomousWebDatabase,
    size: int,
    rng: random.Random,
    spanning_attribute: str | None = None,
) -> tuple[Table, CollectionReport]:
    """Simple random sample (without replacement) of the reachable tuples.

    When ``size`` is at least the number of reachable tuples the full
    extraction is returned unchanged.
    """
    if size <= 0:
        raise ValueError("sample size must be positive")
    full, report = probe_all(webdb, spanning_attribute)
    if size >= len(full):
        return full, report
    chosen = rng.sample(range(len(full)), size)
    sample = full.sample(sorted(chosen))
    report.notes.append(f"subsampled {size} of {len(full)} extracted tuples")
    report.tuples_collected = len(sample)
    return sample, report


def nested_samples(
    source: Table, sizes: list[int], rng: random.Random
) -> dict[int, Table]:
    """Nested random subsets of ``source``, one per requested size.

    The largest size's row set contains every smaller one, so apparent
    differences across sizes reflect sample size, not draw luck — the
    property the robustness experiments want to isolate.  Sizes above
    ``len(source)`` are clamped.
    """
    if not sizes:
        return {}
    if any(size <= 0 for size in sizes):
        raise ValueError("sample sizes must be positive")
    ordering = list(range(len(source)))
    rng.shuffle(ordering)
    samples: dict[int, Table] = {}
    for size in sorted(set(sizes)):
        clamped = min(size, len(source))
        samples[size] = source.sample(sorted(ordering[:clamped]))
    return samples
