"""Spanning query generation.

The paper (§6.2) selects probing queries "from a set of spanning
queries, i.e. queries which together cover all the tuples stored in the
data sources".  Against a Web form, the natural spanning family is one
equality probe per drop-down option of a categorical attribute: every
tuple carries some value for the attribute, so the probes jointly cover
the relation (tuples with a *null* in the chosen attribute are invisible
to a form and are documented as uncoverable).

For numeric attributes, forms take free-text bounds, so a spanning
family is a sequence of adjoining ``between`` ranges; we derive those
from a coarse low/high discovery probe pattern.
"""

from __future__ import annotations

from typing import Iterator

from repro.db.predicates import Between, Eq
from repro.db.query import SelectionQuery
from repro.db.webdb import AutonomousWebDatabase

__all__ = [
    "categorical_spanning_queries",
    "numeric_spanning_queries",
    "choose_spanning_attribute",
]


def categorical_spanning_queries(
    webdb: AutonomousWebDatabase, attribute: str
) -> Iterator[SelectionQuery]:
    """One equality probe per form option of ``attribute``."""
    for value in webdb.form_options(attribute):
        yield SelectionQuery((Eq(attribute, value),))


def numeric_spanning_queries(
    attribute: str,
    low: float,
    high: float,
    n_ranges: int,
) -> Iterator[SelectionQuery]:
    """Adjoining ``between`` probes covering ``[low, high]``.

    Ranges are half-open on the top except the last, so no tuple is
    double-covered: [low, b1), [b1, b2), ..., [b_{k-1}, high].
    """
    if n_ranges < 1:
        raise ValueError("n_ranges must be at least 1")
    if low > high:
        raise ValueError(f"inverted range {low!r}..{high!r}")
    width = (high - low) / n_ranges
    if width == 0:
        # Degenerate extent: a single probe covers the only value.
        yield SelectionQuery((Between(attribute, low, high),))
        return
    epsilon = width * 1e-9
    for i in range(n_ranges):
        range_low = low + i * width
        range_high = high if i == n_ranges - 1 else low + (i + 1) * width - epsilon
        yield SelectionQuery((Between(attribute, range_low, range_high),))


def choose_spanning_attribute(webdb: AutonomousWebDatabase) -> str:
    """Pick the categorical attribute whose option list is largest.

    More options mean smaller per-probe result pages, which matters when
    the source caps result sizes: a spanning family over a fine-grained
    attribute loses fewer tuples to truncation.
    """
    best_name: str | None = None
    best_fanout = -1
    for name in webdb.schema.categorical_names:
        fanout = len(webdb.form_options(name))
        if fanout > best_fanout:
            best_name, best_fanout = name, fanout
    if best_name is None:
        raise ValueError(
            f"relation {webdb.name!r} has no categorical attribute to span"
        )
    return best_name
