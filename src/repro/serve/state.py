"""Server state: load the mined artifacts once, swap them atomically.

The expensive offline artifacts — the source facade, the AFD/VSim
model (mined or loaded from a :mod:`repro.core.store` JSON file) — are
built exactly the way the ``repro query`` CLI builds them, so every
answer served from this state is bit-identical to the one-shot path.

Warm reload is crash-safe by construction: :meth:`ServeState.reload`
builds a complete new bundle *outside* the state lock (model mining
probes the source; nothing slow runs under a lock), then swaps the
reference in one locked assignment.  A reload that raises leaves the
previous bundle untouched and still serving.
"""

from __future__ import annotations

import dataclasses
import random
import threading
from dataclasses import dataclass
from typing import Any

from repro.core.config import AIMQSettings
from repro.core.pipeline import AIMQModel, build_model
from repro.core.store import load_model
from repro.datasets.cardb import cardb_webdb
from repro.datasets.census import census_webdb
from repro.db.webdb import AutonomousWebDatabase
from repro.evalx import census_settings
from repro.obs.runtime import OBS
from repro.serve.config import ServeConfig

__all__ = ["ModelBundle", "ServeState"]


@dataclass(frozen=True)
class ModelBundle:
    """One immutable generation of serving state.

    Handlers snapshot the current bundle once per request and use it
    throughout, so a concurrent reload never mixes generations inside
    a single answer.
    """

    webdb: AutonomousWebDatabase
    model: AIMQModel
    generation: int


def _dataset_webdb(config: ServeConfig) -> AutonomousWebDatabase:
    """The shared source facade, built the way the CLI builds it."""
    if config.dataset == "cardb":
        webdb = cardb_webdb(config.rows, seed=config.seed)
    else:
        webdb = census_webdb(config.rows, seed=config.seed)[0]
    if config.probe_cache_capacity > 0:
        # The shared, admission-bounded probe cache: repeats across
        # concurrent sessions are served locally.  A cold cache charges
        # nothing and changes nothing, so first-touch answers remain
        # bit-identical to the cache-less CLI path.
        webdb.enable_probe_cache(config.probe_cache_capacity)
    return webdb


def _dataset_settings(config: ServeConfig) -> AIMQSettings:
    if config.dataset == "censusdb":
        settings = census_settings(error_threshold=0.3)
    else:
        settings = AIMQSettings(max_relaxation_level=3)
    if config.sim_index:
        # Mirror the CLI's --sim-index wiring: inverted-index candidate
        # generation while mining, the neighbour index behind
        # top_similar, and bound-based early termination while ranking.
        settings = dataclasses.replace(
            settings,
            indexed_ranking=True,
            simmining=dataclasses.replace(
                settings.simmining, use_index=True, index_topk=True
            ),
        )
    return settings


def _build_bundle(config: ServeConfig, generation: int) -> ModelBundle:
    webdb = _dataset_webdb(config)
    if config.model_path:
        model = load_model(config.model_path, webdb.schema)
    else:
        model = build_model(
            webdb,
            sample_size=config.sample,
            rng=random.Random(config.seed + 1),
            settings=_dataset_settings(config),
        )
    return ModelBundle(webdb=webdb, model=model, generation=generation)


class ServeState:
    """Holds the current :class:`ModelBundle` behind an atomic swap."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self._lock = threading.Lock()
        self._bundle: ModelBundle | None = None
        self._reloads = 0
        self._reload_failures = 0

    @classmethod
    def load(cls, config: ServeConfig) -> "ServeState":
        """Build the first generation eagerly (server start)."""
        state = cls(config)
        state.reload()
        return state

    @classmethod
    def from_bundle(
        cls,
        config: ServeConfig,
        webdb: AutonomousWebDatabase,
        model: AIMQModel,
    ) -> "ServeState":
        """Adopt already-built artifacts (bench and test harnesses).

        The caller owns the facade's probe-cache setting; this skips
        :func:`_dataset_webdb` entirely so a harness can serve several
        configurations of the same mined model without re-mining.
        """
        state = cls(config)
        with state._lock:
            state._bundle = ModelBundle(webdb=webdb, model=model, generation=1)
            state._reloads = 1
        return state

    # -- access ------------------------------------------------------------

    def current(self) -> ModelBundle:
        with self._lock:
            if self._bundle is None:
                raise RuntimeError("serve state not loaded yet")
            return self._bundle

    @property
    def ready(self) -> bool:
        with self._lock:
            return self._bundle is not None

    # -- warm reload -------------------------------------------------------

    def reload(self) -> ModelBundle:
        """Build a fresh bundle and swap it in atomically.

        All mining/loading happens before the lock is taken; a failure
        propagates to the caller and the old bundle keeps serving.
        """
        with self._lock:
            generation = self._bundle.generation + 1 if self._bundle else 1
        try:
            bundle = _build_bundle(self.config, generation)
        except Exception:
            with self._lock:
                self._reload_failures += 1
            raise
        with self._lock:
            self._bundle = bundle
            self._reloads += 1
        if OBS.events.enabled:
            OBS.emit_event(
                "serve.state_reload",
                generation=generation,
                dataset=self.config.dataset,
                from_store=bool(self.config.model_path),
                trace_id=OBS.current_trace_id() or "",
            )
        return bundle

    # -- introspection -----------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Plain JSON-able state summary for ``/stats``."""
        with self._lock:
            bundle = self._bundle
            reloads = self._reloads
            failures = self._reload_failures
        payload: dict[str, Any] = {
            "ready": bundle is not None,
            "reloads": reloads,
            "reload_failures": failures,
            "dataset": self.config.dataset,
        }
        if bundle is not None:
            payload.update(
                generation=bundle.generation,
                relation=bundle.webdb.schema.name,
                rows=bundle.webdb.cardinality_hint(),
                sample_rows=len(bundle.model.sample),
            )
        return payload
