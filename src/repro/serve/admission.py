"""Admission control: token bucket, bounded queue, load shedding.

Overload protection happens *before* any model work: a request first
passes the :class:`AdmissionController`, which either grants an
in-flight slot, parks the request in a bounded wait queue, or sheds it
(HTTP 429 + ``Retry-After``).  Shedding at the door is degradation
stage one — the server stays upright by refusing work it cannot finish
rather than queueing unboundedly and collapsing.

The controller is deterministic under an injected
:class:`~repro.resilience.clock.Clock`: the token bucket refills from
``clock.monotonic()``, so chaos tests drive it with a
:class:`~repro.resilience.clock.VirtualClock` and no real sleeps.  All
mutable state lives behind one lock; blocking (the queue wait) happens
on the condition built over that same lock, never while holding it
around slow work.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any

from repro.obs.runtime import OBS
from repro.resilience.clock import Clock, SystemClock
from repro.serve.config import ServeConfig

__all__ = ["AdmissionController", "AdmissionDecision"]

#: Shed reasons, also the ``reason`` label of ``repro_serve_shed_total``.
SHED_DRAINING = "draining"
SHED_QUEUE_FULL = "queue_full"
SHED_THROTTLED = "throttled"
SHED_QUEUE_TIMEOUT = "queue_timeout"


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission attempt.

    ``pressure`` is the in-flight utilisation (0..1) observed at the
    moment of admission — the session layer uses it to pick the
    request's budgets, so one consistent snapshot drives both the
    admission and the degradation stage.
    """

    admitted: bool
    reason: str
    retry_after_seconds: float
    pressure: float


class AdmissionController:
    """Token-bucket admission with a bounded wait queue.

    Order of checks for one request: drain flag, token bucket, then
    slot availability.  A request that finds all ``max_inflight`` slots
    busy waits on the slot condition for at most
    ``queue_wait_seconds`` — but only while fewer than ``max_queue``
    requests are already waiting; beyond that depth it is shed
    immediately.  ``queue_wait_seconds=0`` disables waiting entirely
    (every full moment sheds), which is what the deterministic tests
    use.
    """

    def __init__(self, config: ServeConfig, clock: Clock | None = None) -> None:
        self.config = config
        self._clock: Clock = clock if clock is not None else SystemClock()
        # One condition guards every mutable field; waiting for a slot
        # and mutating the counters share its lock, so a release can
        # wake queued requests without a second lock in the picture.
        self._slots = threading.Condition()
        self._inflight = 0
        self._waiting = 0
        self._draining = False
        self._tokens = float(config.burst)
        self._refilled = self._clock.monotonic()
        self.admitted_total = 0
        self.shed_total = 0
        self.shed_by_reason: dict[str, int] = {}

    # -- admission ---------------------------------------------------------

    def admit(self, wait: bool = True) -> AdmissionDecision:
        """Try to claim an in-flight slot for one request.

        An admitted decision *must* be paired with :meth:`release` once
        the request finishes (use :class:`~repro.serve.session.RequestSession`
        as a context manager to get that for free).
        """
        with self._slots:
            decision = self._admit_locked(wait)
            inflight = self._inflight
            waiting = self._waiting
        self._publish(decision, inflight, waiting)
        return decision

    def _admit_locked(self, wait: bool) -> AdmissionDecision:
        config = self.config
        if self._draining:
            return self._shed_locked(SHED_DRAINING, config.retry_after_seconds)
        if not self._take_token_locked():
            return self._shed_locked(
                SHED_THROTTLED, self._throttle_retry_after_locked()
            )
        if self._inflight < config.max_inflight:
            return self._grant_locked()
        if not wait or config.queue_wait_seconds == 0 or config.max_queue == 0:
            return self._shed_locked(SHED_QUEUE_FULL, config.retry_after_seconds)
        if self._waiting >= config.max_queue:
            return self._shed_locked(SHED_QUEUE_FULL, config.retry_after_seconds)
        return self._wait_for_slot_locked()

    def _wait_for_slot_locked(self) -> AdmissionDecision:
        """Park the request until a slot frees, the wait budget runs
        out, or a drain begins.  The condition wait releases the lock,
        so releases and other admissions proceed while we sleep."""
        config = self.config
        deadline = self._clock.monotonic() + config.queue_wait_seconds
        self._waiting += 1
        try:
            while True:
                if self._draining:
                    return self._shed_locked(
                        SHED_DRAINING, config.retry_after_seconds
                    )
                if self._inflight < config.max_inflight:
                    return self._grant_locked()
                timeout = deadline - self._clock.monotonic()
                if timeout <= 0:
                    return self._shed_locked(
                        SHED_QUEUE_TIMEOUT, config.retry_after_seconds
                    )
                self._slots.wait(timeout)
        finally:
            self._waiting -= 1

    def _grant_locked(self) -> AdmissionDecision:
        self._inflight += 1
        self.admitted_total += 1
        return AdmissionDecision(
            admitted=True,
            reason="ok",
            retry_after_seconds=0.0,
            pressure=self._inflight / self.config.max_inflight,
        )

    def _shed_locked(self, reason: str, retry_after: float) -> AdmissionDecision:
        self.shed_total += 1
        self.shed_by_reason[reason] = self.shed_by_reason.get(reason, 0) + 1
        return AdmissionDecision(
            admitted=False,
            reason=reason,
            retry_after_seconds=retry_after,
            pressure=self._inflight / self.config.max_inflight,
        )

    def release(self) -> None:
        """Return one in-flight slot and wake a queued request."""
        with self._slots:
            self._inflight -= 1
            inflight = self._inflight
            waiting = self._waiting
            self._slots.notify()
        self._publish(None, inflight, waiting)

    # -- token bucket ------------------------------------------------------

    def _take_token_locked(self) -> bool:
        config = self.config
        if config.rate <= 0:
            return True
        now = self._clock.monotonic()
        self._tokens = min(
            float(config.burst),
            self._tokens + (now - self._refilled) * config.rate,
        )
        self._refilled = now
        if self._tokens < 1.0:
            return False
        self._tokens -= 1.0
        return True

    def _throttle_retry_after_locked(self) -> float:
        config = self.config
        if config.rate <= 0:
            return config.retry_after_seconds
        deficit = (1.0 - self._tokens) / config.rate
        return max(config.retry_after_seconds, deficit)

    # -- drain -------------------------------------------------------------

    def start_drain(self) -> None:
        """Stop admitting; wake every queued request so it sheds."""
        with self._slots:
            self._draining = True
            self._slots.notify_all()

    @property
    def draining(self) -> bool:
        with self._slots:
            return self._draining

    def await_idle(self, timeout_seconds: float) -> bool:
        """Block until no request is in flight or queued (True), or the
        drain deadline passes (False).  Event-driven: each release
        notifies the condition, so no polling sleeps are involved."""
        deadline = self._clock.monotonic() + timeout_seconds
        with self._slots:
            while self._inflight > 0 or self._waiting > 0:
                remaining = deadline - self._clock.monotonic()
                if remaining <= 0:
                    return False
                self._slots.wait(remaining)
            return True

    # -- introspection -----------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Plain JSON-able counters for ``/stats``."""
        with self._slots:
            return {
                "inflight": self._inflight,
                "queued": self._waiting,
                "draining": self._draining,
                "admitted_total": self.admitted_total,
                "shed_total": self.shed_total,
                "shed_by_reason": dict(self.shed_by_reason),
                "max_inflight": self.config.max_inflight,
                "max_queue": self.config.max_queue,
            }

    # -- metrics -----------------------------------------------------------

    @staticmethod
    def _publish(
        decision: AdmissionDecision | None, inflight: int, waiting: int
    ) -> None:
        """Mirror admission state into the serve metric families.

        Runs *after* the lock is released: the registry serialises
        internally, and publishing stale-by-a-moment gauges is better
        than holding the admission lock across another subsystem."""
        if not OBS.enabled:
            return
        registry = OBS.registry
        registry.gauge(
            "repro_serve_inflight_count",
            "Requests currently holding an in-flight slot.",
        ).set(inflight)
        registry.gauge(
            "repro_serve_queue_depth_count",
            "Requests parked in the bounded admission queue.",
        ).set(waiting)
        if decision is not None and not decision.admitted:
            registry.counter(
                "repro_serve_shed_total",
                "Requests shed at admission, by reason.",
                labels=("reason",),
            ).labels(reason=decision.reason).inc()
