"""Graceful shutdown: SIGTERM → stop admitting → drain → final event.

The drain protocol has three steps and never strands a request:

1. :meth:`LifecycleController.request_shutdown` flips the admission
   controller into draining mode — new arrivals are shed with 429 and
   queued requests are woken so they shed too.
2. :meth:`drain` blocks until every in-flight request has released its
   slot, or the ``drain_seconds`` deadline passes (whichever is first).
   The wait is event-driven on the admission condition, no polling.
3. A final ``serve.drain`` wide event records how the shutdown went,
   and the buffered event log is flushed to ``events_out`` if one was
   configured — so even an abrupt termination leaves a forensic trail.

Signal installation is separated from the drain logic so tests can
drive the whole protocol with a :class:`~repro.resilience.clock.VirtualClock`
and never touch real signal handlers.
"""

from __future__ import annotations

import signal
import threading
from typing import Any, Callable

from repro.obs.runtime import OBS
from repro.serve.admission import AdmissionController
from repro.serve.config import ServeConfig

__all__ = ["LifecycleController"]


class LifecycleController:
    """Coordinates one server's shutdown sequence."""

    def __init__(
        self, admission: AdmissionController, config: ServeConfig
    ) -> None:
        self.admission = admission
        self.config = config
        self.shutdown_requested = threading.Event()
        self.drained: bool | None = None
        self._signal_reason = ""

    # -- signal wiring -----------------------------------------------------

    def install(self, on_shutdown: Callable[[], None] | None = None) -> None:
        """Register SIGTERM/SIGINT handlers (main thread only).

        ``on_shutdown`` runs on a helper thread after the drain flag is
        set — the server uses it to call ``httpd.shutdown()``, which
        must not run on the thread executing ``serve_forever``.
        """

        def _handler(signum: int, _frame: Any) -> None:
            self.request_shutdown(reason=signal.Signals(signum).name)
            if on_shutdown is not None:
                threading.Thread(
                    target=on_shutdown, name="serve-shutdown", daemon=True
                ).start()

        signal.signal(signal.SIGTERM, _handler)
        signal.signal(signal.SIGINT, _handler)

    # -- drain protocol ----------------------------------------------------

    def request_shutdown(self, reason: str = "requested") -> None:
        """Step one: stop admitting.  Idempotent and signal-safe —
        everything here is a flag flip plus a condition notify."""
        if not self.shutdown_requested.is_set():
            self._signal_reason = reason
            self.shutdown_requested.set()
        self.admission.start_drain()

    def drain(self) -> bool:
        """Steps two and three: wait out in-flight work, then record.

        Returns True when every request finished inside the drain
        budget, False when the deadline cut the wait short (remaining
        requests keep running until the process exits — they are never
        cancelled mid-answer).
        """
        self.request_shutdown(reason=self._signal_reason or "drain")
        drained = self.admission.await_idle(self.config.drain_seconds)
        self.drained = drained
        self._emit_final_event(drained)
        self._flush_events()
        return drained

    # -- forensics ---------------------------------------------------------

    def _emit_final_event(self, drained: bool) -> None:
        if not OBS.events.enabled:
            return
        snapshot = self.admission.snapshot()
        OBS.emit_event(
            "serve.drain",
            reason=self._signal_reason or "drain",
            drained=drained,
            drain_seconds=self.config.drain_seconds,
            inflight_at_deadline=snapshot["inflight"],
            admitted_total=snapshot["admitted_total"],
            shed_total=snapshot["shed_total"],
            trace_id=OBS.current_trace_id() or "",
        )

    def _flush_events(self) -> None:
        if self.config.events_out and OBS.events.enabled:
            OBS.events.write_jsonl(self.config.events_out)
