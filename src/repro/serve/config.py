"""One immutable knob-set for the whole serving stack.

:class:`ServeConfig` bundles everything ``repro serve`` needs: which
dataset/model to load, how the shared probe cache is sized, the
admission-control envelope (token bucket, queue bound, in-flight
concurrency), and the staged-degradation thresholds that shrink
per-request budgets under pressure.  Like
:class:`~repro.resilience.policy.ResiliencePolicy` it is frozen and
validated up front so a misconfigured server refuses to start instead
of misbehaving under load.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.plan import FRONTIER_MODES

__all__ = ["ServeConfig"]


@dataclass(frozen=True)
class ServeConfig:
    """Configuration for one :class:`~repro.serve.app.AIMQServer`.

    Admission envelope
        ``max_inflight`` bounds concurrently answering requests;
        ``max_queue`` bounds requests waiting for a slot;
        ``queue_wait_seconds`` bounds how long a queued request waits
        before it is shed; ``rate``/``burst`` shape the token bucket
        (``rate=0`` disables throttling).  Shed responses carry
        ``Retry-After: retry_after_seconds``.

    Staged degradation
        Once in-flight utilisation reaches ``pressure_threshold`` the
        request still runs, but under shrunken budgets: the per-query
        deadline drops to ``pressured_deadline_seconds`` and at most
        ``pressured_probe_cap`` source probes may be issued — the
        engine then returns a *partial* answer with a
        :class:`~repro.resilience.degradation.DegradationReport`
        instead of an error.
    """

    # -- binding ----------------------------------------------------------
    host: str = "127.0.0.1"
    port: int = 8080

    # -- model / source ---------------------------------------------------
    dataset: str = "cardb"
    rows: int = 2_000
    sample: int = 500
    seed: int = 7
    model_path: str | None = None
    probe_cache_capacity: int = 4_096
    # Mine and answer through the inverted similarity index
    # (simmining ``use_index``/``index_topk`` plus the engine's
    # bound-based ``indexed_ranking``).  Answers stay bit-identical;
    # only the retrieval complexity changes (docs/PERFORMANCE.md §9).
    sim_index: bool = False

    # -- answering defaults (mirror the ``repro query`` flags) ------------
    default_k: int = 10
    max_k: int = 200
    resilient: bool = True
    batched: bool = False
    frontier: str = "tuple"
    batch_workers: int = 1

    # -- admission envelope ----------------------------------------------
    max_inflight: int = 8
    max_queue: int = 16
    queue_wait_seconds: float = 2.0
    rate: float = 0.0
    burst: int = 1
    retry_after_seconds: float = 1.0

    # -- staged degradation ----------------------------------------------
    pressure_threshold: float = 0.75
    query_deadline_seconds: float | None = None
    pressured_deadline_seconds: float = 2.0
    pressured_probe_cap: int = 64

    # -- lifecycle --------------------------------------------------------
    drain_seconds: float = 5.0
    events_out: str | None = None

    def __post_init__(self) -> None:
        if self.dataset not in ("cardb", "censusdb"):
            raise ValueError(f"unknown dataset {self.dataset!r}")
        if self.rows < 1 or self.sample < 1:
            raise ValueError("rows and sample must be positive")
        if self.probe_cache_capacity < 0:
            raise ValueError("probe_cache_capacity cannot be negative")
        if self.default_k < 1 or self.max_k < self.default_k:
            raise ValueError("need 1 <= default_k <= max_k")
        if self.frontier not in FRONTIER_MODES:
            raise ValueError(
                f"frontier must be one of {FRONTIER_MODES}, "
                f"got {self.frontier!r}"
            )
        if self.batch_workers < 1:
            raise ValueError("batch_workers must be at least 1")
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        if self.max_queue < 0:
            raise ValueError("max_queue cannot be negative")
        if self.queue_wait_seconds < 0:
            raise ValueError("queue_wait_seconds cannot be negative")
        if self.rate < 0:
            raise ValueError("rate cannot be negative")
        if self.burst < 1:
            raise ValueError("burst must be at least 1")
        if self.retry_after_seconds <= 0:
            raise ValueError("retry_after_seconds must be positive")
        if not 0.0 < self.pressure_threshold <= 1.0:
            raise ValueError("pressure_threshold must be in (0, 1]")
        if (
            self.query_deadline_seconds is not None
            and self.query_deadline_seconds <= 0
        ):
            raise ValueError("query_deadline_seconds must be positive (or None)")
        if self.pressured_deadline_seconds <= 0:
            raise ValueError("pressured_deadline_seconds must be positive")
        if self.pressured_probe_cap < 1:
            raise ValueError("pressured_probe_cap must be at least 1")
        if self.drain_seconds < 0:
            raise ValueError("drain_seconds cannot be negative")
