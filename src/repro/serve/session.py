"""Per-request context: budgets, resilience scope, probe cap.

Degradation stage two lives here.  Every admitted request gets a
:class:`SessionBudgets` derived from the pressure observed at
admission: under normal load the budgets are the configured defaults
(usually unlimited), but once in-flight utilisation crosses
``pressure_threshold`` the per-query deadline shrinks and a per-request
probe cap switches on.  The engine already knows how to degrade under
both — it returns a *partial* :class:`~repro.core.results.AnswerSet`
with a :class:`~repro.resilience.degradation.DegradationReport` — so a
pressured request still answers, just with less source work behind it.

The probe cap is enforced by :class:`BudgetedSource`, a thin
per-request proxy over the shared facade.  Cache hits never charge the
cap (matching the facade's own budget semantics), so cached traffic
stays cheap even under pressure.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from types import TracebackType
from typing import Any, cast

from repro.core.plan import PlannerConfig
from repro.core.query import ImpreciseQuery
from repro.core.results import AnswerSet
from repro.db import (
    AutonomousWebDatabase,
    ProbeLimitExceededError,
    QueryResult,
    SelectionQuery,
)
from repro.resilience import Clock, ResiliencePolicy
from repro.serve.admission import AdmissionController
from repro.serve.config import ServeConfig
from repro.serve.state import ModelBundle

__all__ = ["BudgetedSource", "RequestSession", "SessionBudgets", "budgets_for"]


@dataclass(frozen=True)
class SessionBudgets:
    """The resource envelope of one admitted request."""

    query_deadline_seconds: float | None
    probe_cap: int | None
    pressured: bool


def budgets_for(config: ServeConfig, pressure: float) -> SessionBudgets:
    """Derive one request's budgets from the admission-time pressure."""
    if pressure >= config.pressure_threshold:
        deadline = config.pressured_deadline_seconds
        if config.query_deadline_seconds is not None:
            deadline = min(deadline, config.query_deadline_seconds)
        return SessionBudgets(
            query_deadline_seconds=deadline,
            probe_cap=config.pressured_probe_cap,
            pressured=True,
        )
    return SessionBudgets(
        query_deadline_seconds=config.query_deadline_seconds,
        probe_cap=None,
        pressured=False,
    )


class BudgetedSource:
    """Per-request probe cap over the shared facade.

    Counts source-reaching probes issued through *this* request and
    raises :class:`~repro.db.errors.ProbeLimitExceededError` once the
    cap is reached — the same permanent error the facade's own global
    budget raises, so the engine's degradation path handles it
    unchanged.  Results served from the shared probe cache are free.
    Everything that is not probing delegates to the shared facade
    verbatim.
    """

    def __init__(self, inner: AutonomousWebDatabase, probe_cap: int) -> None:
        self._serve_inner = inner
        self._probe_cap = probe_cap
        self._issued_lock = threading.Lock()
        self._issued = 0

    @property
    def probes_issued(self) -> int:
        with self._issued_lock:
            return self._issued

    def _check_cap(self) -> None:
        with self._issued_lock:
            issued = self._issued
        if issued >= self._probe_cap:
            raise ProbeLimitExceededError(self._probe_cap, probes_issued=issued)

    def _charge(self) -> None:
        with self._issued_lock:
            self._issued += 1

    def query(
        self,
        query: SelectionQuery,
        limit: int | None = None,
        offset: int = 0,
    ) -> QueryResult:
        self._check_cap()
        result = self._serve_inner.query(query, limit=limit, offset=offset)
        if not result.from_cache:
            self._charge()
        return result

    def count(self, query: SelectionQuery) -> int:
        self._check_cap()
        matches = self._serve_inner.count(query)
        self._charge()
        return matches

    def __getattr__(self, name: str) -> Any:
        return getattr(self._serve_inner, name)


class RequestSession:
    """One admitted request's answering context.

    Builds a fresh :class:`~repro.core.engine.AIMQEngine` over the
    shared state — exactly the way the ``repro query`` CLI does, which
    is what makes served answers bit-identical — wrapped in the
    request's own resilience scope and probe cap.  Used as a context
    manager so the admission slot is always released, even when the
    handler raises.
    """

    def __init__(
        self,
        bundle: ModelBundle,
        config: ServeConfig,
        budgets: SessionBudgets,
        admission: AdmissionController | None = None,
        clock: Clock | None = None,
    ) -> None:
        self.bundle = bundle
        self.budgets = budgets
        self._admission = admission
        self._released = False
        source: AutonomousWebDatabase = bundle.webdb
        self.budgeted: BudgetedSource | None = None
        if budgets.probe_cap is not None:
            self.budgeted = BudgetedSource(source, budgets.probe_cap)
            source = cast(AutonomousWebDatabase, self.budgeted)
        resilience: ResiliencePolicy | None = None
        if config.resilient or budgets.query_deadline_seconds is not None:
            resilience = ResiliencePolicy(
                query_deadline_seconds=budgets.query_deadline_seconds
            )
        planner = (
            PlannerConfig(frontier=config.frontier, workers=config.batch_workers)
            if config.batched
            else None
        )
        self.engine = bundle.model.engine(
            source, resilience=resilience, clock=clock, planner=planner
        )

    def answer(self, query: ImpreciseQuery, k: int) -> AnswerSet:
        return self.engine.answer(query, k=k)

    # -- context management ------------------------------------------------

    def __enter__(self) -> "RequestSession":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.release()

    def release(self) -> None:
        """Return the admission slot (idempotent)."""
        if self._released or self._admission is None:
            return
        self._released = True
        self._admission.release()
