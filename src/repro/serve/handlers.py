"""Request handlers: ``/query``, ``/healthz``, ``/readyz``, ``/metrics``,
``/stats`` and ``/reload``.

The :class:`Router` is transport-free: it maps ``(method, path, params,
body)`` to a :class:`Response`, and :mod:`repro.serve.app` adapts it to
``http.server``.  The chaos suite drives the router directly — same
code path, no sockets, no real sleeps.

Contract highlights:

* ``/query`` answers are **bit-identical** to ``repro query``: the
  handler builds the same :class:`~repro.core.query.ImpreciseQuery`
  (same ``Attr=Value`` coercion), the same per-request engine, and
  serialises the resulting :class:`~repro.core.results.AnswerSet` with
  :func:`answer_payload` — which tests also apply to the CLI-path
  answer to prove equality.
* Overload never turns into a 500: shed requests get 429 +
  ``Retry-After`` (stage one), pressured requests run under shrunken
  budgets (stage two), and source failures degrade into partial
  answers with a ``degradation`` block (stage three).
* Every request runs inside a ``serve.request`` span; the engine's
  spans and wide events inherit its trace id, which is also returned
  in the ``X-Trace-Id`` response header.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.core.parser import parse_query
from repro.core.query import ImpreciseQuery
from repro.core.results import AnswerSet
from repro.db import DatabaseError
from repro.obs.export import to_prometheus
from repro.obs.runtime import OBS
from repro.resilience import ResilienceError
from repro.resilience.clock import Clock, SystemClock
from repro.serve.admission import SHED_QUEUE_FULL, AdmissionController
from repro.simmining.index import preregister_index_metrics
from repro.serve.config import ServeConfig
from repro.serve.session import RequestSession, SessionBudgets, budgets_for
from repro.serve.state import ServeState

__all__ = [
    "Response",
    "Router",
    "answer_payload",
    "preregister_serve_metrics",
]

#: Latency buckets for ``repro_serve_request_seconds`` — shared by the
#: per-request observation and the zero pre-registration so the family
#: is always created with one consistent shape.
REQUEST_SECONDS_BUCKETS = (
    0.001,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
)


@dataclass
class Response:
    """One transport-free HTTP response."""

    status: int
    body: bytes
    content_type: str = "application/json"
    headers: dict[str, str] = field(default_factory=dict)

    def json(self) -> Any:
        """Decode the body as JSON (test and bench convenience)."""
        return json.loads(self.body.decode("utf-8"))


def _json_response(
    status: int, payload: Mapping[str, Any], headers: dict[str, str] | None = None
) -> Response:
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    return Response(status, body, headers=headers or {})


def _text_response(status: int, text: str, content_type: str) -> Response:
    return Response(status, text.encode("utf-8"), content_type=content_type)


def coerce_value(raw: str) -> object:
    """``Attr=Value`` coercion, identical to the CLI's ``_parse_binding``."""
    value: object = raw
    try:
        value = int(raw)
    except ValueError:
        try:
            value = float(raw)
        except ValueError:
            pass
    return value


def answer_payload(
    answers: AnswerSet, budgets: SessionBudgets | None = None
) -> dict[str, Any]:
    """Serialise one :class:`AnswerSet` into plain JSON-able structures.

    Field-for-field faithful: rows, ranked order, every trace counter
    and every degradation flag come straight from the answer object, so
    applying this function to a CLI-path :class:`AnswerSet` yields the
    exact payload the server returns for the same query — the
    bit-identity assertion in the tests compares these dicts directly.
    """
    trace = answers.trace
    degradation = trace.degradation
    payload: dict[str, Any] = {
        "query": answers.query.describe(),
        "answers": [
            {
                "row_id": answer.row_id,
                "row": list(answer.row),
                "similarity": answer.similarity,
                "base_similarity": answer.base_similarity,
                "source_base_row_id": answer.source_base_row_id,
                "relaxation_level": answer.relaxation_level,
            }
            for answer in answers.answers
        ],
        "trace": {
            "base_set_size": trace.base_set_size,
            "generalisation_steps": len(trace.generalisation_steps),
            "queries_issued": trace.queries_issued,
            "probes_cached": trace.probes_cached,
            "probes_subsumed": trace.probes_subsumed,
            "probes_speculative": trace.probes_speculative,
            "frontier_batches": trace.frontier_batches,
            "logical_probes": trace.logical_probes,
            "tuples_extracted": trace.tuples_extracted,
            "tuples_relevant": trace.tuples_relevant,
            "deepest_level": trace.deepest_level,
        },
        "degraded": answers.degraded,
        "degradation": {
            "steps_skipped": len(degradation.skipped),
            "budget_exhausted": degradation.budget_exhausted,
            "breaker_open": degradation.breaker_open,
            "deadline_exceeded": degradation.deadline_exceeded,
            "probes_failed": degradation.probes_failed,
            "retries_used": degradation.retries_used,
            "breaker_opens": degradation.breaker_opens,
            "summary": degradation.summary(),
        },
    }
    if budgets is not None:
        payload["budgets"] = {
            "pressured": budgets.pressured,
            "query_deadline_seconds": budgets.query_deadline_seconds,
            "probe_cap": budgets.probe_cap,
        }
    return payload


class Router:
    """Maps one parsed request to a :class:`Response`."""

    def __init__(
        self,
        state: ServeState,
        admission: AdmissionController,
        config: ServeConfig,
        clock: Clock | None = None,
    ) -> None:
        self.state = state
        self.admission = admission
        self.config = config
        self._clock: Clock = clock if clock is not None else SystemClock()

    # -- entry point -------------------------------------------------------

    def route(
        self,
        method: str,
        path: str,
        params: Mapping[str, Sequence[str]] | None = None,
        body: bytes = b"",
    ) -> Response:
        params = params or {}
        started = self._clock.monotonic()
        try:
            response = self._dispatch(method, path, params, body)
        except (ValueError, KeyError, json.JSONDecodeError) as exc:
            response = _json_response(400, {"error": str(exc)})
        except (DatabaseError, ResilienceError, OSError) as exc:
            response = _json_response(
                503, {"error": f"{type(exc).__name__}: {exc}"}
            )
        except Exception as exc:
            # Structured last resort: a handler bug must never tear the
            # connection down without a response.  The chaos suite
            # asserts this path stays cold (zero 500s under fault load).
            response = _json_response(
                500, {"error": f"internal: {type(exc).__name__}: {exc}"}
            )
        self._observe(method, path, response, self._clock.monotonic() - started)
        return response

    def _dispatch(
        self,
        method: str,
        path: str,
        params: Mapping[str, Sequence[str]],
        body: bytes,
    ) -> Response:
        if path == "/healthz":
            return _text_response(200, "ok\n", "text/plain; charset=utf-8")
        if path == "/readyz":
            return self._readyz()
        if path == "/metrics":
            return _text_response(
                200,
                to_prometheus(OBS.registry.snapshot()),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        if path == "/stats":
            return self._stats()
        if path == "/reload" and method == "POST":
            return self._reload()
        if path == "/query" and method in ("GET", "POST"):
            return self._query(method, params, body)
        return _json_response(404, {"error": f"no route for {method} {path}"})

    # -- simple endpoints --------------------------------------------------

    def _readyz(self) -> Response:
        if not self.state.ready:
            return _json_response(503, {"ready": False, "reason": "loading"})
        if self.admission.draining:
            return _json_response(503, {"ready": False, "reason": "draining"})
        return _json_response(200, {"ready": True})

    def _stats(self) -> Response:
        bundle = self.state.current() if self.state.ready else None
        payload: dict[str, Any] = {
            "admission": self.admission.snapshot(),
            "state": self.state.snapshot(),
        }
        if bundle is not None:
            log = bundle.webdb.log.snapshot()
            payload["source"] = {
                "probes_issued": log.probes_issued,
                "tuples_returned": log.tuples_returned,
                "empty_results": log.empty_results,
                "count_probes": log.count_probes,
                "cache_hits": log.cache_hits,
            }
        return _json_response(200, payload)

    def _reload(self) -> Response:
        try:
            bundle = self.state.reload()
        except (DatabaseError, ResilienceError, OSError, ValueError) as exc:
            return _json_response(
                503, {"reloaded": False, "error": str(exc)}
            )
        return _json_response(
            200, {"reloaded": True, "generation": bundle.generation}
        )

    # -- /query ------------------------------------------------------------

    def _query(
        self,
        method: str,
        params: Mapping[str, Sequence[str]],
        body: bytes,
    ) -> Response:
        if not self.state.ready:
            return _json_response(503, {"error": "model not loaded yet"})
        bundle = self.state.current()
        try:
            query, k = self._parse_query_request(
                method, params, body, bundle.webdb.schema.name
            )
        except ValueError as exc:
            return _json_response(400, {"error": str(exc)})

        decision = self.admission.admit()
        if not decision.admitted:
            retry_after = max(1, round(decision.retry_after_seconds))
            return _json_response(
                429,
                {
                    "error": "overloaded, request shed",
                    "reason": decision.reason,
                    "retry_after_seconds": decision.retry_after_seconds,
                },
                headers={"Retry-After": str(retry_after)},
            )

        budgets = budgets_for(self.config, decision.pressure)
        with RequestSession(
            bundle,
            self.config,
            budgets,
            admission=self.admission,
            clock=self._clock,
        ) as session, OBS.span(
            "serve.request", route="/query", pressured=budgets.pressured
        ) as span:
            # The no-op span (observability off) carries no trace id.
            trace_id = str(getattr(span, "trace_id", "") or "")
            answers = session.answer(query, k)
            payload = answer_payload(answers, budgets)
            payload["trace_id"] = trace_id
            self._emit_request_event(trace_id, answers, budgets)
        return _json_response(200, payload, headers={"X-Trace-Id": trace_id})

    def _parse_query_request(
        self,
        method: str,
        params: Mapping[str, Sequence[str]],
        body: bytes,
        relation: str,
    ) -> tuple[ImpreciseQuery, int]:
        text: str | None = None
        bindings: dict[str, object] = {}
        k = self.config.default_k
        if method == "POST" and body:
            document = json.loads(body.decode("utf-8"))
            if not isinstance(document, dict):
                raise ValueError("request body must be a JSON object")
            text = document.get("text")
            constraints = document.get("constraints", {})
            if not isinstance(constraints, dict):
                raise ValueError("'constraints' must be an object")
            for attribute, value in constraints.items():
                if isinstance(value, str):
                    value = coerce_value(value)
                bindings[str(attribute)] = value
            k = int(document.get("k", k))
        else:
            for entry in params.get("c", ()):
                if "=" not in entry:
                    raise ValueError(
                        f"constraint {entry!r} must look like Attribute=Value"
                    )
                attribute, _, raw = entry.partition("=")
                bindings[attribute] = coerce_value(raw)
            text_values = params.get("text", ())
            if text_values:
                text = text_values[0]
            k_values = params.get("k", ())
            if k_values:
                k = int(k_values[0])
        if not 1 <= k <= self.config.max_k:
            raise ValueError(f"k must be in [1, {self.config.max_k}]")
        if text:
            if bindings:
                raise ValueError("use either text or constraints, not both")
            return parse_query(text, relation=relation), k
        if not bindings:
            raise ValueError("provide text or at least one Attr=Value constraint")
        return ImpreciseQuery.like(relation, **bindings), k

    # -- observability -----------------------------------------------------

    def _emit_request_event(
        self, trace_id: str, answers: AnswerSet, budgets: SessionBudgets
    ) -> None:
        if not OBS.events.enabled:
            return
        trace = answers.trace
        OBS.emit_event(
            "serve.request",
            route="/query",
            status=200,
            answers=len(answers.answers),
            probes_issued=trace.queries_issued,
            probes_cached=trace.probes_cached,
            degraded=answers.degraded,
            pressured=budgets.pressured,
            trace_id=trace_id,
        )

    def _observe(
        self, method: str, path: str, response: Response, seconds: float
    ) -> None:
        if not OBS.enabled:
            return
        route = path if path in ROUTES else "other"
        registry = OBS.registry
        registry.counter(
            "repro_serve_requests_total",
            "HTTP requests served, by route and status.",
            labels=("route", "status"),
        ).labels(route=route, status=response.status).inc()
        registry.histogram(
            "repro_serve_request_seconds",
            "End-to-end request latency, by route.",
            labels=("route",),
            buckets=REQUEST_SECONDS_BUCKETS,
        ).labels(route=route).observe(seconds)


def preregister_serve_metrics(registry: Any = None) -> None:
    """Zero-init every ``repro_serve_*`` family.

    Called at server start (and by ``repro stats``) so dashboards and
    the ``/metrics`` endpoint expose the serving families from the
    first scrape — a quiet server reports explicit zeros, not absent
    series.  One concrete zero series per family, matching the
    ``repro stats`` convention.
    """
    if registry is None:
        registry = OBS.registry
    registry.counter(
        "repro_serve_requests_total",
        "HTTP requests served, by route and status.",
        labels=("route", "status"),
    ).labels(route="/query", status=200).inc(0)
    registry.counter(
        "repro_serve_shed_total",
        "Requests shed at admission, by reason.",
        labels=("reason",),
    ).labels(reason=SHED_QUEUE_FULL).inc(0)
    registry.gauge(
        "repro_serve_inflight_count",
        "Requests currently holding an in-flight slot.",
    ).set(0)
    registry.gauge(
        "repro_serve_queue_depth_count",
        "Requests parked in the bounded admission queue.",
    ).set(0)
    registry.histogram(
        "repro_serve_request_seconds",
        "End-to-end request latency, by route.",
        labels=("route",),
        buckets=REQUEST_SECONDS_BUCKETS,
    ).labels(route="/query")
    # The inverted-index families ride along: a server running without
    # sim_index keeps them at explicit zero on /metrics rather than
    # leaving scrapers to guess whether the index is quiet or absent.
    preregister_index_metrics(registry)


#: Routes with their own label value in the request metrics.
ROUTES = (
    "/query",
    "/healthz",
    "/readyz",
    "/metrics",
    "/stats",
    "/reload",
)
