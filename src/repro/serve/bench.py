"""``serve_load`` — concurrent clients through the full serving stack.

The scenario drives N client threads straight into :class:`Router`
(no sockets: the benchmark measures the answering stack, not loopback
TCP).  Both arms run the *same* concurrent workload; the only knob that
changes is the shared probe cache:

* slow arm — cache off, every session pays full probe cost;
* fast arm — shared cache on, repeats across concurrent sessions are
  served locally.

Equivalence is judged on what clients can see — the query echo, the
ranked answers, and the degradation flag — because the probe-accounting
counters in the trace are *supposed* to differ between the arms (that
difference is the speedup).

A third, deterministic overload leg pins the server at one occupied
slot and fires a burst: every response must shed with 429 and a
``Retry-After`` header, and the first request after release must be
answered.  The contract is folded into the ``equivalent`` verdict so
the CI bench gate fails if overload ever turns into errors.

This module lives in :mod:`repro.serve` (layer above :mod:`repro.perf`)
and registers itself into :data:`repro.perf.bench.SCENARIOS` on import
— the bench CLI imports the serve package, so ``repro bench`` always
sees it, while :mod:`repro.perf` itself never imports upward.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import replace
from typing import Any

from repro.datasets.cardb import cardb_webdb
from repro.perf import bench as perf_bench
from repro.perf.bench import BenchScale, ScenarioResult, _Fixture
from repro.serve.admission import AdmissionController
from repro.serve.config import ServeConfig
from repro.serve.handlers import Router
from repro.serve.state import ServeState

__all__ = ["bench_serve_load"]

_CACHE_CAPACITY = 8_192


def _percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
    return ordered[index]


def _workload_params(
    fixture: _Fixture, scale: BenchScale
) -> list[dict[str, list[str]]]:
    """Distinct ``/query`` parameter sets drawn from the mined sample."""
    queries = perf_bench._fixture_queries(fixture, scale.queries)
    params: list[dict[str, list[str]]] = []
    for query in queries:
        constraints = [
            f"{c.attribute}={c.value}" for c in query.constraints
        ]
        params.append({"c": constraints, "k": ["10"]})
    return params


def _serve_config(scale: BenchScale, cache_capacity: int) -> ServeConfig:
    # Headroom above the client count keeps utilisation under the
    # pressure threshold: the measurement arms must answer at full
    # budgets so both arms stay comparable to the one-shot path.
    return ServeConfig(
        rows=scale.rows,
        sample=scale.sample,
        seed=11,
        probe_cache_capacity=cache_capacity,
        max_inflight=scale.serve_clients * 2,
        max_queue=scale.serve_requests,
        queue_wait_seconds=30.0,
    )


def _drive(
    router: Router,
    workload: list[dict[str, list[str]]],
    clients: int,
    requests: int,
) -> tuple[list[tuple[int, dict[str, Any]]], list[float]]:
    """Fire ``requests`` across ``clients`` threads; keep arrival order."""
    results: list[tuple[int, dict[str, Any]] | None] = [None] * requests
    latencies: list[float] = [0.0] * requests

    def worker(slot: int) -> None:
        for index in range(slot, requests, clients):
            params = workload[index % len(workload)]
            start = time.perf_counter()
            response = router.route("GET", "/query", params)
            latencies[index] = time.perf_counter() - start
            results[index] = (response.status, response.json())

    pool = [
        threading.Thread(target=worker, args=(slot,))
        for slot in range(clients)
    ]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    assert all(entry is not None for entry in results)
    return results, latencies  # type: ignore[return-value]


def _visible(payload: dict[str, Any]) -> tuple[Any, ...]:
    """The client-visible answer, minus the probe-accounting counters."""
    return (
        payload.get("query"),
        tuple(
            (a["row_id"], a["similarity"], a["base_similarity"])
            for a in payload.get("answers", ())
        ),
        payload.get("degraded"),
    )


def _overload_leg(
    state: ServeState, scale: BenchScale
) -> dict[str, Any]:
    """Deterministic burst against a one-slot server: shed, then serve."""
    config = replace(
        _serve_config(scale, _CACHE_CAPACITY),
        max_inflight=1,
        max_queue=0,
        queue_wait_seconds=0.0,
    )
    admission = AdmissionController(config)
    router = Router(state, admission, config)
    assert admission.admit().admitted  # pin the only slot
    responses = []
    lock = threading.Lock()

    def burst() -> None:
        response = router.route(
            "GET", "/query", {"c": ["Make=Ford"], "k": ["5"]}
        )
        with lock:
            responses.append(response)

    pool = [
        threading.Thread(target=burst) for _ in range(scale.serve_clients)
    ]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    shed_ok = all(
        r.status == 429 and int(r.headers.get("Retry-After", 0)) >= 1
        for r in responses
    )
    admission.release()
    start = time.perf_counter()
    recovered = router.route("GET", "/query", {"c": ["Make=Ford"], "k": ["5"]})
    recovered_seconds = time.perf_counter() - start
    total = len(responses) + 1
    return {
        "requests": total,
        "shed": sum(1 for r in responses if r.status == 429),
        "shed_rate": round(len(responses) / total, 3),
        "shed_with_retry_after": shed_ok,
        "recovered_status": recovered.status,
        "recovered_ms": round(recovered_seconds * 1_000.0, 3),
        "contract_held": shed_ok and recovered.status == 200,
    }


def bench_serve_load(scale: BenchScale, fixture: _Fixture) -> ScenarioResult:
    workload = _workload_params(fixture, scale)
    model = fixture.model
    clients = scale.serve_clients
    requests = scale.serve_requests

    slow_db = cardb_webdb(scale.rows, seed=11)
    slow_state = ServeState.from_bundle(
        _serve_config(scale, 0), slow_db, model
    )
    fast_db = cardb_webdb(scale.rows, seed=11)
    fast_db.enable_probe_cache(_CACHE_CAPACITY)
    fast_state = ServeState.from_bundle(
        _serve_config(scale, _CACHE_CAPACITY), fast_db, model
    )

    def arm(state: ServeState) -> tuple[list, list[float], float]:
        config = state.config
        router = Router(state, AdmissionController(config), config)
        start = time.perf_counter()
        results, latencies = _drive(router, workload, clients, requests)
        return results, latencies, time.perf_counter() - start

    slow_results, _, slow_seconds = arm(slow_state)
    fast_results, fast_latencies, fast_seconds = arm(fast_state)

    log = fast_db.log
    lookups = log.probes_issued + log.cache_hits
    overload = _overload_leg(fast_state, scale)

    all_answered = all(
        status == 200 for status, _ in slow_results + fast_results
    )
    identical = [
        _visible(slow_payload) == _visible(fast_payload)
        for (_, slow_payload), (_, fast_payload) in zip(
            slow_results, fast_results
        )
    ]
    millis = [latency * 1_000.0 for latency in fast_latencies]
    return ScenarioResult(
        name="serve_load",
        slow_seconds=slow_seconds,
        fast_seconds=fast_seconds,
        equivalent=(
            all_answered and all(identical) and overload["contract_held"]
        ),
        details={
            "clients": clients,
            "requests": requests,
            "distinct_queries": len(workload),
            "p50_ms": round(_percentile(millis, 0.50), 3),
            "p95_ms": round(_percentile(millis, 0.95), 3),
            "p99_ms": round(_percentile(millis, 0.99), 3),
            "cache_hits": log.cache_hits,
            "cache_hit_rate": round(
                log.cache_hits / lookups if lookups else 0.0, 3
            ),
            "degraded_count": sum(
                1 for _, payload in fast_results if payload.get("degraded")
            ),
            "overload": overload,
        },
    )


perf_bench.SCENARIOS.setdefault("serve_load", bench_serve_load)
