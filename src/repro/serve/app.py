"""The HTTP shell: stdlib ``ThreadingHTTPServer`` around the router.

Deliberately dependency-light — ``http.server`` + ``urllib.parse`` are
the whole transport.  All behaviour lives in :class:`~repro.serve.handlers.Router`,
which the chaos tests drive directly; this module only adapts sockets
to ``Router.route`` and wires the shutdown sequence:

* ``SIGTERM``/``SIGINT`` → :class:`~repro.serve.lifecycle.LifecycleController`
  flips admission into draining (new work is shed with 429),
* ``httpd.shutdown()`` stops the accept loop from a helper thread,
* in-flight handler threads finish naturally and the lifecycle drain
  waits for them up to ``drain_seconds`` before the process exits.

``port=0`` binds an ephemeral port (see :attr:`AIMQServer.port`) so
tests and the CI smoke job never race over a fixed port.
"""

from __future__ import annotations

from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from repro.obs.runtime import OBS
from repro.serve.admission import AdmissionController
from repro.serve.config import ServeConfig
from repro.serve.handlers import Router, preregister_serve_metrics
from repro.serve.lifecycle import LifecycleController
from repro.serve.state import ServeState

__all__ = ["AIMQServer", "serve"]


class _RequestHandler(BaseHTTPRequestHandler):
    """Socket adapter: parse, delegate to the router, write back."""

    #: Bound per-server via a subclass (see :class:`AIMQServer`).
    router: Router

    protocol_version = "HTTP/1.1"

    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._handle("POST")

    def _handle(self, method: str) -> None:
        parsed = urlsplit(self.path)
        params = parse_qs(parsed.query)
        body = b""
        length = int(self.headers.get("Content-Length") or 0)
        if length > 0:
            body = self.rfile.read(length)
        response = self.router.route(method, parsed.path, params, body)
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        self.send_header("Content-Length", str(len(response.body)))
        for name, value in response.headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(response.body)

    def log_message(self, format: str, *args: object) -> None:
        """Silence the default stderr access log; the wide-event log
        (``serve.request``) is the serving audit trail."""


class AIMQServer:
    """One serving process: state + admission + router + HTTP shell."""

    def __init__(
        self, config: ServeConfig, state: ServeState | None = None
    ) -> None:
        self.config = config
        self.state = state if state is not None else ServeState.load(config)
        self.admission = AdmissionController(config)
        self.lifecycle = LifecycleController(self.admission, config)
        self.router = Router(self.state, self.admission, config)
        if OBS.enabled:
            preregister_serve_metrics()
        handler = type(
            "BoundRequestHandler", (_RequestHandler,), {"router": self.router}
        )
        self._httpd = ThreadingHTTPServer((config.host, config.port), handler)
        self._httpd.daemon_threads = True

    # -- addressing --------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the ephemeral pick)."""
        return int(self._httpd.server_address[1])

    @property
    def url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    # -- run / stop --------------------------------------------------------

    def serve_forever(self, install_signals: bool = True) -> bool:
        """Serve until shut down; returns True if the drain completed.

        With ``install_signals`` (the default for ``repro serve``),
        SIGTERM/SIGINT trigger the graceful sequence.  Tests pass False
        and call :meth:`shutdown` from another thread instead.
        """
        if install_signals:
            self.lifecycle.install(on_shutdown=self._httpd.shutdown)
        try:
            self._httpd.serve_forever()
        finally:
            drained = self.lifecycle.drain()
            self._httpd.server_close()
        return drained

    def shutdown(self) -> None:
        """Programmatic SIGTERM equivalent (callable from any thread)."""
        self.lifecycle.request_shutdown(reason="shutdown")
        self._httpd.shutdown()

    def close(self) -> None:
        """Release the listening socket without serving (test teardown)."""
        self._httpd.server_close()


def serve(config: ServeConfig) -> int:
    """Blocking entry point behind the ``repro serve`` subcommand."""
    server = AIMQServer(config)
    drained = server.serve_forever()
    return 0 if drained else 1
