"""AIMQ-as-a-service: the long-lived answering server (``repro serve``).

The serve layer composes the robustness primitives grown in PRs 4-7
into an overload-safe HTTP server: the mined AFD/VSim models are loaded
once (:mod:`repro.serve.state`), requests pass token-bucket admission
control with bounded queueing and load shedding
(:mod:`repro.serve.admission`), each admitted request answers through a
per-request resilience scope with pressure-shrunk budgets
(:mod:`repro.serve.session`), and SIGTERM drains gracefully
(:mod:`repro.serve.lifecycle`).  Served answers are bit-identical to
the one-shot ``repro query`` path — same :class:`AnswerSet`, same
:class:`DegradationReport`, same probe accounting.

Layering: ``repro.serve`` sits above ``repro.core`` and is imported by
``repro.cli`` only; nothing below imports serve (enforced by REP003).
See ``docs/SERVING.md`` for the endpoint and degradation contract.
"""

from repro.serve.admission import AdmissionController, AdmissionDecision
from repro.serve.app import AIMQServer, serve
from repro.serve.bench import bench_serve_load
from repro.serve.config import ServeConfig
from repro.serve.handlers import (
    Response,
    Router,
    answer_payload,
    preregister_serve_metrics,
)
from repro.serve.lifecycle import LifecycleController
from repro.serve.session import RequestSession, SessionBudgets, budgets_for
from repro.serve.state import ServeState

__all__ = [
    "AIMQServer",
    "AdmissionController",
    "AdmissionDecision",
    "LifecycleController",
    "RequestSession",
    "Response",
    "Router",
    "ServeConfig",
    "ServeState",
    "SessionBudgets",
    "answer_payload",
    "bench_serve_load",
    "budgets_for",
    "preregister_serve_metrics",
    "serve",
]
