"""Float comparison helpers — the only sanctioned way to ``==`` floats.

Computed similarity scores and g3 errors accumulate rounding error, so
exact equality on them is representation-dependent (REP002).  Use
:func:`close` for tolerant comparison.  :func:`exact_eq` exists for the
rare case where bitwise identity *is* the contract — the fast-path
equivalence checks and short-circuit guards on values that were
assigned, never computed — and makes that intent explicit and
greppable.
"""

from __future__ import annotations

import math

__all__ = ["DEFAULT_REL_TOL", "DEFAULT_ABS_TOL", "close", "exact_eq"]

DEFAULT_REL_TOL = 1e-9
DEFAULT_ABS_TOL = 1e-12


def close(
    a: float,
    b: float,
    rel_tol: float = DEFAULT_REL_TOL,
    abs_tol: float = DEFAULT_ABS_TOL,
) -> bool:
    """Tolerant float equality (``math.isclose`` with repo defaults)."""
    return math.isclose(a, b, rel_tol=rel_tol, abs_tol=abs_tol)


def exact_eq(a: float, b: float) -> bool:
    """Deliberate bit-for-bit float equality.

    For contracts where identity, not proximity, is the point: the
    fast path must return *exactly* the reference value, or a value
    is compared against the same object it was assigned from.
    """
    return a == b
