"""Answer explanations: why did this tuple rank where it did?

Imprecise answers need provenance — a user shown an Accord for a Camry
query deserves to know it came from relaxing the Model binding and that
the mined Camry↔Accord similarity carried the score.  The explanation
decomposes Sim(Q, t) into its per-attribute terms:

    Sim(Q, t) = Σ_i W_imp(A_i) · sim_i

and records the relaxation provenance (which base tuple seeded the
answer and at which relaxation depth it was found).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.query import ImpreciseQuery
from repro.core.results import RankedAnswer
from repro.core.similarity import TupleSimilarity

__all__ = ["AttributeContribution", "AnswerExplanation", "explain_answer"]


@dataclass(frozen=True)
class AttributeContribution:
    """One attribute's share of the total similarity."""

    attribute: str
    query_value: object
    answer_value: object
    similarity: float
    weight: float

    @property
    def contribution(self) -> float:
        return self.weight * self.similarity

    @property
    def matched(self) -> bool:
        return self.query_value == self.answer_value

    def describe(self) -> str:
        marker = "=" if self.matched else "~"
        return (
            f"{self.attribute}: {self.query_value!r} {marker} "
            f"{self.answer_value!r} (sim {self.similarity:.2f} x "
            f"weight {self.weight:.2f} = {self.contribution:.3f})"
        )


@dataclass(frozen=True)
class AnswerExplanation:
    """Full decomposition of one answer's score plus its provenance."""

    answer: RankedAnswer
    contributions: tuple[AttributeContribution, ...]

    @property
    def total(self) -> float:
        return sum(c.contribution for c in self.contributions)

    @property
    def strongest(self) -> AttributeContribution:
        return max(self.contributions, key=lambda c: c.contribution)

    @property
    def weakest(self) -> AttributeContribution:
        return min(self.contributions, key=lambda c: c.contribution)

    def describe(self) -> str:
        answer = self.answer
        if answer.relaxation_level == 0:
            provenance = "direct match of the tightened base query"
        else:
            provenance = (
                f"found at relaxation depth {answer.relaxation_level}, "
                f"seeded by base tuple #{answer.source_base_row_id}"
            )
        lines = [
            f"answer #{answer.row_id} scored {answer.similarity:.3f} "
            f"({provenance})"
        ]
        ranked = sorted(
            self.contributions, key=lambda c: -c.contribution
        )
        for contribution in ranked:
            lines.append("  " + contribution.describe())
        return "\n".join(lines)


def explain_answer(
    similarity: TupleSimilarity,
    query: ImpreciseQuery,
    answer: RankedAnswer,
) -> AnswerExplanation:
    """Decompose ``answer``'s score against ``query``.

    Only the query's likeness constraints carry graded similarity
    (precise conjuncts were enforced by the boolean engine), mirroring
    :meth:`TupleSimilarity.sim_to_query`, so the contribution total
    reconstructs the answer's query similarity.
    """
    bindings = {
        constraint.attribute: constraint.value
        for constraint in query.like_constraints
    }
    weights = similarity.ordering.weights_over(tuple(bindings))
    schema = similarity.schema
    contributions = []
    for attribute, expected in bindings.items():
        actual = answer.row[schema.position(attribute)]
        attribute_similarity = similarity._attribute_similarity(
            attribute, expected, actual
        )
        contributions.append(
            AttributeContribution(
                attribute=attribute,
                query_value=expected,
                answer_value=actual,
                similarity=attribute_similarity,
                weight=weights[attribute],
            )
        )
    return AnswerExplanation(
        answer=answer, contributions=tuple(contributions)
    )
