"""Query–tuple similarity estimation (paper §5).

    Sim(Q, t) = Σ_i W_imp(A_i) · sim_i    over Q's bound attributes,

where ``sim_i`` is the mined VSim for categorical attributes and the
relative numeric closeness ``1 − |Q.A_i − t.A_i| / |Q.A_i|`` (floored at
zero) for numeric ones.  Importance weights are renormalised over the
bound attributes so they sum to one regardless of how many attributes
the query binds.

The same machinery scores tuple-to-tuple similarity (Algorithm 1 step 7
compares extracted tuples to *base-set tuples*, not to the query), by
treating one tuple's values as the reference bindings.

Two scoring paths exist.  The per-call methods (``sim_to_bindings``,
``sim_to_query``, ``sim_between_rows``) recompute the renormalised
weights and attribute positions on every call — they are the reference
implementation.  :class:`BindingsScorer` is the fast path the engine
uses: one object per reference binding set, with the weight table,
column positions and per-value similarity lookups resolved once and
reused across every candidate row.  Both paths perform the identical
floating-point operations in the identical order, so their scores are
bit-for-bit equal (asserted by the fast-path equivalence tests).
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from repro.core.attribute_order import AttributeOrdering
from repro.core.query import ImpreciseQuery
from repro.db import RelationSchema
from repro.floats import exact_eq
from repro.simmining.estimator import SimilarityModel

__all__ = [
    "numeric_similarity",
    "range_scaled_similarity",
    "TupleSimilarity",
    "BindingsScorer",
    "BoundedScorer",
]

#: Slack on the bounded scorer's skip cutoff.  The per-term caps
#: dominate the true terms exactly, but floating-point summation is not
#: termwise monotone, so skips require clearing the threshold by a
#: margin ~1e6× the worst-case rounding error at these magnitudes
#: (the same argument as the miner's ``_PRUNE_SLACK``).
_BOUND_SLACK = 1e-9


def numeric_similarity(reference: float, candidate: float) -> float:
    """Relative closeness of two numbers, clamped to [0, 1].

    Implements the paper's ``1 − (Q.A − t.A)/Q.A`` with the stated
    lower-bound guard ("if the distance > 1 we assume the distance to be
    1").  A zero reference cannot scale distances, so it matches only
    itself — the conservative reading.
    """
    if reference == 0:
        return 1.0 if candidate == 0 else 0.0
    distance = abs(reference - candidate) / abs(reference)
    return max(0.0, 1.0 - min(distance, 1.0))


def range_scaled_similarity(
    reference: float, candidate: float, low: float, high: float
) -> float:
    """L1 closeness scaled by the attribute's observed extent.

    The Lp-metric alternative the paper alludes to in §5 ("we can by
    default use a Lp distance metric such as Euclidean distance"):
    ``1 − |q − t| / (high − low)``.  Unlike the relative measure this
    is symmetric in absolute terms — a $500 gap costs the same at
    $5,000 as at $50,000 — which suits attributes whose meaning is
    additive (years, hours) better than multiplicative ones (prices).
    """
    if high <= low:
        # Values straight from the relation, never computed: exact
        # identity is the paper's semantics for a zero-width extent.
        return 1.0 if exact_eq(reference, candidate) else 0.0
    distance = abs(reference - candidate) / (high - low)
    return max(0.0, 1.0 - min(distance, 1.0))


class BindingsScorer:
    """Precompiled Sim(reference, ·) for one set of reference bindings.

    Holds a plan of ``(column position, weight, value scorer)`` triples
    resolved once; calling the scorer on a row walks the plan in the
    bindings' original order, so the floating-point accumulation is the
    same as the per-call reference path.  Categorical value scorers
    memoise VSim lookups per candidate value — the per-query value
    lookup table of the fast path.
    """

    __slots__ = ("_plan",)

    def __init__(
        self,
        plan: Sequence[tuple[int, float, Callable[[object], float]]],
    ) -> None:
        self._plan = tuple(plan)

    def __call__(self, row: Sequence[object]) -> float:
        total = 0.0
        for position, weight, value_score in self._plan:
            total += weight * value_score(row[position])
        return total


class BoundedScorer:
    """Threshold-aware Sim(reference, ·): a proven skip or the exact score.

    Wraps a :class:`BindingsScorer` with per-term *score upper bounds*:
    a categorical candidate equal to the reference can score at most
    ``weight·1.0``, any other candidate at most ``weight·cap`` where
    ``cap`` is the largest mined similarity involving the reference
    value (the head of its neighbour posting list —
    ``SimilarityModel.max_similarity``; 1.0 when no index is mined).
    Numeric terms keep the trivial cap 1.0.

    :meth:`score_above` walks the bound terms with a running
    suffix-weight cutoff and returns ``None`` as soon as the remaining
    terms provably cannot lift the row over the threshold — otherwise
    it delegates to the exact scorer, so every returned score is
    bit-identical to the plain path.  Soundness: a skip requires
    ``Σ bound_t ≤ threshold − slack`` with each ``bound_t`` dominating
    its true term, so the true score cannot exceed the threshold.
    """

    __slots__ = ("_scorer", "_bound_plan", "_suffix", "_cutoff")

    def __init__(
        self,
        scorer: BindingsScorer,
        bound_plan: Sequence[
            tuple[float, Callable[[Sequence[object]], float]]
        ],
        threshold: float,
    ) -> None:
        self._scorer = scorer
        self._bound_plan = tuple(bound_plan)
        self._cutoff = threshold - _BOUND_SLACK
        # suffix[t] = Σ_{u>t} weight_u — the most the unseen terms can add.
        weights = [weight for weight, _ in self._bound_plan]
        suffix = [0.0] * len(weights)
        acc = 0.0
        for index in range(len(weights) - 1, 0, -1):
            acc += weights[index]
            suffix[index - 1] = acc
        self._suffix = tuple(suffix)

    def score_above(self, row: Sequence[object]) -> float | None:
        """Exact Sim(reference, row), or None when provably ≤ threshold."""
        bound = 0.0
        for index, (_, term_bound) in enumerate(self._bound_plan):
            bound += term_bound(row)
            if bound + self._suffix[index] <= self._cutoff:
                return None
        return self._scorer(row)


class TupleSimilarity:
    """Scores rows against reference bindings with mined models.

    ``numeric_mode`` selects the numeric closeness function:
    ``"relative"`` (the paper's formula, default) or ``"range"``
    (extent-scaled L1; requires ``numeric_extents`` with per-attribute
    ``(low, high)`` pairs, falling back to relative when an attribute's
    extent is unknown).
    """

    def __init__(
        self,
        schema: RelationSchema,
        ordering: AttributeOrdering,
        value_similarity: SimilarityModel,
        numeric_mode: str = "relative",
        numeric_extents: Mapping[str, tuple[float, float]] | None = None,
    ) -> None:
        if numeric_mode not in ("relative", "range"):
            raise ValueError("numeric_mode must be 'relative' or 'range'")
        self.schema = schema
        self.ordering = ordering
        self.value_similarity = value_similarity
        self.numeric_mode = numeric_mode
        self.numeric_extents = dict(numeric_extents or {})
        self._weights_memo: dict[tuple[str, ...], dict[str, float]] = {}

    # -- scoring -----------------------------------------------------------

    def sim_to_bindings(
        self, bindings: Mapping[str, object], row: Sequence[object]
    ) -> float:
        """Sim(reference bindings, row) with weights over the bindings."""
        attributes = tuple(bindings)
        if not attributes:
            return 0.0
        weights = self.ordering.weights_over(attributes)
        total = 0.0
        for attribute, reference in bindings.items():
            weight = weights[attribute]
            if weight == 0.0:
                continue
            candidate = row[self.schema.position(attribute)]
            total += weight * self._attribute_similarity(
                attribute, reference, candidate
            )
        return total

    def sim_to_query(
        self, query: ImpreciseQuery, row: Sequence[object]
    ) -> float:
        """Sim(Q, t) over the query's *like* constraints.

        Precise constraints were already enforced by the boolean engine
        when the tuple was fetched; only likeness constraints carry
        graded similarity.
        """
        bindings = {
            constraint.attribute: constraint.value
            for constraint in query.like_constraints
        }
        if not bindings:
            return 0.0
        return self.sim_to_bindings(bindings, row)

    def sim_between_rows(
        self,
        reference_row: Sequence[object],
        candidate_row: Sequence[object],
        attributes: tuple[str, ...] | None = None,
    ) -> float:
        """Sim with a base-set tuple as the reference (Alg. 1 step 7)."""
        names = attributes if attributes is not None else self.schema.attribute_names
        bindings = {
            name: reference_row[self.schema.position(name)]
            for name in names
            if reference_row[self.schema.position(name)] is not None
        }
        return self.sim_to_bindings(bindings, candidate_row)

    # -- fast path: precompiled scorers --------------------------------------

    def bindings_scorer(self, bindings: Mapping[str, object]) -> BindingsScorer:
        """Compile Sim(bindings, ·) into a reusable scorer.

        Score-equivalent to calling :meth:`sim_to_bindings` with the
        same bindings: the plan preserves binding order, skips
        zero-weight attributes exactly as the reference path does, and
        drops ``None`` references (whose reference-path contribution is
        exactly ``weight * 0.0``).
        """
        attributes = tuple(bindings)
        if not attributes:
            return BindingsScorer(())
        weights = self._weights_for(attributes)
        plan: list[tuple[int, float, Callable[[object], float]]] = []
        for attribute, reference in bindings.items():
            weight = weights[attribute]
            if weight == 0.0 or reference is None:
                continue
            plan.append(
                (
                    self.schema.position(attribute),
                    weight,
                    self._value_scorer(attribute, reference),
                )
            )
        return BindingsScorer(plan)

    def query_scorer(self, query: ImpreciseQuery) -> BindingsScorer:
        """Compiled form of :meth:`sim_to_query` for one query."""
        bindings = {
            constraint.attribute: constraint.value
            for constraint in query.like_constraints
        }
        return self.bindings_scorer(bindings)

    def row_scorer(
        self,
        reference_row: Sequence[object],
        attributes: tuple[str, ...] | None = None,
    ) -> BindingsScorer:
        """Compiled form of :meth:`sim_between_rows` for one base tuple."""
        names = attributes if attributes is not None else self.schema.attribute_names
        bindings = {
            name: reference_row[self.schema.position(name)]
            for name in names
            if reference_row[self.schema.position(name)] is not None
        }
        return self.bindings_scorer(bindings)

    def bounded_scorer(
        self, bindings: Mapping[str, object], threshold: float
    ) -> BoundedScorer:
        """Compile Sim(bindings, ·) with early termination at ``threshold``.

        The bound plan mirrors :meth:`bindings_scorer` term for term
        (same filtering, same order); categorical caps come from the
        mined model's neighbour index via
        ``SimilarityModel.max_similarity`` (1.0 without one).
        """
        scorer = self.bindings_scorer(bindings)
        attributes = tuple(bindings)
        bound_plan: list[
            tuple[float, Callable[[Sequence[object]], float]]
        ] = []
        if attributes:
            weights = self._weights_for(attributes)
            for attribute, reference in bindings.items():
                weight = weights[attribute]
                if weight == 0.0 or reference is None:
                    continue
                bound_plan.append(
                    (
                        weight,
                        self._term_bound(attribute, reference, weight),
                    )
                )
        return BoundedScorer(scorer, bound_plan, threshold)

    def bounded_row_scorer(
        self,
        reference_row: Sequence[object],
        threshold: float,
        attributes: tuple[str, ...] | None = None,
    ) -> BoundedScorer:
        """Bounded form of :meth:`row_scorer` for one base tuple."""
        names = attributes if attributes is not None else self.schema.attribute_names
        bindings = {
            name: reference_row[self.schema.position(name)]
            for name in names
            if reference_row[self.schema.position(name)] is not None
        }
        return self.bounded_scorer(bindings, threshold)

    def _term_bound(
        self, attribute: str, reference: object, weight: float
    ) -> Callable[[Sequence[object]], float]:
        """Upper bound on one term's contribution, memoised per value."""
        position = self.schema.position(attribute)
        if self.schema.attribute(attribute).is_numeric:
            # Numeric closeness can reach 1.0 anywhere in the band, so
            # the trivial cap is the only sound one.
            def numeric_bound(row: Sequence[object]) -> float:
                return 0.0 if row[position] is None else weight

            return numeric_bound

        reference_text = str(reference)
        cap = weight * self.value_similarity.max_similarity(
            attribute, reference_text
        )
        memo: dict[object, float] = {}

        def categorical_bound(row: Sequence[object]) -> float:
            candidate = row[position]
            if candidate is None:
                return 0.0
            cached = memo.get(candidate)
            if cached is None:
                cached = (
                    weight if str(candidate) == reference_text else cap
                )
                memo[candidate] = cached
            return cached

        return categorical_bound

    def _weights_for(self, attributes: tuple[str, ...]) -> dict[str, float]:
        """Memoised ``ordering.weights_over`` (callers must not mutate)."""
        weights = self._weights_memo.get(attributes)
        if weights is None:
            weights = self.ordering.weights_over(attributes)
            self._weights_memo[attributes] = weights
        return weights

    def _value_scorer(
        self, attribute: str, reference: object
    ) -> Callable[[object], float]:
        """Per-attribute similarity with the reference value bound."""
        if self.schema.attribute(attribute).is_numeric:
            extent = (
                self.numeric_extents.get(attribute)
                if self.numeric_mode == "range"
                else None
            )
            if extent is not None:
                low, high = extent

                def range_score(candidate: object) -> float:
                    if candidate is None:
                        return 0.0
                    return range_scaled_similarity(
                        float(reference), float(candidate), low, high  # type: ignore[arg-type]
                    )

                return range_score

            def relative_score(candidate: object) -> float:
                if candidate is None:
                    return 0.0
                return numeric_similarity(float(reference), float(candidate))  # type: ignore[arg-type]

            return relative_score

        lookup = self.value_similarity.similarity
        reference_text = str(reference)
        memo: dict[object, float] = {}

        def categorical_score(candidate: object) -> float:
            if candidate is None:
                return 0.0
            cached = memo.get(candidate)
            if cached is None:
                cached = lookup(attribute, reference_text, str(candidate))
                memo[candidate] = cached
            return cached

        return categorical_score

    # -- internals -----------------------------------------------------------

    def _attribute_similarity(
        self, attribute: str, reference: object, candidate: object
    ) -> float:
        if candidate is None or reference is None:
            return 0.0
        if self.schema.attribute(attribute).is_numeric:
            extent = (
                self.numeric_extents.get(attribute)
                if self.numeric_mode == "range"
                else None
            )
            if extent is not None:
                return range_scaled_similarity(
                    float(reference), float(candidate), extent[0], extent[1]  # type: ignore[arg-type]
                )
            return numeric_similarity(float(reference), float(candidate))  # type: ignore[arg-type]
        return self.value_similarity.similarity(
            attribute, str(reference), str(candidate)
        )
