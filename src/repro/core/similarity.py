"""Query–tuple similarity estimation (paper §5).

    Sim(Q, t) = Σ_i W_imp(A_i) · sim_i    over Q's bound attributes,

where ``sim_i`` is the mined VSim for categorical attributes and the
relative numeric closeness ``1 − |Q.A_i − t.A_i| / |Q.A_i|`` (floored at
zero) for numeric ones.  Importance weights are renormalised over the
bound attributes so they sum to one regardless of how many attributes
the query binds.

The same machinery scores tuple-to-tuple similarity (Algorithm 1 step 7
compares extracted tuples to *base-set tuples*, not to the query), by
treating one tuple's values as the reference bindings.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.attribute_order import AttributeOrdering
from repro.core.query import ImpreciseQuery
from repro.db.schema import RelationSchema
from repro.simmining.estimator import SimilarityModel

__all__ = ["numeric_similarity", "range_scaled_similarity", "TupleSimilarity"]


def numeric_similarity(reference: float, candidate: float) -> float:
    """Relative closeness of two numbers, clamped to [0, 1].

    Implements the paper's ``1 − (Q.A − t.A)/Q.A`` with the stated
    lower-bound guard ("if the distance > 1 we assume the distance to be
    1").  A zero reference cannot scale distances, so it matches only
    itself — the conservative reading.
    """
    if reference == 0:
        return 1.0 if candidate == 0 else 0.0
    distance = abs(reference - candidate) / abs(reference)
    return max(0.0, 1.0 - min(distance, 1.0))


def range_scaled_similarity(
    reference: float, candidate: float, low: float, high: float
) -> float:
    """L1 closeness scaled by the attribute's observed extent.

    The Lp-metric alternative the paper alludes to in §5 ("we can by
    default use a Lp distance metric such as Euclidean distance"):
    ``1 − |q − t| / (high − low)``.  Unlike the relative measure this
    is symmetric in absolute terms — a $500 gap costs the same at
    $5,000 as at $50,000 — which suits attributes whose meaning is
    additive (years, hours) better than multiplicative ones (prices).
    """
    if high <= low:
        return 1.0 if reference == candidate else 0.0
    distance = abs(reference - candidate) / (high - low)
    return max(0.0, 1.0 - min(distance, 1.0))


class TupleSimilarity:
    """Scores rows against reference bindings with mined models.

    ``numeric_mode`` selects the numeric closeness function:
    ``"relative"`` (the paper's formula, default) or ``"range"``
    (extent-scaled L1; requires ``numeric_extents`` with per-attribute
    ``(low, high)`` pairs, falling back to relative when an attribute's
    extent is unknown).
    """

    def __init__(
        self,
        schema: RelationSchema,
        ordering: AttributeOrdering,
        value_similarity: SimilarityModel,
        numeric_mode: str = "relative",
        numeric_extents: Mapping[str, tuple[float, float]] | None = None,
    ) -> None:
        if numeric_mode not in ("relative", "range"):
            raise ValueError("numeric_mode must be 'relative' or 'range'")
        self.schema = schema
        self.ordering = ordering
        self.value_similarity = value_similarity
        self.numeric_mode = numeric_mode
        self.numeric_extents = dict(numeric_extents or {})

    # -- scoring -----------------------------------------------------------

    def sim_to_bindings(
        self, bindings: Mapping[str, object], row: Sequence[object]
    ) -> float:
        """Sim(reference bindings, row) with weights over the bindings."""
        attributes = tuple(bindings)
        if not attributes:
            return 0.0
        weights = self.ordering.weights_over(attributes)
        total = 0.0
        for attribute, reference in bindings.items():
            weight = weights[attribute]
            if weight == 0.0:
                continue
            candidate = row[self.schema.position(attribute)]
            total += weight * self._attribute_similarity(
                attribute, reference, candidate
            )
        return total

    def sim_to_query(
        self, query: ImpreciseQuery, row: Sequence[object]
    ) -> float:
        """Sim(Q, t) over the query's *like* constraints.

        Precise constraints were already enforced by the boolean engine
        when the tuple was fetched; only likeness constraints carry
        graded similarity.
        """
        bindings = {
            constraint.attribute: constraint.value
            for constraint in query.like_constraints
        }
        if not bindings:
            return 0.0
        return self.sim_to_bindings(bindings, row)

    def sim_between_rows(
        self,
        reference_row: Sequence[object],
        candidate_row: Sequence[object],
        attributes: tuple[str, ...] | None = None,
    ) -> float:
        """Sim with a base-set tuple as the reference (Alg. 1 step 7)."""
        names = attributes if attributes is not None else self.schema.attribute_names
        bindings = {
            name: reference_row[self.schema.position(name)]
            for name in names
            if reference_row[self.schema.position(name)] is not None
        }
        return self.sim_to_bindings(bindings, candidate_row)

    # -- internals -----------------------------------------------------------

    def _attribute_similarity(
        self, attribute: str, reference: object, candidate: object
    ) -> float:
        if candidate is None or reference is None:
            return 0.0
        if self.schema.attribute(attribute).is_numeric:
            extent = (
                self.numeric_extents.get(attribute)
                if self.numeric_mode == "range"
                else None
            )
            if extent is not None:
                return range_scaled_similarity(
                    float(reference), float(candidate), extent[0], extent[1]  # type: ignore[arg-type]
                )
            return numeric_similarity(float(reference), float(candidate))  # type: ignore[arg-type]
        return self.value_similarity.similarity(
            attribute, str(reference), str(candidate)
        )
