"""Ranked answers returned by the AIMQ engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.core.query import ImpreciseQuery
from repro.db import RelationSchema
from repro.resilience.degradation import DegradationReport

__all__ = ["RankedAnswer", "AnswerSet", "RelaxationTrace"]


@dataclass(frozen=True)
class RankedAnswer:
    """One tuple of the extended set with its similarity scores."""

    row_id: int
    row: tuple
    similarity: float
    base_similarity: float
    source_base_row_id: int
    relaxation_level: int

    def as_mapping(self, schema: RelationSchema) -> dict[str, object]:
        return schema.row_to_mapping(self.row)


@dataclass
class RelaxationTrace:
    """Work accounting for one answered query (drives Figs 6–7).

    ``queries_issued`` counts probes that actually reached the source —
    the quantity Figures 6–7 plot.  When the facade's probe cache is
    on, lookups it served are counted separately in ``probes_cached``
    so the issued-probe semantics stay comparable to the paper's; with
    the cache off (the default, and how the efficiency benchmarks run)
    ``probes_cached`` is always zero.
    """

    base_set_size: int = 0
    queries_issued: int = 0
    probes_cached: int = 0
    tuples_extracted: int = 0
    tuples_relevant: int = 0
    deepest_level: int = 0
    generalisation_steps: tuple[str, ...] = ()
    degradation: DegradationReport = field(default_factory=DegradationReport)

    @property
    def degraded(self) -> bool:
        """True when source failures forced the engine to skip work."""
        return self.degradation.degraded

    @property
    def total_lookups(self) -> int:
        """Issued probes plus cache-served lookups."""
        return self.queries_issued + self.probes_cached

    @property
    def work_per_relevant_tuple(self) -> float:
        """|T_extracted| / |T_relevant| (paper §6.3); inf when none found."""
        if self.tuples_relevant == 0:
            return float("inf")
        return self.tuples_extracted / self.tuples_relevant


@dataclass
class AnswerSet:
    """Top-k ranked answers plus provenance for one imprecise query."""

    query: ImpreciseQuery
    answers: list[RankedAnswer] = field(default_factory=list)
    trace: RelaxationTrace = field(default_factory=RelaxationTrace)

    def __len__(self) -> int:
        return len(self.answers)

    def __iter__(self) -> Iterator[RankedAnswer]:
        return iter(self.answers)

    def __getitem__(self, index: int) -> RankedAnswer:
        return self.answers[index]

    @property
    def rows(self) -> list[tuple]:
        return [answer.row for answer in self.answers]

    @property
    def row_ids(self) -> list[int]:
        return [answer.row_id for answer in self.answers]

    @property
    def degradation(self) -> DegradationReport:
        return self.trace.degradation

    @property
    def degraded(self) -> bool:
        """True when this answer is partial because the source failed."""
        return self.trace.degraded

    def describe(self, schema: RelationSchema, top: int | None = None) -> str:
        lines = [f"Answers for {self.query.describe()}:"]
        shown = self.answers if top is None else self.answers[:top]
        for rank, answer in enumerate(shown, start=1):
            rendered = ", ".join(
                f"{k}={v}" for k, v in answer.as_mapping(schema).items()
            )
            lines.append(f"  {rank:>2}. sim={answer.similarity:.3f}  {rendered}")
        return "\n".join(lines)
