"""Ranked answers returned by the AIMQ engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.core.query import ImpreciseQuery
from repro.db import RelationSchema
from repro.resilience.degradation import DegradationReport

__all__ = [
    "RankedAnswer",
    "AnswerSet",
    "RelaxationTrace",
    "answer_rank_key",
    "base_rank_key",
]


@dataclass(frozen=True)
class RankedAnswer:
    """One tuple of the extended set with its similarity scores."""

    row_id: int
    row: tuple
    similarity: float
    base_similarity: float
    source_base_row_id: int
    relaxation_level: int

    def as_mapping(self, schema: RelationSchema) -> dict[str, object]:
        return schema.row_to_mapping(self.row)


def answer_rank_key(answer: RankedAnswer) -> tuple[float, float, int]:
    """The engine's canonical ranking key for ``answer()`` results.

    Ascending sort under this key ranks by query similarity
    (descending), then base-tuple similarity (descending), then row id
    (ascending).  The trailing row id makes every tie-break explicit
    and total: two answers never compare equal, so the top-k cut is
    deterministic regardless of how — serially or batched — the
    extended set was populated.
    """
    return (-answer.similarity, -answer.base_similarity, answer.row_id)


def base_rank_key(answer: RankedAnswer) -> tuple[float, int]:
    """Canonical ranking key for ``gather_similar()`` results.

    Base-tuple similarity descending, then row id ascending — the same
    total, deterministic order contract as :func:`answer_rank_key`.
    """
    return (-answer.base_similarity, answer.row_id)


@dataclass
class RelaxationTrace:
    """Work accounting for one answered query (drives Figs 6–7).

    ``queries_issued`` counts probes that actually reached the source —
    the quantity Figures 6–7 plot.  When the facade's probe cache is
    on, lookups it served are counted separately in ``probes_cached``
    so the issued-probe semantics stay comparable to the paper's; with
    the cache off (the default, and how the efficiency benchmarks run)
    ``probes_cached`` is always zero.

    The semantic planner (``repro.core.plan``, opt-in) adds three more
    counters, all zero on the sequential path:

    * ``probes_subsumed`` — logical relaxation steps answered locally,
      by replaying an already-fetched result or deriving it from a
      containing one.  No source traffic, no budget charge.
    * ``probes_speculative`` — batch-prefetched probes that reached
      the source but were never demanded (expansion stopped first).
      These appear in ``ProbeLog.probes_issued`` but belong to no
      logical step, so they are reported separately.
    * ``frontier_batches`` — how many frontier waves the planner
      scheduled.

    ``logical_probes`` is invariant across scheduling modes: the
    batched engine demands exactly the serial probe stream, it just
    answers part of it without the source.
    """

    base_set_size: int = 0
    queries_issued: int = 0
    probes_cached: int = 0
    probes_subsumed: int = 0
    probes_speculative: int = 0
    frontier_batches: int = 0
    tuples_extracted: int = 0
    tuples_relevant: int = 0
    deepest_level: int = 0
    generalisation_steps: tuple[str, ...] = ()
    degradation: DegradationReport = field(default_factory=DegradationReport)

    @property
    def degraded(self) -> bool:
        """True when source failures forced the engine to skip work."""
        return self.degradation.degraded

    @property
    def total_lookups(self) -> int:
        """Issued probes plus cache-served lookups."""
        return self.queries_issued + self.probes_cached

    @property
    def logical_probes(self) -> int:
        """Relaxation steps resolved, however they were answered.

        ``queries_issued + probes_cached + probes_subsumed``: the
        demand stream is identical in serial and batched mode, so this
        equals the serial path's ``total_lookups`` by construction.
        """
        return self.queries_issued + self.probes_cached + self.probes_subsumed

    @property
    def source_probes(self) -> int:
        """Probes that actually reached the source, speculation included.

        Matches the :class:`~repro.db.ProbeLog` delta for the call
        (modulo base-query mapping probes, which the trace never
        counted).
        """
        return self.queries_issued + self.probes_speculative

    @property
    def work_per_relevant_tuple(self) -> float:
        """|T_extracted| / |T_relevant| (paper §6.3); inf when none found."""
        if self.tuples_relevant == 0:
            return float("inf")
        return self.tuples_extracted / self.tuples_relevant


@dataclass
class AnswerSet:
    """Top-k ranked answers plus provenance for one imprecise query."""

    query: ImpreciseQuery
    answers: list[RankedAnswer] = field(default_factory=list)
    trace: RelaxationTrace = field(default_factory=RelaxationTrace)

    def __len__(self) -> int:
        return len(self.answers)

    def __iter__(self) -> Iterator[RankedAnswer]:
        return iter(self.answers)

    def __getitem__(self, index: int) -> RankedAnswer:
        return self.answers[index]

    @property
    def rows(self) -> list[tuple]:
        return [answer.row for answer in self.answers]

    @property
    def row_ids(self) -> list[int]:
        return [answer.row_id for answer in self.answers]

    @property
    def degradation(self) -> DegradationReport:
        return self.trace.degradation

    @property
    def degraded(self) -> bool:
        """True when this answer is partial because the source failed."""
        return self.trace.degraded

    def describe(self, schema: RelationSchema, top: int | None = None) -> str:
        lines = [f"Answers for {self.query.describe()}:"]
        shown = self.answers if top is None else self.answers[:top]
        for rank, answer in enumerate(shown, start=1):
            rendered = ", ".join(
                f"{k}={v}" for k, v in answer.as_mapping(schema).items()
            )
            lines.append(f"  {rank:>2}. sim={answer.similarity:.3f}  {rendered}")
        return "\n".join(lines)
