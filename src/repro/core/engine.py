"""The AIMQ Query Engine: paper Algorithm 1, end to end.

Given an imprecise query Q the engine

1. maps Q to a precise base query Q_pr and fetches the *base set*
   (generalising per footnote 2 when Q_pr is empty);
2. treats each base tuple as a fully bound selection query and issues
   its relaxations — in mined attribute order for
   :class:`~repro.core.relaxation.GuidedRelax`, arbitrarily for
   :class:`~repro.core.relaxation.RandomRelax` — collecting extracted
   tuples whose similarity *to the base tuple* clears ``T_sim``;
3. ranks the extended set by similarity *to the query* and returns the
   top-k.

The engine only talks to the source through the
:class:`AutonomousWebDatabase` facade and keeps a
:class:`~repro.core.results.RelaxationTrace` of the work done, which the
efficiency experiments (Figs 6–7) read off directly.
"""

from __future__ import annotations

import heapq
from contextlib import nullcontext
from typing import Iterator, Mapping, Sequence

from repro.core.attribute_order import AttributeOrdering
from repro.core.config import AIMQSettings
from repro.core.plan import PlannerConfig, PlanSession
from repro.core.query import BaseQueryMapper, ImpreciseQuery
from repro.core.relaxation import (
    GuidedRelax,
    RelaxationStep,
    _RelaxerBase,
    tuple_as_query,
)
from repro.core.results import (
    AnswerSet,
    RankedAnswer,
    RelaxationTrace,
    answer_rank_key,
    base_rank_key,
)
from repro.core.similarity import BindingsScorer, TupleSimilarity
from repro.db import (
    AutonomousWebDatabase,
    ProbeLimitExceededError,
    TransientSourceError,
)
from repro.obs.runtime import OBS
from repro.resilience import (
    CircuitOpenError,
    Clock,
    DeadlineExceededError,
    ResiliencePolicy,
    ResilientWebDatabase,
)
from repro.simmining.estimator import SimilarityModel

__all__ = ["AIMQEngine"]


class _ExpansionAborted(Exception):
    """Internal control flow: every future probe of this call is doomed
    (probe budget gone, breaker open, or query deadline passed), so stop
    expanding and let the already-ranked tuples stand as the answer."""


class AIMQEngine:
    """Online half of AIMQ: answers imprecise queries with mined models."""

    def __init__(
        self,
        webdb: AutonomousWebDatabase | ResilientWebDatabase,
        ordering: AttributeOrdering,
        value_similarity: SimilarityModel,
        settings: AIMQSettings | None = None,
        strategy: _RelaxerBase | None = None,
        numeric_extents: dict[str, tuple[float, float]] | None = None,
        resilience: ResiliencePolicy | None = None,
        clock: Clock | None = None,
        planner: PlannerConfig | None = None,
    ) -> None:
        if resilience is not None and not isinstance(
            webdb, ResilientWebDatabase
        ):
            webdb = ResilientWebDatabase(webdb, resilience, clock=clock)
        self.webdb = webdb
        self.ordering = ordering
        self.settings = settings or AIMQSettings()
        # Semantic probe planner (repro.core.plan): None — the default —
        # selects the exact sequential relaxation path.
        self.planner = planner
        self.strategy = strategy if strategy is not None else GuidedRelax(ordering)
        self.similarity = TupleSimilarity(
            webdb.schema,
            ordering,
            value_similarity,
            numeric_mode=self.settings.numeric_similarity_mode,
            numeric_extents=numeric_extents,
        )
        self.mapper = BaseQueryMapper(
            webdb,
            relaxation_order=ordering.relaxation_order,
            numeric_band_fraction=self.settings.numeric_band_fraction,
        )

    # -- public API -----------------------------------------------------------

    def answer(
        self,
        query: ImpreciseQuery,
        k: int | None = None,
        similarity_threshold: float | None = None,
    ) -> AnswerSet:
        """Run Algorithm 1 and return the top-k ranked answer set."""
        settings = self.settings
        threshold = (
            settings.similarity_threshold
            if similarity_threshold is None
            else similarity_threshold
        )
        top_k = settings.top_k if k is None else k

        trace = RelaxationTrace()
        recorder = OBS.flight_recorder("engine.answer")
        log_before = self.webdb.log.snapshot() if recorder is not None else None
        phase = (
            recorder.phase
            if recorder is not None
            else (lambda name: nullcontext())
        )
        resilience_before = self._snapshot_resilience()
        with OBS.span(
            "engine.answer", query=query.describe(), k=top_k
        ) as root, self._deadline_scope():
            if recorder is not None and OBS.enabled:
                # Events and spans of one call share the span's id.
                recorder.trace_id = root.trace_id
            base_rows: list[tuple[int, tuple]] = []
            with phase("mapping"):
                try:
                    with OBS.span("engine.base_query_mapping") as mapping_span:
                        base = self.mapper.map(query)
                        mapping_span.set_attribute("base_set_size", len(base))
                        mapping_span.set_attribute(
                            "generalisation_steps",
                            len(base.generalisation_steps),
                        )
                except (
                    ProbeLimitExceededError,
                    TransientSourceError,
                    CircuitOpenError,
                    DeadlineExceededError,
                ) as exc:
                    # Without a base set there is nothing to relax; the
                    # degraded answer is empty but still structured.
                    trace.degradation.record("base_query", exc)
                else:
                    trace.generalisation_steps = base.generalisation_steps
                    base_rows = list(
                        zip(base.result.row_ids, base.result.rows)
                    )
                    base_rows = base_rows[: settings.base_set_cap]
            trace.base_set_size = len(base_rows)

            # One compiled scorer serves every Sim(Q, t) evaluation of
            # this call: the weight table and per-value VSim lookups are
            # resolved once instead of per candidate row.
            query_scorer = self.similarity.query_scorer(query)

            # Extended set, deduplicated by row id; base tuples are answers
            # by construction (they satisfy a specialisation of Q).
            extended: dict[int, RankedAnswer] = {}
            for base_row_id, base_row in base_rows:
                extended[base_row_id] = RankedAnswer(
                    row_id=base_row_id,
                    row=base_row,
                    similarity=query_scorer(base_row),
                    base_similarity=1.0,
                    source_base_row_id=base_row_id,
                    relaxation_level=0,
                )

            session = self._open_plan_session()
            programs = self._materialise_programs(session, base_rows)
            with phase("expansion"):
                try:
                    for tuple_index, (base_row_id, base_row) in enumerate(
                        base_rows
                    ):
                        try:
                            self._expand_base_tuple(
                                base_row_id, base_row, query_scorer,
                                threshold, extended, trace,
                                session=session,
                                steps=(
                                    programs[tuple_index]
                                    if programs is not None
                                    else None
                                ),
                                tuple_index=tuple_index,
                            )
                        except _ExpansionAborted:
                            break
                finally:
                    self._close_plan_session(session, trace)

            with phase("ranking"), OBS.span(
                "engine.ranking", candidates=len(extended)
            ):
                # nsmallest(k, key=...) == sorted(key=...)[:k] by
                # contract, so the deterministic tie-break (see
                # answer_rank_key) is preserved while only a k-sized
                # heap is maintained.
                answers = heapq.nsmallest(
                    top_k, extended.values(), key=answer_rank_key
                )
            root.set_attribute("answers", len(answers))
            root.set_attribute("probes", trace.queries_issued)
            root.set_attribute("degraded", trace.degraded)
        self._finish_degradation(trace, resilience_before)
        if OBS.enabled:
            self._record_query_metrics("answer", trace)
        if recorder is not None:
            self._emit_query_event(
                recorder, "answer", query.describe(), trace, log_before,
                answers=len(answers), k=top_k, threshold=threshold,
            )
        return AnswerSet(query=query, answers=answers, trace=trace)

    def answer_by_example(
        self,
        example: Mapping[str, object],
        k: int | None = None,
        similarity_threshold: float | None = None,
    ) -> AnswerSet:
        """Likeness query built from an example tuple's bindings."""
        query = ImpreciseQuery.like(self.webdb.schema.name, **dict(example))
        return self.answer(query, k=k, similarity_threshold=similarity_threshold)

    def explain(self, query: ImpreciseQuery, answer: "RankedAnswer"):
        """Decompose one answer's score (see :mod:`repro.core.explain`)."""
        from repro.core.explain import explain_answer

        return explain_answer(self.similarity, query, answer)

    def gather_similar(
        self,
        row: tuple,
        similarity_threshold: float | None = None,
        target: int | None = None,
        row_id: int | None = None,
    ) -> tuple[list[RankedAnswer], RelaxationTrace]:
        """Expand one tuple-as-query and gather its similar tuples.

        This is the §6.3 experiment primitive: given a database tuple,
        extract ``target`` tuples whose similarity to it exceeds
        ``T_sim``, reporting the work done in the trace.  Answers are
        ranked by similarity to the seed tuple.
        """
        settings = self.settings
        threshold = (
            settings.similarity_threshold
            if similarity_threshold is None
            else similarity_threshold
        )
        trace = RelaxationTrace(base_set_size=1)
        extended: dict[int, RankedAnswer] = {}
        seed_id = row_id if row_id is not None else -1
        recorder = OBS.flight_recorder("engine.gather_similar")
        log_before = self.webdb.log.snapshot() if recorder is not None else None
        phase = (
            recorder.phase
            if recorder is not None
            else (lambda name: nullcontext())
        )
        resilience_before = self._snapshot_resilience()
        with OBS.span(
            "engine.gather_similar", row_id=seed_id, threshold=threshold
        ) as root, self._deadline_scope():
            if recorder is not None and OBS.enabled:
                recorder.trace_id = root.trace_id
            session = self._open_plan_session()
            with phase("expansion"):
                try:
                    self._expand_base_tuple(
                        seed_id,
                        row,
                        None,
                        threshold,
                        extended,
                        trace,
                        target=target,
                        session=session,
                    )
                except _ExpansionAborted:
                    pass
                finally:
                    self._close_plan_session(session, trace)
            with phase("ranking"), OBS.span(
                "engine.ranking", candidates=len(extended)
            ):
                answers = sorted(extended.values(), key=base_rank_key)
            root.set_attribute("answers", len(answers))
            root.set_attribute("probes", trace.queries_issued)
            root.set_attribute("degraded", trace.degraded)
        self._finish_degradation(trace, resilience_before)
        if OBS.enabled:
            self._record_query_metrics("gather_similar", trace)
        if recorder is not None:
            self._emit_query_event(
                recorder, "gather_similar", f"row:{seed_id}", trace,
                log_before, answers=len(answers),
                k=target if target is not None else 0,
                threshold=threshold,
            )
        return answers, trace

    # -- internals --------------------------------------------------------

    def _expand_base_tuple(
        self,
        base_row_id: int,
        base_row: tuple,
        query_scorer: BindingsScorer | None,
        threshold: float,
        extended: dict[int, RankedAnswer],
        trace: RelaxationTrace,
        target: int | None = None,
        session: PlanSession | None = None,
        steps: Sequence[RelaxationStep] | None = None,
        tuple_index: int = 0,
    ) -> None:
        """Relax one base tuple until its quota of similar tuples is met.

        With ``query_scorer=None`` (tuple-query mode) the answer's
        query similarity equals its base similarity.  With an active
        ``session`` the relaxation steps route through the semantic
        planner (frontier batching + local reuse) but are consumed in
        the identical serial order; ``steps`` optionally supplies a
        pre-materialised program (frontier="all").
        """
        settings = self.settings
        schema = self.webdb.schema
        bound_query = tuple_as_query(
            base_row, schema, numeric_band=settings.tuple_query_numeric_band
        )
        # Every extracted tuple is compared against this one base row;
        # compile the reference bindings once instead of per comparison.
        base_scorer = self.similarity.row_scorer(base_row)
        quota = target if target is not None else settings.target_per_base_tuple
        relevant_found = 0
        extracted = 0
        observing = OBS.enabled
        # Bounded scoring drops provably-below-threshold rows without a
        # full evaluation; every kept score is exact, so answers are
        # bit-identical.  The score histogram must see every score, so
        # observability forces the plain path.
        bounded_scorer = (
            self.similarity.bounded_row_scorer(base_row, threshold)
            if settings.indexed_ranking and not observing
            else None
        )
        score_histogram = (
            OBS.registry.histogram(
                "repro_core_similarity_score",
                "Base-tuple similarity of every extracted tuple.",
                buckets=(0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0),
            )
            if observing
            else None
        )

        with OBS.span(
            "engine.expand_base_tuple", base_row_id=base_row_id
        ) as expand_span:
            for step in self._step_source(
                bound_query, session, steps, tuple_index
            ):
                if relevant_found >= quota:
                    break
                if extracted >= settings.max_extracted_per_base_tuple:
                    break
                with OBS.span(
                    "engine.relaxation_level",
                    level=step.level,
                    relaxed=",".join(step.relaxed_attributes),
                ) as step_span:
                    try:
                        result, probe_kind = self._probe_step(step, session)
                    except (ProbeLimitExceededError, CircuitOpenError) as exc:
                        # Terminal for the whole call: no future probe
                        # can succeed either.
                        trace.degradation.record(
                            "expansion", exc,
                            base_row_id=base_row_id, level=step.level,
                        )
                        raise _ExpansionAborted from exc
                    except DeadlineExceededError as exc:
                        if exc.scope == "query":
                            trace.degradation.record(
                                "expansion", exc,
                                base_row_id=base_row_id, level=step.level,
                            )
                            raise _ExpansionAborted from exc
                        # Probe-scope deadline: only this step is lost.
                        trace.degradation.record(
                            "relaxation", exc,
                            base_row_id=base_row_id, level=step.level,
                        )
                        continue
                    except TransientSourceError as exc:
                        # Retries (if configured) are already exhausted
                        # by the time this surfaces; skip the step and
                        # try the next relaxation.
                        trace.degradation.record(
                            "relaxation", exc,
                            base_row_id=base_row_id, level=step.level,
                        )
                        continue
                    step_span.set_attribute("result_size", len(result))
                if observing:
                    OBS.registry.counter(
                        "repro_core_relaxation_probes_total",
                        "Relaxation probes issued, by relaxation level.",
                        labels=("level",),
                    ).labels(level=step.level).inc()
                if probe_kind == "cached":
                    trace.probes_cached += 1
                elif probe_kind == "subsumed":
                    trace.probes_subsumed += 1
                else:
                    trace.queries_issued += 1
                trace.deepest_level = max(trace.deepest_level, step.level)
                for row_id, row in zip(result.row_ids, result.rows):
                    if row_id == base_row_id:
                        continue
                    extracted += 1
                    trace.tuples_extracted += 1
                    if bounded_scorer is not None:
                        maybe_score = bounded_scorer.score_above(row)
                        if maybe_score is None:
                            continue  # proven <= threshold, never kept
                        base_similarity = maybe_score
                    else:
                        base_similarity = base_scorer(row)
                        if score_histogram is not None:
                            score_histogram.observe(base_similarity)
                    if base_similarity <= threshold:
                        continue
                    existing = extended.get(row_id)
                    if existing is None:
                        # Only distinct relevant tuples count toward the
                        # quota; re-fetching a known answer is not progress.
                        relevant_found += 1
                        trace.tuples_relevant += 1
                    elif existing.base_similarity >= base_similarity:
                        continue
                    query_similarity = (
                        base_similarity
                        if query_scorer is None
                        else query_scorer(row)
                    )
                    extended[row_id] = RankedAnswer(
                        row_id=row_id,
                        row=row,
                        similarity=query_similarity,
                        base_similarity=base_similarity,
                        source_base_row_id=base_row_id,
                        relaxation_level=step.level,
                    )
                    if relevant_found >= quota:
                        break
                    if extracted >= settings.max_extracted_per_base_tuple:
                        break
            expand_span.set_attribute("extracted", extracted)
            expand_span.set_attribute("relevant", relevant_found)

    # -- semantic planning -------------------------------------------------

    def _open_plan_session(self) -> PlanSession | None:
        """A fresh planning session, or None on the sequential path."""
        if self.planner is None:
            return None
        return PlanSession(self.webdb, self.planner)

    def _close_plan_session(
        self, session: PlanSession | None, trace: RelaxationTrace
    ) -> None:
        """Fold the session's scheduling counters into the trace."""
        if session is None:
            return
        session.close()
        trace.frontier_batches = session.frontier_batches
        trace.probes_speculative = session.probes_speculative

    def _materialise_programs(
        self,
        session: PlanSession | None,
        base_rows: list[tuple[int, tuple]],
    ) -> list[list[RelaxationStep]] | None:
        """Pre-build every base tuple's relaxation program (frontier="all").

        Programs are materialised in tuple order, so a seeded
        RandomRelax draws its RNG stream in the serial sequence.  (The
        draws happen earlier than on the sequential path, which is
        observable across *subsequent* calls only when this call aborts
        early — the serial path would then never have created the later
        tuples' generators.  Documented in docs/PERFORMANCE.md.)
        """
        if (
            session is None
            or not session.active
            or session.config.frontier != "all"
        ):
            return None
        settings = self.settings
        schema = self.webdb.schema
        programs: list[list[RelaxationStep]] = []
        for _, base_row in base_rows:
            bound_query = tuple_as_query(
                base_row, schema,
                numeric_band=settings.tuple_query_numeric_band,
            )
            programs.append(
                list(
                    self.strategy.relaxation_steps(
                        bound_query, settings.max_relaxation_level
                    )
                )
            )
        session.set_programs(
            [
                [(step.query, step.level) for step in program]
                for program in programs
            ]
        )
        return programs

    def _step_source(
        self,
        bound_query,
        session: PlanSession | None,
        steps: Sequence[RelaxationStep] | None,
        tuple_index: int,
    ) -> Iterator[RelaxationStep]:
        """The relaxation step stream for one base tuple.

        Sequential path: the strategy's lazy generator, untouched.
        Batched path: the same steps in the same order, materialised so
        contiguous same-level runs can be announced to the session as
        frontier batches before being consumed.
        """
        if session is None or not session.active:
            if steps is not None:
                return iter(steps)
            return self.strategy.relaxation_steps(
                bound_query, self.settings.max_relaxation_level
            )
        if steps is None:
            steps = list(
                self.strategy.relaxation_steps(
                    bound_query, self.settings.max_relaxation_level
                )
            )
        return self._batched_steps(steps, session, tuple_index)

    @staticmethod
    def _batched_steps(
        steps: Sequence[RelaxationStep],
        session: PlanSession,
        tuple_index: int,
    ) -> Iterator[RelaxationStep]:
        """Yield steps serially, prefetching each same-level run first.

        GuidedRelax emits levels contiguously, so a run is one whole
        relaxation level; RandomRelax's shuffled stream degrades to
        short runs, which bounds its speculation accordingly.
        """
        index = 0
        total = len(steps)
        while index < total:
            level = steps[index].level
            run_end = index
            while run_end < total and steps[run_end].level == level:
                run_end += 1
            group = steps[index:run_end]
            session.prefetch(
                [step.query for step in group], tuple_index, level
            )
            yield from group
            index = run_end

    def _probe_step(
        self, step: RelaxationStep, session: PlanSession | None
    ) -> tuple:
        """Resolve one relaxation step and classify its accounting.

        Returns ``(result, kind)``, ``kind`` ∈ {"issued", "cached",
        "subsumed"}; exceptions propagate for the caller's degradation
        handling exactly as direct ``webdb.query`` calls did.
        """
        if session is not None:
            return session.fetch(step.query)
        result = self.webdb.query(step.query)
        return result, ("cached" if result.from_cache else "issued")

    def _deadline_scope(self):
        """The per-query deadline window (no-op without resilience)."""
        if isinstance(self.webdb, ResilientWebDatabase):
            return self.webdb.deadline_scope()
        return nullcontext()

    def _snapshot_resilience(self) -> tuple[int, int]:
        """(retries, breaker opens) so far, for per-call deltas."""
        if isinstance(self.webdb, ResilientWebDatabase):
            breaker = self.webdb.breaker
            return (
                self.webdb.retrier.retries,
                breaker.open_count if breaker is not None else 0,
            )
        return (0, 0)

    def _finish_degradation(
        self, trace: RelaxationTrace, before: tuple[int, int]
    ) -> None:
        """Attribute this call's share of retry/breaker activity."""
        after = self._snapshot_resilience()
        trace.degradation.retries_used = after[0] - before[0]
        trace.degradation.breaker_opens = after[1] - before[1]

    def _emit_query_event(
        self,
        recorder,
        mode: str,
        query_text: str,
        trace: RelaxationTrace,
        log_before,
        answers: int,
        k: int,
        threshold: float,
    ) -> None:
        """Flatten one call's cross-layer accounting into one wide event.

        Every field mirrors its source exactly: the ``probes_*`` family
        comes from the :class:`RelaxationTrace` (paper Figs 6–7
        semantics), the ``log_*`` family from the facade's
        :class:`~repro.db.ProbeLog` delta over the call, and the
        degradation block from :class:`DegradationReport` — no
        re-derivation, so the event can be asserted against all three.
        """
        log_delta = self.webdb.log.delta(log_before)
        degradation = trace.degradation
        planner = self.planner
        recorder.note(
            mode=mode,
            dataset=self.webdb.schema.name,
            query=query_text,
            k=k,
            threshold=threshold,
            answers=answers,
            base_set_size=trace.base_set_size,
            generalisation_steps=len(trace.generalisation_steps),
            deepest_level=trace.deepest_level,
            probes_issued=trace.queries_issued,
            probes_cached=trace.probes_cached,
            probes_subsumed=trace.probes_subsumed,
            probes_speculative=trace.probes_speculative,
            logical_probes=trace.logical_probes,
            frontier_batches=trace.frontier_batches,
            tuples_extracted=trace.tuples_extracted,
            tuples_relevant=trace.tuples_relevant,
            frontier="none" if planner is None else planner.frontier,
            batch_workers=0 if planner is None else planner.workers,
            resilient=isinstance(self.webdb, ResilientWebDatabase),
            degraded=trace.degraded,
            steps_skipped=len(degradation.skipped),
            skipped_stages=",".join(
                sorted({step.stage for step in degradation.skipped})
            ),
            probes_failed=degradation.probes_failed,
            retries_used=degradation.retries_used,
            breaker_opens=degradation.breaker_opens,
            budget_exhausted=degradation.budget_exhausted,
            breaker_open=degradation.breaker_open,
            deadline_exceeded=degradation.deadline_exceeded,
            log_probes_issued=log_delta.probes_issued,
            log_tuples_returned=log_delta.tuples_returned,
            log_empty_results=log_delta.empty_results,
            log_count_probes=log_delta.count_probes,
            log_cache_hits=log_delta.cache_hits,
        )
        recorder.finish()

    def _record_query_metrics(self, mode: str, trace: RelaxationTrace) -> None:
        """Publish one answered query's work accounting."""
        registry = OBS.registry
        registry.counter(
            "repro_core_queries_answered_total",
            "Imprecise queries answered, by entry point.",
            labels=("mode",),
        ).labels(mode=mode).inc()
        registry.histogram(
            "repro_core_base_set_size",
            "Base-set sizes after mapping/generalisation.",
            buckets=(0, 1, 2, 5, 10, 20, 50, 100, 200),
        ).observe(trace.base_set_size)
        registry.counter(
            "repro_core_tuples_extracted_total",
            "Tuples pulled from the source during relaxation.",
        ).inc(trace.tuples_extracted)
        registry.counter(
            "repro_core_tuples_relevant_total",
            "Extracted tuples clearing the similarity threshold.",
        ).inc(trace.tuples_relevant)
        # Registered unconditionally (inc(0) on the sequential path) so
        # `repro stats` always shows the planner families alongside the
        # rest of the pipeline.
        registry.counter(
            "repro_core_probes_subsumed_total",
            "Relaxation steps answered locally from subsuming "
            "results instead of probing the source.",
        ).inc(trace.probes_subsumed)
        registry.counter(
            "repro_core_frontier_batches_total",
            "Frontier waves scheduled by the semantic planner.",
        ).inc(trace.frontier_batches)
        if trace.degraded:
            registry.counter(
                "repro_core_degraded_answers_total",
                "Answers returned partial because the source failed.",
                labels=("mode",),
            ).labels(mode=mode).inc()
