"""Imprecise queries and their mapping to precise base queries.

An *imprecise query* "requires a close but not necessarily exact match"
(paper §3.2): constraints are ``like`` rather than ``=``.  AIMQ first
tightens every likeness constraint to equality, producing the precise
*base query* Q_pr whose answers seed the search (the paper's
pseudo-relevance-feedback move).  When Q_pr returns nothing, footnote 2
allows falling back to a generalisation — we widen numeric bindings into
bands and then drop the least-important attributes in relaxation order
until the base set is non-empty.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.db import (
    AutonomousWebDatabase,
    Between,
    Eq,
    Predicate,
    QueryError,
    QueryResult,
    RelationSchema,
    SelectionQuery,
)

__all__ = [
    "LikeConstraint",
    "PreciseConstraint",
    "ImpreciseQuery",
    "BaseQueryMapper",
    "BaseSet",
]


@dataclass(frozen=True)
class LikeConstraint:
    """``attribute like value`` — the imprecise atom."""

    attribute: str
    value: object

    def describe(self) -> str:
        return f"{self.attribute} like {self.value!r}"


@dataclass(frozen=True)
class PreciseConstraint:
    """A precise predicate embedded in an otherwise imprecise query.

    The motivating example mixes both kinds:
    ``Q :- CarDB(Model = Camry, Price < 10000)`` read as imprecise.
    """

    predicate: Predicate

    @property
    def attribute(self) -> str:
        return self.predicate.attribute

    def describe(self) -> str:
        return self.predicate.describe()


Constraint = LikeConstraint | PreciseConstraint


@dataclass(frozen=True)
class ImpreciseQuery:
    """A conjunction of like/precise constraints over one relation."""

    relation: str
    constraints: tuple[Constraint, ...]

    def __post_init__(self) -> None:
        if not self.constraints:
            raise QueryError("an imprecise query needs at least one constraint")
        seen: set[str] = set()
        for constraint in self.constraints:
            if constraint.attribute in seen:
                raise QueryError(
                    f"attribute {constraint.attribute!r} constrained twice"
                )
            seen.add(constraint.attribute)

    # -- constructors -------------------------------------------------------

    @classmethod
    def like(cls, relation: str, **bindings: object) -> "ImpreciseQuery":
        """All-likeness shorthand:

        >>> ImpreciseQuery.like("CarDB", Model="Camry", Price=10000).describe()
        "CarDB(Model like 'Camry', Price like 10000)"
        """
        return cls(
            relation,
            tuple(LikeConstraint(attr, value) for attr, value in bindings.items()),
        )

    # -- inspection ----------------------------------------------------------

    @property
    def bound_attributes(self) -> tuple[str, ...]:
        return tuple(constraint.attribute for constraint in self.constraints)

    @property
    def like_constraints(self) -> tuple[LikeConstraint, ...]:
        return tuple(
            c for c in self.constraints if isinstance(c, LikeConstraint)
        )

    def like_binding(self, attribute: str) -> object | None:
        for constraint in self.like_constraints:
            if constraint.attribute == attribute:
                return constraint.value
        return None

    def validate_against(self, schema: RelationSchema) -> None:
        if schema.name != self.relation:
            raise QueryError(
                f"query targets {self.relation!r} but schema is {schema.name!r}"
            )
        for constraint in self.constraints:
            schema.attribute(constraint.attribute)

    # -- mapping to the precise world -----------------------------------------

    def to_base_query(self) -> SelectionQuery:
        """Tighten likeness to equality: Q → Q_pr."""
        predicates: list[Predicate] = []
        for constraint in self.constraints:
            if isinstance(constraint, LikeConstraint):
                predicates.append(Eq(constraint.attribute, constraint.value))
            else:
                predicates.append(constraint.predicate)
        return SelectionQuery(tuple(predicates))

    def describe(self) -> str:
        rendered = ", ".join(c.describe() for c in self.constraints)
        return f"{self.relation}({rendered})"

    def __str__(self) -> str:  # pragma: no cover - delegation
        return self.describe()


@dataclass(frozen=True)
class BaseSet:
    """The base query finally used and the tuples it returned."""

    query: SelectionQuery
    result: QueryResult
    generalisation_steps: tuple[str, ...] = ()

    def __len__(self) -> int:
        return len(self.result)

    @property
    def rows(self) -> tuple[tuple, ...]:
        return self.result.rows


class BaseQueryMapper:
    """Maps an imprecise query to a non-empty base set (Alg. 1, step 1).

    Generalisation ladder when Q_pr is empty:

    1. widen each numeric equality into a ±band ``between`` probe
       (a Camry priced 10500 should seed a query for "Price like
       10000");
    2. drop bound attributes one at a time, least-important first
       according to the supplied relaxation order, until some
       generalisation returns tuples.

    The mapper reports the steps taken so callers can explain the
    answer provenance to the user.
    """

    def __init__(
        self,
        webdb: AutonomousWebDatabase,
        relaxation_order: Sequence[str] | None = None,
        numeric_band_fraction: float = 0.1,
    ) -> None:
        if not 0.0 < numeric_band_fraction <= 1.0:
            raise ValueError("numeric_band_fraction must be in (0, 1]")
        self.webdb = webdb
        self.relaxation_order = tuple(relaxation_order or ())
        self.numeric_band_fraction = numeric_band_fraction

    def map(self, query: ImpreciseQuery) -> BaseSet:
        """Return a non-empty base set or raise :class:`QueryError`."""
        query.validate_against(self.webdb.schema)
        base_query = query.to_base_query()
        result = self.webdb.query(base_query)
        if result:
            return BaseSet(query=base_query, result=result)

        steps: list[str] = []
        widened = self._widen_numeric(base_query)
        if widened is not base_query:
            steps.append("widened numeric equalities into bands")
            result = self.webdb.query(widened)
            if result:
                return BaseSet(
                    query=widened,
                    result=result,
                    generalisation_steps=tuple(steps),
                )
            base_query = widened

        for attribute in self._drop_order(base_query):
            base_query = base_query.without_attributes([attribute])
            steps.append(f"dropped constraint on {attribute}")
            if not base_query.predicates:
                break
            result = self.webdb.query(base_query)
            if result:
                return BaseSet(
                    query=base_query,
                    result=result,
                    generalisation_steps=tuple(steps),
                )
        raise QueryError(
            f"no generalisation of {query.describe()} returns any tuple"
        )

    # -- internals ---------------------------------------------------------

    def _widen_numeric(self, base_query: SelectionQuery) -> SelectionQuery:
        schema = self.webdb.schema
        widened = base_query
        for predicate in base_query.predicates:
            if not isinstance(predicate, Eq):
                continue
            if not schema.attribute(predicate.attribute).is_numeric:
                continue
            center = predicate.value
            if not isinstance(center, (int, float)) or isinstance(center, bool):
                continue
            band = abs(center) * self.numeric_band_fraction
            if band == 0:
                band = self.numeric_band_fraction
            widened = widened.replacing(
                predicate.attribute,
                [Between(predicate.attribute, center - band, center + band)],
            )
        return widened

    def _drop_order(self, base_query: SelectionQuery) -> list[str]:
        """Bound attributes, least important first.

        Attributes absent from the supplied relaxation order keep their
        query position but come before ordered ones (we know nothing
        about them, so they are the safest to drop).
        """
        bound = list(base_query.bound_attributes)
        position = {name: i for i, name in enumerate(self.relaxation_order)}
        return sorted(bound, key=lambda name: position.get(name, -1))
