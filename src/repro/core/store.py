"""Persistence for mined AIMQ models.

Mining is the expensive phase; a deployment wants to probe and mine
once, persist the artifacts, and answer queries from the stored model
until the source drifts.  This module serialises everything the online
engine needs — the dependency model, the attribute ordering, the value
similarities and the settings — to a single JSON document.

The schema itself is serialised too and verified on load, so a stored
model cannot silently be applied to a different relation.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

from repro.afd.model import AFD, ApproximateKey, DependencyModel
from repro.afd.tane import TaneConfig
from repro.core.attribute_order import AttributeOrdering
from repro.core.config import AIMQSettings
from repro.core.pipeline import AIMQModel, BuildTimings
from repro.db import RelationSchema, Table
from repro.simmining.estimator import SimilarityMinerConfig, SimilarityModel

__all__ = ["FORMAT_VERSION", "StoreError", "save_model", "load_model"]

FORMAT_VERSION = 1


class StoreError(Exception):
    """A stored model cannot be written or does not match on load."""


# -- serialisation ----------------------------------------------------------


def _schema_payload(schema: RelationSchema) -> dict:
    return {
        "name": schema.name,
        "attributes": [
            {"name": a.name, "kind": a.kind.value} for a in schema.attributes
        ],
    }


def _dependencies_payload(model: DependencyModel) -> dict:
    return {
        "attributes": list(model.attributes),
        "sample_size": model.sample_size,
        "afds": [
            {
                "lhs": list(afd.lhs),
                "rhs": afd.rhs,
                "error": afd.error,
                "minimal": afd.minimal,
            }
            for afd in model.afds
        ],
        "keys": [
            {
                "attributes": list(key.attributes),
                "error": key.error,
                "minimal": key.minimal,
            }
            for key in model.keys
        ],
    }


def _ordering_payload(ordering: AttributeOrdering) -> dict:
    return {
        "relaxation_order": list(ordering.relaxation_order),
        "importance": dict(ordering.importance),
        "deciding": list(ordering.deciding),
        "dependent": list(ordering.dependent),
        "best_key": (
            {
                "attributes": list(ordering.best_key.attributes),
                "error": ordering.best_key.error,
                "minimal": ordering.best_key.minimal,
            }
            if ordering.best_key is not None
            else None
        ),
        "decides_weight": dict(ordering.decides_weight),
        "depends_weight": dict(ordering.depends_weight),
    }


def _similarity_payload(model: SimilarityModel) -> dict:
    return {
        "attributes": list(model.attributes),
        "values": {
            attribute: sorted(model.known_values(attribute))
            for attribute in model.attributes
        },
        "pairs": {
            attribute: [
                [a, b, sim] for (a, b), sim in sorted(model.pairs(attribute).items())
            ]
            for attribute in model.attributes
        },
    }


def save_model(model: AIMQModel, path: str | Path) -> Path:
    """Write ``model`` as JSON; returns the path written.

    The probed sample itself is not stored (it can be large and is not
    needed online) — only its size is recorded for provenance.
    """
    path = Path(path)
    payload = {
        "format_version": FORMAT_VERSION,
        "schema": _schema_payload(model.sample.schema),
        "sample_rows": len(model.sample),
        "settings": asdict(model.settings),
        "dependencies": _dependencies_payload(model.dependencies),
        "ordering": _ordering_payload(model.ordering),
        "similarity": _similarity_payload(model.value_similarity),
        "numeric_extents": {
            name: list(extent) for name, extent in model.numeric_extents.items()
        },
        "timings": asdict(model.timings),
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=1), encoding="utf-8")
    return path


# -- deserialisation ---------------------------------------------------------


def _check_schema(payload: dict, schema: RelationSchema) -> None:
    stored = payload["schema"]
    if stored["name"] != schema.name:
        raise StoreError(
            f"stored model is for relation {stored['name']!r}, "
            f"not {schema.name!r}"
        )
    stored_attributes = [(a["name"], a["kind"]) for a in stored["attributes"]]
    live_attributes = [(a.name, a.kind.value) for a in schema.attributes]
    if stored_attributes != live_attributes:
        raise StoreError(
            "stored model's schema does not match the live relation "
            f"({stored_attributes!r} vs {live_attributes!r})"
        )


def _load_dependencies(payload: dict) -> DependencyModel:
    model = DependencyModel(
        payload["attributes"], sample_size=payload["sample_size"]
    )
    for entry in payload["afds"]:
        model.add_afd(
            AFD(
                lhs=tuple(entry["lhs"]),
                rhs=entry["rhs"],
                error=entry["error"],
                minimal=entry["minimal"],
            )
        )
    for entry in payload["keys"]:
        model.add_key(
            ApproximateKey(
                attributes=tuple(entry["attributes"]),
                error=entry["error"],
                minimal=entry["minimal"],
            )
        )
    return model


def _load_ordering(payload: dict) -> AttributeOrdering:
    best_key = payload["best_key"]
    return AttributeOrdering(
        relaxation_order=tuple(payload["relaxation_order"]),
        importance=dict(payload["importance"]),
        deciding=tuple(payload["deciding"]),
        dependent=tuple(payload["dependent"]),
        best_key=(
            ApproximateKey(
                attributes=tuple(best_key["attributes"]),
                error=best_key["error"],
                minimal=best_key["minimal"],
            )
            if best_key is not None
            else None
        ),
        decides_weight=dict(payload["decides_weight"]),
        depends_weight=dict(payload["depends_weight"]),
    )


def _load_similarity(payload: dict) -> SimilarityModel:
    model = SimilarityModel(payload["attributes"])
    for attribute, values in payload["values"].items():
        for value in values:
            model.register_value(attribute, value)
    for attribute, pairs in payload["pairs"].items():
        for a, b, sim in pairs:
            model.record(attribute, a, b, sim)
    return model


def _load_settings(payload: dict) -> AIMQSettings:
    data = dict(payload)
    data["tane"] = TaneConfig(**data["tane"])
    data["simmining"] = SimilarityMinerConfig(**data["simmining"])
    return AIMQSettings(**data)


def load_model(path: str | Path, schema: RelationSchema) -> AIMQModel:
    """Load a stored model and bind it to ``schema``.

    Raises :class:`StoreError` on version or schema mismatch.  The
    returned model's ``sample`` is an empty table carrying the schema —
    the probed data is not persisted.
    """
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise StoreError(f"cannot read stored model at {path}: {exc}") from exc
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise StoreError(
            f"stored model has format version {version!r}; this build "
            f"reads version {FORMAT_VERSION}"
        )
    _check_schema(payload, schema)
    timings = BuildTimings(**payload["timings"])
    return AIMQModel(
        sample=Table(schema),
        dependencies=_load_dependencies(payload["dependencies"]),
        ordering=_load_ordering(payload["ordering"]),
        value_similarity=_load_similarity(payload["similarity"]),
        settings=_load_settings(payload["settings"]),
        timings=timings,
        numeric_extents={
            name: (extent[0], extent[1])
            for name, extent in payload.get("numeric_extents", {}).items()
        },
    )
