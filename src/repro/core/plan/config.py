"""Configuration for the semantic probe planner (off by default)."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PlannerConfig", "FRONTIER_MODES"]

#: Valid frontier scopes, from least to most speculative.
FRONTIER_MODES = ("off", "tuple", "all")


@dataclass(frozen=True)
class PlannerConfig:
    """Knobs of the batched relaxation scheduler.

    The planner itself is opt-in: the engine takes ``planner=None`` by
    default and then runs the exact sequential path.  Constructing a
    config and handing it to the engine enables semantic reuse.

    Parameters
    ----------
    frontier:
        How much of the relaxation frontier each batch prefetches.

        ``"off"``
            No prefetching.  Probes dispatch one at a time on demand,
            but exact-duplicate replay and containment derivation still
            apply — zero speculation, reuse only.
        ``"tuple"`` (default)
            Before consuming a relaxation level of the current base
            tuple, dispatch that level's deduplicated, irreducible
            queries as one batch.  Every prefetched probe is one the
            serial path was about to issue (unless a quota break cuts
            the level short), so speculation is bounded by one level.
        ``"all"``
            Additionally prefetch the *same level* of every later base
            tuple's relaxation program.  Maximises batch width (and
            worker-pool utilisation) at the cost of speculative probes
            when expansion stops early.
    workers:
        Size of the bounded thread pool used to dispatch one batch's
        probes concurrently.  ``1`` (default) dispatches serially.  The
        facade is an I/O-shaped boundary, so workers only pay off
        against sources with real latency — the in-memory substrate
        serialises probes under its accounting lock.  Forced back to 1
        when the engine talks through a
        :class:`~repro.resilience.ResilientWebDatabase`, whose retry
        and deadline state is not thread-safe.
    """

    frontier: str = "tuple"
    workers: int = 1

    def __post_init__(self) -> None:
        if self.frontier not in FRONTIER_MODES:
            raise ValueError(
                f"frontier must be one of {FRONTIER_MODES}, got "
                f"{self.frontier!r}"
            )
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
