"""Per-call store of probe results with containment-based derivation.

The store remembers every result one planning session has seen, keyed
by the query's canonical conjunction.  Two reuse mechanisms live here:

* **Exact replay** — a demand whose canonical form was already fetched
  returns the stored result verbatim (same payload, same flags).
* **Containment derivation** — a demand Q2 subsumed by a stored,
  *untruncated* result for Q1 (``preds(Q1) ⊆ preds(Q2)``, so
  ``rows(Q2) ⊆ rows(Q1)``) is answered locally by evaluating Q2's
  residual predicates over Q1's rows.  Because the executor returns
  rows in canonical ascending-row-id order, the derived result is
  bit-identical to what the source would have returned, including the
  ``result_cap`` window semantics.

Truncated containers are never used for derivation: a cut page is not
the container's full answer set, so filtering it could silently drop
matches.  Errors are stored too, so a batch-dispatched failure
surfaces at the exact logical step that demanded it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Hashable

from repro.db import QueryResult, RelationSchema, SelectionQuery

__all__ = ["SemanticProbeStore", "StoredProbe"]

# Containment lookup strategy cut-over: a demand with n conjuncts has
# 2^n - 2 proper non-empty subsets; enumerating them against the store
# dict is O(2^n) but independent of store size, so it wins for the
# form-sized queries relaxation actually issues.  Wider conjunctions
# (n > 10) fall back to scanning the store.
_SUBSET_ENUMERATION_LIMIT = 10


@dataclass
class StoredProbe:
    """One probe the session has dispatched (or derived locally).

    ``demanded`` flips when a logical relaxation step first consumes
    the entry; prefetched entries that never flip are *speculative* —
    dispatched to the source but never needed.  ``error`` holds the
    exception a dispatch raised, re-raised at every demand of the same
    canonical query (exactly as re-issuing it would).
    """

    query: SelectionQuery
    result: QueryResult | None = None
    error: Exception | None = None
    demanded: bool = False
    prefetched: bool = False
    canonical_set: frozenset[tuple[object, ...]] = field(
        default_factory=frozenset
    )


class SemanticProbeStore:
    """Canonical-keyed result store for one planning session."""

    def __init__(self) -> None:
        self._entries: dict[Hashable, StoredProbe] = {}
        # Same entries keyed by canonical *set*, for containment probes.
        self._by_set: dict[frozenset[tuple[object, ...]], StoredProbe] = {}
        # Conjunct counts present in the store: subset enumeration only
        # visits sizes at which a container can actually exist.
        self._sizes: set[int] = set()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, query: SelectionQuery) -> StoredProbe | None:
        """The stored entry for this exact canonical conjunction."""
        return self._entries.get(query.canonical_predicates())

    def put_result(
        self, query: SelectionQuery, result: QueryResult, prefetched: bool
    ) -> StoredProbe:
        """Store one fetched (or derived) result."""
        entry = StoredProbe(
            query=query,
            result=result,
            prefetched=prefetched,
            canonical_set=query.canonical_form_set(),
        )
        self._entries[query.canonical_predicates()] = entry
        self._by_set[entry.canonical_set] = entry
        self._sizes.add(len(entry.canonical_set))
        return entry

    def put_error(
        self, query: SelectionQuery, error: Exception, prefetched: bool
    ) -> StoredProbe:
        """Store one dispatch failure for replay at demand time."""
        entry = StoredProbe(
            query=query,
            error=error,
            prefetched=prefetched,
            canonical_set=query.canonical_form_set(),
        )
        self._entries[query.canonical_predicates()] = entry
        self._by_set[entry.canonical_set] = entry
        return entry

    def find_container(self, query: SelectionQuery) -> StoredProbe | None:
        """A stored result that subsumes ``query``, or None.

        Candidates must be successful, *untruncated* fetches whose
        canonical conjuncts are a proper subset of the demand's (the
        exact match is :meth:`get`'s business).  Every eligible
        container yields the identical derived result — the demand's
        full answer set — so the choice only affects derivation cost;
        subsets are enumerated largest first because a more specific
        container holds fewer rows to filter.
        """
        demand = query.canonical_predicates()
        n = len(demand)
        if n > _SUBSET_ENUMERATION_LIMIT:
            demand_set = query.canonical_form_set()
            for entry in self._entries.values():
                if entry.result is None or entry.result.truncated:
                    continue
                if len(entry.canonical_set) < n and (
                    entry.canonical_set <= demand_set
                ):
                    return entry
            return None
        # Size 0 is the match-all query: relaxation never issues it, but
        # it is a legitimate container for anything if a caller stored it.
        for size in range(n - 1, -1, -1):
            if size not in self._sizes:
                continue
            for combo in combinations(demand, size):
                entry = self._by_set.get(frozenset(combo))
                if (
                    entry is not None
                    and entry.result is not None
                    and not entry.result.truncated
                ):
                    return entry
        return None

    def derive(
        self,
        query: SelectionQuery,
        container: StoredProbe,
        schema: RelationSchema,
        result_cap: int | None,
    ) -> QueryResult:
        """Answer ``query`` from a subsuming stored result.

        Evaluates the residual predicates (the demand's conjuncts the
        container does not already enforce) over the container's rows.
        Rows stay in canonical ascending-row-id order, and the facade's
        ``result_cap`` window is replicated — first N matches, flagged
        ``truncated`` when more exist — so the derived result is
        indistinguishable from a real probe's, except for the
        ``derived`` flag that keeps the accounting honest.
        """
        assert container.result is not None
        residual = SelectionQuery(
            query.residual_against(container.result.query)
        )
        row_ids: list[int] = []
        rows: list[tuple] = []
        truncated = False
        for row_id, row in zip(
            container.result.row_ids, container.result.rows
        ):
            if not residual.matches(row, schema):
                continue
            if result_cap is not None and len(row_ids) >= result_cap:
                truncated = True
                break
            row_ids.append(row_id)
            rows.append(row)
        return QueryResult(
            query=query,
            row_ids=tuple(row_ids),
            rows=tuple(rows),
            truncated=truncated,
            derived=True,
        )

    def speculative_count(self) -> int:
        """Prefetched probes that reached the source but were never
        demanded — the cost of batching past an early quota break."""
        return sum(
            1
            for entry in self._entries.values()
            if entry.prefetched
            and entry.result is not None
            and not entry.result.derived
            and not entry.result.from_cache
            and not entry.demanded
        )
