"""One engine call's batched, containment-aware probe scheduling.

A :class:`PlanSession` sits between the engine's relaxation loop and
the web-database facade.  The engine announces each relaxation level's
frontier before consuming it (:meth:`PlanSession.prefetch`) and then
demands results step by step (:meth:`PlanSession.fetch`) in the exact
order the sequential path would have issued them.  The session

* deduplicates the frontier by canonical conjunction,
* skips queries a stored result already subsumes (they will be derived
  locally at demand time),
* dispatches the irreducible residue through the facade — serially or
  via a bounded thread pool, and
* replays or derives everything else without touching the source.

Every probe that reaches the source goes through ``webdb.query``; the
session never writes to the :class:`~repro.db.ProbeLog` and never
fabricates accounting for locally-answered queries — reprolint REP004
enforces both.

**Fault injection pass-through.**  With an active fault policy the
fault schedule is drawn per source-reaching attempt, so reordering or
eliding probes would shift which attempts fail.  The session therefore
deactivates itself (``active=False``) when the facade has a fault
policy installed: every fetch goes straight through, keeping fault
schedules — and hence results — bit-identical to the serial path.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Sequence

from repro.core.plan.config import PlannerConfig
from repro.core.plan.store import SemanticProbeStore
from repro.db import (
    AutonomousWebDatabase,
    ProbeLimitExceededError,
    QueryResult,
    SelectionQuery,
    TransientSourceError,
)
from repro.obs.runtime import OBS
from repro.obs.tracing import TraceContext
from repro.resilience import (
    CircuitOpenError,
    DeadlineExceededError,
    ResilientWebDatabase,
)

__all__ = ["PlanSession"]

# The error classes the engine's relaxation loop knows how to degrade
# on.  Batch dispatch catches exactly these and replays them at demand
# time; anything else is a programming error and propagates.
_DISPATCH_ERRORS = (
    ProbeLimitExceededError,
    TransientSourceError,
    CircuitOpenError,
    DeadlineExceededError,
)


class PlanSession:
    """Scheduling state for one ``answer()``/``gather_similar()`` call."""

    def __init__(
        self,
        webdb: AutonomousWebDatabase | ResilientWebDatabase,
        config: PlannerConfig,
    ) -> None:
        self.webdb = webdb
        self.config = config
        # Pass-through when faults are active: see module docstring.
        self.active = webdb.fault_policy is None
        workers = config.workers
        if workers > 1 and isinstance(webdb, ResilientWebDatabase):
            # The wrapper's retrier counters and deadline-budget slot
            # are plain instance state; concurrent probes would race
            # them.  Resilience therefore always dispatches serially.
            workers = 1
        self.workers = workers
        self.store = SemanticProbeStore()
        self.schema = webdb.schema
        self.result_cap = webdb.result_cap
        self.frontier_batches = 0
        self._pool: ThreadPoolExecutor | None = None
        # With frontier="all": each later tuple's (query, level) program,
        # registered up front so a batch can pull sibling levels in.
        self._programs: list[list[tuple[SelectionQuery, int]]] | None = None

    # -- frontier scheduling ---------------------------------------------------

    def set_programs(
        self, programs: list[list[tuple[SelectionQuery, int]]]
    ) -> None:
        """Register every base tuple's relaxation program (frontier="all")."""
        self._programs = programs

    def prefetch(
        self,
        queries: Sequence[SelectionQuery],
        tuple_index: int,
        level: int,
    ) -> None:
        """Dispatch one level's irreducible frontier as a batch.

        ``queries`` is the current tuple's contiguous run of
        level-``level`` relaxations, in serial demand order.  With
        ``frontier="all"`` the batch additionally pulls the same level
        from every later tuple's registered program.  Queries already
        stored, duplicated within the batch, or subsumed by a stored
        untruncated result are not dispatched.
        """
        if not self.active or self.config.frontier == "off":
            return
        if not queries:
            return
        wave = list(queries)
        if self.config.frontier == "all" and self._programs is not None:
            for program in self._programs[tuple_index + 1 :]:
                wave.extend(q for q, lv in program if lv == level)
        self.frontier_batches += 1
        batch: list[SelectionQuery] = []
        seen: set[object] = set()
        for query in wave:
            key = query.canonical_predicates()
            if key in seen:
                continue
            seen.add(key)
            if self.store.get(query) is not None:
                continue
            if self.store.find_container(query) is not None:
                continue
            batch.append(query)
        if not batch:
            return
        if self.workers > 1 and len(batch) > 1:
            pool = self._ensure_pool()
            # Worker threads start with empty span stacks, so batch
            # probes would otherwise become orphan roots: capture the
            # caller's span and re-activate it around each dispatch so
            # probe spans nest under the answering span.
            context = OBS.tracer.capture() if OBS.enabled else None
            # Each worker writes a distinct canonical key into the
            # store, so the dict updates cannot collide; the facade
            # serialises the probes themselves under its accounting
            # lock.
            futures = [
                pool.submit(self._dispatch_traced, query, context)
                for query in batch
            ]
            for future in futures:
                future.result()
        else:
            for query in batch:
                self._dispatch_one(query)

    def _dispatch_traced(
        self, query: SelectionQuery, context: TraceContext | None
    ) -> None:
        """Pool-side dispatch under the dispatcher's trace context."""
        if context is None:
            self._dispatch_one(query)
            return
        with OBS.tracer.activate(context):
            self._dispatch_one(query)

    def _dispatch_one(self, query: SelectionQuery) -> None:
        with OBS.span("plan.batch_probe") as span:
            if OBS.enabled:
                span.set_attribute("query", query.describe())
            try:
                result = self.webdb.query(query)
            except _DISPATCH_ERRORS as exc:
                self.store.put_error(query, exc, prefetched=True)
                span.set_attribute("outcome", type(exc).__name__)
            else:
                self.store.put_result(query, result, prefetched=True)
                span.set_attribute("rows", len(result))

    # -- demand-side fetching --------------------------------------------------

    def fetch(self, query: SelectionQuery) -> tuple[QueryResult, str]:
        """Resolve one logical relaxation step, in serial demand order.

        Returns ``(result, kind)`` where ``kind`` tells the engine how
        to account the step: ``"issued"`` (a real probe reached the
        source for this demand), ``"cached"`` (the facade's probe cache
        served the dispatch), or ``"subsumed"`` (answered locally by
        replay or containment derivation — no new source traffic).
        Stored dispatch errors re-raise here, at the step that demanded
        them.
        """
        if not self.active:
            result = self.webdb.query(query)
            return result, ("cached" if result.from_cache else "issued")
        entry = self.store.get(query)
        if entry is not None:
            if entry.error is not None:
                raise entry.error
            assert entry.result is not None
            if entry.demanded:
                return entry.result, "subsumed"
            entry.demanded = True
            if entry.result.derived:
                return entry.result, "subsumed"
            kind = "cached" if entry.result.from_cache else "issued"
            return entry.result, kind
        container = self.store.find_container(query)
        if container is not None:
            derived = self.store.derive(
                query, container, self.schema, self.result_cap
            )
            stored = self.store.put_result(query, derived, prefetched=False)
            stored.demanded = True
            return derived, "subsumed"
        result = self.webdb.query(query)
        stored = self.store.put_result(query, result, prefetched=False)
        stored.demanded = True
        return result, ("cached" if result.from_cache else "issued")

    # -- lifecycle -------------------------------------------------------------

    @property
    def probes_speculative(self) -> int:
        """Prefetched source probes never demanded by a logical step."""
        return self.store.speculative_count()

    def close(self) -> None:
        """Release the worker pool (results in the store stay readable)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.workers)
        return self._pool
