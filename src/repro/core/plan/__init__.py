"""Semantic probe planning for the online answering hot path.

Algorithm 1 relaxes every base-set tuple independently, so one
imprecise query fans out into hundreds of probes whose answer sets
heavily overlap — sibling base tuples issue *identical* relaxed
queries, and a deeper relaxation (fewer predicates) *contains* every
shallower one that binds a superset of its predicates.  This package
exploits both facts without changing a single answer:

* :class:`PlannerConfig` — opt-in knobs (frontier scope, worker pool).
* :class:`SemanticProbeStore` — per-call store of fetched results with
  exact-duplicate replay and containment-based residual derivation.
* :class:`PlanSession` — the scheduling session one ``answer()`` /
  ``gather_similar()`` call opens: batches each relaxation level's
  frontier, deduplicates it, dispatches only the irreducible residue
  (optionally concurrently) and answers the rest locally.

The engine consumes results in exact serial order, so the ranked
answer set is bit-identical to the sequential path; only the probe
traffic shrinks.  See ``docs/PERFORMANCE.md`` ("Semantic probe
reuse") for the containment rules and the accounting semantics.
"""

from repro.core.plan.config import FRONTIER_MODES, PlannerConfig
from repro.core.plan.session import PlanSession
from repro.core.plan.store import SemanticProbeStore, StoredProbe

__all__ = [
    "FRONTIER_MODES",
    "PlannerConfig",
    "PlanSession",
    "SemanticProbeStore",
    "StoredProbe",
]
