"""AIMQ core: the paper's primary contribution.

Imprecise-query model, AFD-derived attribute ordering (Algorithm 2),
guided/random relaxation, query–tuple similarity, the online answering
engine (Algorithm 1) and the one-call offline build pipeline.
"""

from repro.core.attribute_order import (
    AttributeOrdering,
    compute_attribute_ordering,
    uniform_ordering,
)
from repro.core.config import AIMQSettings
from repro.core.engine import AIMQEngine
from repro.core.explain import (
    AnswerExplanation,
    AttributeContribution,
    explain_answer,
)
from repro.core.pipeline import (
    AIMQModel,
    BuildTimings,
    build_model,
    build_model_from_sample,
)
from repro.core.plan import PlannerConfig, PlanSession, SemanticProbeStore
from repro.core.query import (
    BaseQueryMapper,
    BaseSet,
    ImpreciseQuery,
    LikeConstraint,
    PreciseConstraint,
)
from repro.core.relaxation import (
    GuidedRelax,
    RandomRelax,
    RelaxationStep,
    ordered_subsets,
    tuple_as_query,
)
from repro.core.results import (
    AnswerSet,
    RankedAnswer,
    RelaxationTrace,
    answer_rank_key,
    base_rank_key,
)
from repro.core.similarity import (
    TupleSimilarity,
    numeric_similarity,
    range_scaled_similarity,
)
from repro.core.store import StoreError, load_model, save_model

__all__ = [
    "AIMQEngine",
    "AIMQModel",
    "AIMQSettings",
    "AnswerExplanation",
    "AnswerSet",
    "AttributeContribution",
    "AttributeOrdering",
    "BaseQueryMapper",
    "BaseSet",
    "BuildTimings",
    "GuidedRelax",
    "ImpreciseQuery",
    "LikeConstraint",
    "PlanSession",
    "PlannerConfig",
    "PreciseConstraint",
    "RandomRelax",
    "RankedAnswer",
    "RelaxationStep",
    "RelaxationTrace",
    "SemanticProbeStore",
    "StoreError",
    "TupleSimilarity",
    "answer_rank_key",
    "base_rank_key",
    "load_model",
    "save_model",
    "build_model",
    "build_model_from_sample",
    "compute_attribute_ordering",
    "explain_answer",
    "numeric_similarity",
    "ordered_subsets",
    "range_scaled_similarity",
    "tuple_as_query",
    "uniform_ordering",
]
