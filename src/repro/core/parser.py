"""A small textual query language for imprecise queries.

The paper writes queries as ``Q :- CarDB(Model like Camry, Price <
10000)``; this module parses that surface form (and a bare-conjunction
variant) into :class:`ImpreciseQuery` objects so CLIs, logs and tests
can speak the paper's own notation::

    parse_query("CarDB(Model like Camry, Price < 10000)")
    parse_query("Model like 'Econoline Van' AND Price < 10000",
                relation="CarDB")

Grammar (case-insensitive keywords)::

    query       := relation "(" conjunction ")" | conjunction
    conjunction := condition (("," | "AND") condition)*
    condition   := attribute ("like" | "=" | "!=" | "<" | "<=" | ">" | ">=") value
    value       := quoted string | bareword | number

Bare values are parsed as numbers when they look numeric, strings
otherwise; quoting forces a string (``Year like '1985'``).
"""

from __future__ import annotations

import re

from repro.core.query import ImpreciseQuery, LikeConstraint, PreciseConstraint
from repro.db import QueryError, parse_op

__all__ = ["parse_query", "ParseError"]


class ParseError(QueryError):
    """The query text does not match the grammar."""


_RELATION_FORM = re.compile(r"^\s*([A-Za-z_][\w.-]*)\s*\((.*)\)\s*$", re.DOTALL)

_CONDITION = re.compile(
    r"""^\s*
    (?P<attribute>[A-Za-z_][\w.-]*)\s*
    (?P<op>like|LIKE|Like|!=|<=|>=|=|<|>)\s*
    (?P<value>'[^']*'|"[^"]*"|[^\s].*?)\s*$""",
    re.VERBOSE,
)


def _split_conjunction(text: str) -> list[str]:
    """Split on commas / AND outside quotes."""
    parts: list[str] = []
    current: list[str] = []
    quote: str | None = None
    tokens = re.split(r"(\s+[Aa][Nn][Dd]\s+|,|'[^']*'|\"[^\"]*\")", text)
    for token in tokens:
        if token is None or token == "":
            continue
        if quote is None and (
            token == "," or re.fullmatch(r"\s+[Aa][Nn][Dd]\s+", token)
        ):
            parts.append("".join(current))
            current = []
        else:
            current.append(token)
    parts.append("".join(current))
    return [part.strip() for part in parts if part.strip()]


def _parse_value(raw: str) -> object:
    raw = raw.strip()
    if len(raw) >= 2 and raw[0] == raw[-1] and raw[0] in "'\"":
        return raw[1:-1]
    try:
        return int(raw)
    except ValueError:
        pass
    try:
        return float(raw)
    except ValueError:
        return raw


def _parse_condition(text: str):
    match = _CONDITION.match(text)
    if match is None:
        raise ParseError(f"cannot parse condition {text!r}")
    attribute = match.group("attribute")
    operator = match.group("op").lower()
    value = _parse_value(match.group("value"))
    if operator == "like":
        return LikeConstraint(attribute, value)
    return PreciseConstraint(parse_op(attribute, operator, value))


def parse_query(text: str, relation: str | None = None) -> ImpreciseQuery:
    """Parse the paper-style textual form into an :class:`ImpreciseQuery`.

    ``relation`` supplies the target relation for the bare-conjunction
    form; the ``Relation(...)`` form carries its own (and overrides the
    argument, raising if both are present and disagree).

    >>> q = parse_query("CarDB(Model like Camry, Price < 10000)")
    >>> q.describe()
    "CarDB(Model like 'Camry', Price < 10000)"
    """
    if not text or not text.strip():
        raise ParseError("empty query text")
    form = _RELATION_FORM.match(text)
    if form is not None:
        parsed_relation, body = form.group(1), form.group(2)
        if relation is not None and relation != parsed_relation:
            raise ParseError(
                f"query names relation {parsed_relation!r} but "
                f"{relation!r} was requested"
            )
        relation = parsed_relation
    else:
        body = text
        if relation is None:
            raise ParseError(
                "bare conjunction needs an explicit relation= argument"
            )
    conditions = tuple(
        _parse_condition(part) for part in _split_conjunction(body)
    )
    if not conditions:
        raise ParseError(f"no conditions found in {text!r}")
    return ImpreciseQuery(relation, conditions)
