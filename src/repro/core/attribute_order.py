"""Attribute relaxation order and importance weights (paper Algorithm 2).

The insight of §4: the tuples most similar to a base tuple differ in
the *least important* attribute — the one whose value, when changed,
least affects the other attributes.  AFDs quantify exactly that, so the
algorithm:

1. picks the approximate key AK with the highest support and splits the
   attribute set into the *deciding* group (members of AK) and the
   *dependent* group (the rest);
2. scores deciding attributes by ``Wt_decides(k) = Σ support(A→·)/|A|``
   over AFDs whose determinant contains ``k``, and dependent attributes
   by ``Wt_depends(j) = Σ support(A→j)/|A|`` over AFDs with consequent
   ``j``;
3. sorts each group ascending and relaxes the whole dependent group
   before the deciding group.

Importance weights follow the paper's formula

    W_imp(k) = RelaxOrder(k)/|R| · Wt(k)/ΣWt_group

and are finally normalised to sum to one (the Sim definition in §5
requires ΣW_imp = 1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.afd.model import ApproximateKey, DependencyModel
from repro.db import RelationSchema

__all__ = [
    "AttributeOrdering",
    "compute_attribute_ordering",
    "uniform_ordering",
]


@dataclass(frozen=True)
class AttributeOrdering:
    """The mined ordering: who relaxes first and who matters most."""

    relaxation_order: tuple[str, ...]
    importance: dict[str, float]
    deciding: tuple[str, ...]
    dependent: tuple[str, ...]
    best_key: ApproximateKey | None
    decides_weight: dict[str, float]
    depends_weight: dict[str, float]

    def __post_init__(self) -> None:
        if set(self.relaxation_order) != set(self.importance):
            raise ValueError("relaxation order and importance must cover "
                             "the same attributes")

    def relax_position(self, attribute: str) -> int:
        """1-based relaxation position (1 = least important, first out)."""
        return self.relaxation_order.index(attribute) + 1

    def weight(self, attribute: str) -> float:
        """Normalised importance W_imp of ``attribute`` (0 if unknown)."""
        return self.importance.get(attribute, 0.0)

    def weights_over(self, attributes: tuple[str, ...]) -> dict[str, float]:
        """Importance restricted to ``attributes`` and renormalised.

        Sim(Q, t) sums only over the query's bound attributes, so the
        weights must be rescaled to sum to one over that subset.  When
        every requested attribute has zero mined weight the fallback is
        uniform — the query still deserves a ranking.
        """
        raw = {name: self.importance.get(name, 0.0) for name in attributes}
        total = sum(raw.values())
        if total <= 0.0:
            if not attributes:
                return {}
            uniform = 1.0 / len(attributes)
            return {name: uniform for name in attributes}
        return {name: value / total for name, value in raw.items()}

    def smoothed(self, smoothing: float) -> "AttributeOrdering":
        """Blend the importance weights with the uniform distribution.

        ``W'(k) = (1−λ)·W(k) + λ/n``.  Sparse samples can mine so few
        dependencies that several attributes end up with exactly zero
        importance; the similarity function then ignores those columns
        entirely, which is never what a ranking over real tuples wants.
        Smoothing keeps the mined *ordering* (including relaxation
        order) while guaranteeing every attribute a floor of weight.
        """
        if not 0.0 <= smoothing <= 1.0:
            raise ValueError("smoothing must be in [0, 1]")
        if smoothing == 0.0:
            return self
        uniform = 1.0 / len(self.relaxation_order)
        blended = {
            name: (1.0 - smoothing) * weight + smoothing * uniform
            for name, weight in self.importance.items()
        }
        return AttributeOrdering(
            relaxation_order=self.relaxation_order,
            importance=blended,
            deciding=self.deciding,
            dependent=self.dependent,
            best_key=self.best_key,
            decides_weight=self.decides_weight,
            depends_weight=self.depends_weight,
        )

    def describe(self) -> str:
        lines = ["Attribute ordering (least → most important):"]
        for name in self.relaxation_order:
            group = "deciding" if name in self.deciding else "dependent"
            lines.append(
                f"  {self.relax_position(name)}. {name:<14} "
                f"W_imp={self.importance[name]:.4f} ({group})"
            )
        if self.best_key is not None:
            lines.append("  partitioned by " + self.best_key.describe())
        return "\n".join(lines)


def compute_attribute_ordering(
    schema: RelationSchema,
    model: DependencyModel,
    key_criterion: str = "support",
) -> AttributeOrdering:
    """Run Algorithm 2 over a mined dependency model.

    ``key_criterion`` selects the best approximate key by ``"support"``
    (the algorithm as written) or ``"quality"`` (the §6.2 metric that
    normalises by key size); both are deterministic.

    When no approximate key was mined, every attribute falls into the
    dependent group — the ordering then reduces to ascending
    ``Wt_depends``, which is the best information available.
    """
    names = schema.attribute_names
    best_key = model.best_key(by=key_criterion)
    deciding_set = set(best_key.attributes) if best_key else set()

    deciding = tuple(name for name in names if name in deciding_set)
    dependent = tuple(name for name in names if name not in deciding_set)

    decides_weight = {name: model.decides_weight(name) for name in deciding}
    depends_weight = {name: model.dependence_weight(name) for name in names}

    position = {name: index for index, name in enumerate(names)}

    def ascending(group: tuple[str, ...], weights: dict[str, float]) -> list[str]:
        return sorted(group, key=lambda name: (weights[name], position[name]))

    dependent_sorted = ascending(
        dependent, {name: depends_weight[name] for name in dependent}
    )
    deciding_sorted = ascending(deciding, decides_weight)
    relaxation_order = tuple(dependent_sorted + deciding_sorted)

    importance = _importance_weights(
        relaxation_order,
        deciding_set,
        decides_weight,
        depends_weight,
        n_attributes=len(names),
    )

    return AttributeOrdering(
        relaxation_order=relaxation_order,
        importance=importance,
        deciding=deciding,
        dependent=dependent,
        best_key=best_key,
        decides_weight=decides_weight,
        depends_weight={name: depends_weight[name] for name in dependent},
    )


def uniform_ordering(schema: RelationSchema) -> AttributeOrdering:
    """An ordering that knows nothing: schema order, equal importance.

    This models the paper's strawman systems — §6.4 notes that
    "RandomRelax and ROCK give equal importance to all the attributes".
    Pairing this ordering with :class:`~repro.core.relaxation.RandomRelax`
    (which ignores the order anyway) yields the uniform-weight baseline.
    """
    names = schema.attribute_names
    uniform = 1.0 / len(names)
    return AttributeOrdering(
        relaxation_order=names,
        importance={name: uniform for name in names},
        deciding=(),
        dependent=names,
        best_key=None,
        decides_weight={},
        depends_weight={name: 0.0 for name in names},
    )


def _importance_weights(
    relaxation_order: tuple[str, ...],
    deciding_set: set[str],
    decides_weight: dict[str, float],
    depends_weight: dict[str, float],
    n_attributes: int,
) -> dict[str, float]:
    """W_imp per the paper's formula, then normalised to sum to one.

    Attributes whose group carries zero total weight (no AFDs touch
    them) fall back to their positional factor alone so the final
    normalisation never divides by zero and later relaxation positions
    still dominate earlier ones.
    """
    deciding_total = sum(decides_weight.get(n, 0.0) for n in deciding_set)
    dependent_total = sum(
        weight
        for name, weight in depends_weight.items()
        if name not in deciding_set
    )

    raw: dict[str, float] = {}
    for index, name in enumerate(relaxation_order, start=1):
        positional = index / n_attributes
        if name in deciding_set:
            weight, total = decides_weight.get(name, 0.0), deciding_total
        else:
            weight, total = depends_weight.get(name, 0.0), dependent_total
        raw[name] = positional * (weight / total) if total > 0 else positional

    grand_total = sum(raw.values())
    if grand_total <= 0:
        uniform = 1.0 / len(relaxation_order)
        return {name: uniform for name in relaxation_order}
    return {name: value / grand_total for name, value in raw.items()}
