"""Tunable settings of the AIMQ system.

Algorithm 1's footnote says the similarity threshold ``T_sim`` and the
answer count ``k`` "are tuned by the system designers"; this module is
where the designers tune them.  The defaults follow the paper's
experiments: ``T_sim`` sweeps start at 0.5, user-study answers are
top-10, the dependency-mining error threshold is small, and relaxation
is capped so pathological queries terminate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.afd.tane import TaneConfig
from repro.simmining.estimator import SimilarityMinerConfig

__all__ = ["AIMQSettings"]


@dataclass(frozen=True)
class AIMQSettings:
    """End-to-end configuration for building and querying AIMQ.

    Parameters
    ----------
    similarity_threshold:
        ``T_sim``: tuples below this query-tuple similarity are dropped
        from the extended set (Algorithm 1, step 7).
    top_k:
        Number of ranked answers returned to the user.
    base_set_cap:
        At most this many base-set tuples are expanded by relaxation;
        a huge base set means the precise query was already satisfiable
        and needs little help.
    target_per_base_tuple:
        Relaxation stops for a base tuple once this many tuples above
        ``T_sim`` have been gathered for it (the Figure 6/7 experiments
        use 20).
    max_relaxation_level:
        Largest number of attributes relaxed simultaneously.
    max_extracted_per_base_tuple:
        Hard cap on tuples pulled per base tuple, so RandomRelax-style
        strategies cannot scan the whole source on every query.
    numeric_band_fraction:
        Width (as a fraction of the query value) of the ``between``
        band used when a numeric "like" constraint must be widened to
        obtain a non-empty base set.
    numeric_similarity_mode:
        ``"relative"`` (the paper's ``1 − |q−t|/|q|``) or ``"range"``
        (extent-scaled L1, the Lp alternative §5 alludes to).
    importance_smoothing:
        Blend factor λ between the mined importance weights and the
        uniform distribution: sparse samples can leave attributes with
        exactly zero mined weight, and similarity should never ignore
        a column outright.  Zero disables smoothing (pure Algorithm 2
        weights).
    tuple_query_numeric_band:
        Band (fraction of the value) used when base-set tuples are
        turned into selection queries: numeric attributes are bound
        with ``between ±band`` rather than exact equality, because
        continuous values almost never repeat exactly.  Zero restores
        strict equality binding.
    indexed_ranking:
        When True, candidate rows are scored through the
        early-terminating :class:`~repro.core.similarity.BoundedScorer`:
        rows whose score upper bound (per-term caps from the mined
        neighbour index) provably cannot clear
        ``similarity_threshold`` are dropped without full scoring.
        Kept answers are bit-identical to the plain path; the bound is
        sharpest when the model was mined with
        ``simmining.index_topk=True``.  Automatically bypassed while
        observability is recording the score histogram (which needs
        every score).
    tane:
        Dependency-miner configuration (``T_err`` lives here).  The
        default discretises numeric attributes into 8 equal-width bins
        before partitioning: raw continuous columns make every
        containing set a near-perfect key, which drowns the dependency
        structure Algorithm 2 needs (the paper's own listings carry
        coarse values like "Price=15k", i.e. pre-binned data).
    simmining:
        Similarity-miner configuration.
    """

    similarity_threshold: float = 0.5
    top_k: int = 10
    base_set_cap: int = 100
    target_per_base_tuple: int = 20
    max_relaxation_level: int = 2
    max_extracted_per_base_tuple: int = 2000
    numeric_band_fraction: float = 0.1
    importance_smoothing: float = 0.3
    numeric_similarity_mode: str = "relative"
    tuple_query_numeric_band: float = 0.1
    indexed_ranking: bool = False
    tane: TaneConfig = field(
        default_factory=lambda: TaneConfig(
            numeric_bins=8, key_error_threshold=0.45
        )
    )
    simmining: SimilarityMinerConfig = field(default_factory=SimilarityMinerConfig)

    def __post_init__(self) -> None:
        if not 0.0 < self.similarity_threshold < 1.0:
            raise ValueError("similarity_threshold must be in (0, 1)")
        if self.top_k < 1:
            raise ValueError("top_k must be at least 1")
        if self.base_set_cap < 1:
            raise ValueError("base_set_cap must be at least 1")
        if self.target_per_base_tuple < 1:
            raise ValueError("target_per_base_tuple must be at least 1")
        if self.max_relaxation_level < 1:
            raise ValueError("max_relaxation_level must be at least 1")
        if self.max_extracted_per_base_tuple < 1:
            raise ValueError("max_extracted_per_base_tuple must be at least 1")
        if not 0.0 < self.numeric_band_fraction <= 1.0:
            raise ValueError("numeric_band_fraction must be in (0, 1]")
        if not 0.0 <= self.tuple_query_numeric_band <= 1.0:
            raise ValueError("tuple_query_numeric_band must be in [0, 1]")
        if not 0.0 <= self.importance_smoothing <= 1.0:
            raise ValueError("importance_smoothing must be in [0, 1]")
        if self.numeric_similarity_mode not in ("relative", "range"):
            raise ValueError(
                "numeric_similarity_mode must be 'relative' or 'range'"
            )
