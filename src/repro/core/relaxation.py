"""Query relaxation strategies: GuidedRelax and RandomRelax (paper §6.1).

Every tuple of the base set is treated as a fully bound selection query;
relaxing it means dropping the bindings of some attribute subset and
asking the source for the matching tuples.  The order in which subsets
are dropped is the whole game:

* :class:`GuidedRelax` follows the AFD-derived attribute ordering
  (Algorithm 2): least-important attribute first, and multi-attribute
  subsets in the greedy order the paper illustrates —
  for 1-attribute order ``{a1, a3, a4, a2}`` the 2-attribute order is
  ``{a1a3, a1a4, a1a2, a3a4, a3a2, a4a2}`` (combinations enumerated
  lexicographically by single-attribute position).
* :class:`RandomRelax` "mimics the random process by which users would
  relax queries": a seeded random permutation plays the role of the
  mined order, and subsets at each level are shuffled.

Both yield :class:`RelaxationStep` objects lazily, so the engine can
stop as soon as it has gathered enough similar tuples.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from itertools import combinations
from typing import Iterator, Mapping, Sequence

from repro.core.attribute_order import AttributeOrdering
from repro.db import Between, Eq, Predicate, RelationSchema, SelectionQuery

__all__ = [
    "RelaxationStep",
    "tuple_as_query",
    "ordered_subsets",
    "GuidedRelax",
    "RandomRelax",
]


@dataclass(frozen=True)
class RelaxationStep:
    """One relaxed query: which attributes were un-bound, at which level."""

    query: SelectionQuery
    relaxed_attributes: tuple[str, ...]
    level: int

    def describe(self) -> str:
        dropped = ", ".join(self.relaxed_attributes)
        return f"level {self.level}: drop {{{dropped}}} → {self.query.describe()}"


def tuple_as_query(
    row: Sequence[object],
    schema: RelationSchema,
    numeric_band: float = 0.0,
) -> SelectionQuery:
    """Turn a base-set tuple into a fully bound selection query.

    Null values produce no predicate (a form cannot ask for them), so
    the query binds every non-null attribute of the tuple.

    ``numeric_band`` > 0 binds numeric attributes with a ``between``
    window of ± that fraction of the tuple's value instead of exact
    equality.  Continuous attributes make exact re-matches vanishingly
    rare, so a small band is what lets relaxation find *similar* —
    rather than byte-identical — numeric neighbours; the ranking step
    still scores the real distances.
    """
    if numeric_band < 0:
        raise ValueError("numeric_band cannot be negative")
    predicates: list[Predicate] = []
    for attribute, value in zip(schema.attributes, row):
        if value is None:
            continue
        if (
            numeric_band > 0
            and attribute.is_numeric
            and isinstance(value, (int, float))
            and not isinstance(value, bool)
        ):
            width = abs(value) * numeric_band or numeric_band
            predicates.append(
                Between(attribute.name, value - width, value + width)
            )
        else:
            predicates.append(Eq(attribute.name, value))
    return SelectionQuery(tuple(predicates))


def ordered_subsets(
    order: Sequence[str], level: int
) -> Iterator[tuple[str, ...]]:
    """Size-``level`` subsets of ``order`` in the paper's greedy order.

    Combinations are enumerated lexicographically over positions in the
    single-attribute order, which reproduces the worked example in §4.
    """
    yield from combinations(order, level)


class _RelaxerBase:
    """Shared machinery: expand a bound query level by level."""

    def _single_attribute_order(
        self, bound_attributes: tuple[str, ...]
    ) -> list[str]:
        raise NotImplementedError

    def _level_subsets(
        self, order: list[str], level: int
    ) -> Iterator[tuple[str, ...]]:
        return ordered_subsets(order, level)

    def relaxation_steps(
        self, query: SelectionQuery, max_level: int
    ) -> Iterator[RelaxationStep]:
        """Lazily yield relaxations of ``query``, shallowest level first.

        At least one attribute always stays bound — dropping everything
        would degenerate into a full-table fetch, which no relaxation
        strategy should ever issue.
        """
        bound = query.bound_attributes
        if len(bound) <= 1:
            return
        order = self._single_attribute_order(bound)
        deepest = min(max_level, len(bound) - 1)
        for level in range(1, deepest + 1):
            for subset in self._level_subsets(order, level):
                yield RelaxationStep(
                    query=query.without_attributes(subset),
                    relaxed_attributes=subset,
                    level=level,
                )


class GuidedRelax(_RelaxerBase):
    """AFD-guided relaxation (the paper's contribution)."""

    def __init__(self, ordering: AttributeOrdering) -> None:
        self.ordering = ordering

    def _single_attribute_order(
        self, bound_attributes: tuple[str, ...]
    ) -> list[str]:
        """Mined relaxation order restricted to the bound attributes.

        Attributes the miner never saw (not in the ordering) are deemed
        least important and relax first, in query order.
        """
        bound = set(bound_attributes)
        known = [
            name for name in self.ordering.relaxation_order if name in bound
        ]
        unknown = [
            name for name in bound_attributes
            if name not in self.ordering.relaxation_order
        ]
        return unknown + known


class RandomRelax(_RelaxerBase):
    """Arbitrary-order relaxation baseline.

    Models a user "arbitrarily picking attributes to relax" (§6.1):
    the candidate attribute subsets — all sizes up to the level cap —
    are tried in one globally shuffled order.  Unlike GuidedRelax the
    baseline has no reason to prefer narrow relaxations over broad
    ones, which is precisely why it extracts "a large number of tuples
    with low relevance" (§1).  A seeded RNG keeps runs reproducible.
    """

    def __init__(self, rng: random.Random | None = None, seed: int = 0) -> None:
        self._rng = rng if rng is not None else random.Random(seed)

    def _single_attribute_order(
        self, bound_attributes: tuple[str, ...]
    ) -> list[str]:
        order = list(bound_attributes)
        self._rng.shuffle(order)
        return order

    def relaxation_steps(
        self, query: SelectionQuery, max_level: int
    ) -> Iterator[RelaxationStep]:
        bound = query.bound_attributes
        if len(bound) <= 1:
            return
        order = self._single_attribute_order(bound)
        deepest = min(max_level, len(bound) - 1)
        subsets: list[tuple[str, ...]] = []
        for level in range(1, deepest + 1):
            subsets.extend(ordered_subsets(order, level))
        self._rng.shuffle(subsets)
        for subset in subsets:
            yield RelaxationStep(
                query=query.without_attributes(subset),
                relaxed_attributes=subset,
                level=len(subset),
            )


def importance_of_subset(
    ordering: AttributeOrdering, subset: Mapping[str, object] | Sequence[str]
) -> float:
    """Total mined importance of an attribute subset.

    Convenience for experiments that sanity-check GuidedRelax: the
    importance dropped at each successive step should be non-decreasing.
    """
    names = subset.keys() if isinstance(subset, Mapping) else subset
    return sum(ordering.weight(name) for name in names)
