"""Offline build pipeline: probe → mine dependencies → mine similarities.

Mirrors the AIMQ architecture (paper Figure 1): the Data Collector
probes the autonomous source, the Dependency Miner derives the attribute
ordering, and the Similarity Miner — reusing the importance weights —
estimates categorical value similarities.  The resulting
:class:`AIMQModel` bundles everything the online engine needs, plus the
wall-clock timing breakdown that Table 2 reports.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.afd.model import DependencyModel
from repro.afd.tane import TaneMiner
from repro.core.attribute_order import AttributeOrdering, compute_attribute_ordering
from repro.core.config import AIMQSettings
from repro.core.engine import AIMQEngine
from repro.core.plan import PlannerConfig
from repro.core.relaxation import RandomRelax, _RelaxerBase
from repro.db import AutonomousWebDatabase, Table
from repro.obs.runtime import OBS, timed_phase
from repro.resilience import Clock, ResiliencePolicy
from repro.sampling.collector import CollectionReport, collect_sample
from repro.simmining.estimator import SimilarityModel, ValueSimilarityMiner

__all__ = ["BuildTimings", "AIMQModel", "build_model", "build_model_from_sample"]


@dataclass
class BuildTimings:
    """Seconds spent in each offline phase (Table 2's AIMQ rows)."""

    probing_seconds: float = 0.0
    dependency_mining_seconds: float = 0.0
    supertuple_seconds: float = 0.0
    similarity_estimation_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return (
            self.probing_seconds
            + self.dependency_mining_seconds
            + self.supertuple_seconds
            + self.similarity_estimation_seconds
        )


@dataclass
class AIMQModel:
    """Everything the online engine needs, mined from one sample."""

    sample: Table
    dependencies: DependencyModel
    ordering: AttributeOrdering
    value_similarity: SimilarityModel
    settings: AIMQSettings
    timings: BuildTimings = field(default_factory=BuildTimings)
    collection_report: CollectionReport | None = None
    numeric_extents: dict[str, tuple[float, float]] = field(default_factory=dict)

    def engine(
        self,
        webdb: AutonomousWebDatabase,
        strategy: _RelaxerBase | None = None,
        resilience: "ResiliencePolicy | None" = None,
        clock: "Clock | None" = None,
        planner: "PlannerConfig | None" = None,
    ) -> AIMQEngine:
        """Online engine over ``webdb`` (GuidedRelax unless overridden).

        Passing ``resilience`` wraps the facade in
        :class:`~repro.resilience.ResilientWebDatabase`, giving every
        probe of this engine retry/breaker/deadline protection.
        Passing ``planner`` opts the engine into the semantic probe
        planner (:mod:`repro.core.plan`): batched frontier dispatch
        plus containment-based probe reuse, bit-identical answers.
        """
        return AIMQEngine(
            webdb=webdb,
            ordering=self.ordering,
            value_similarity=self.value_similarity,
            settings=self.settings,
            strategy=strategy,
            numeric_extents=self.numeric_extents,
            resilience=resilience,
            clock=clock,
            planner=planner,
        )

    def random_engine(
        self, webdb: AutonomousWebDatabase, seed: int = 0
    ) -> AIMQEngine:
        """Baseline engine using RandomRelax (paper §6.1)."""
        return self.engine(webdb, strategy=RandomRelax(seed=seed))


def build_model_from_sample(
    sample: Table,
    settings: AIMQSettings | None = None,
    key_criterion: str = "support",
) -> AIMQModel:
    """Mine all models from an already collected sample table."""
    settings = settings or AIMQSettings()
    timings = BuildTimings()

    # Phase durations come from span-backed timers: when observability
    # is enabled each phase is also a span (and a sample in the
    # ``repro_core_pipeline_phase_seconds`` histogram), so BuildTimings
    # and the trace report the same numbers by construction.
    with timed_phase(
        "pipeline.dependency_mining",
        histogram="repro_core_pipeline_phase_seconds",
        help_text="Wall-clock seconds per offline pipeline phase.",
        labels={"phase": "dependency_mining"},
    ) as mining_phase:
        dependencies = TaneMiner(settings.tane).mine(sample)
    timings.dependency_mining_seconds = mining_phase.elapsed_seconds

    ordering = compute_attribute_ordering(
        sample.schema, dependencies, key_criterion=key_criterion
    ).smoothed(settings.importance_smoothing)

    miner = ValueSimilarityMiner(
        config=settings.simmining,
        importance_weights=ordering.importance,
    )
    value_similarity = miner.mine(sample)
    timings.supertuple_seconds = miner.timings.supertuple_seconds
    timings.similarity_estimation_seconds = miner.timings.estimation_seconds
    if OBS.enabled:
        phases = OBS.registry.histogram(
            "repro_core_pipeline_phase_seconds",
            "Wall-clock seconds per offline pipeline phase.",
            labels=("phase",),
        )
        phases.labels(phase="supertuple").observe(timings.supertuple_seconds)
        phases.labels(phase="similarity_estimation").observe(
            timings.similarity_estimation_seconds
        )

    extents: dict[str, tuple[float, float]] = {}
    for name in sample.schema.numeric_names:
        extent = sample.numeric_extent(name)
        if extent is not None:
            extents[name] = (float(extent[0]), float(extent[1]))

    return AIMQModel(
        sample=sample,
        dependencies=dependencies,
        ordering=ordering,
        value_similarity=value_similarity,
        settings=settings,
        timings=timings,
        numeric_extents=extents,
    )


def build_model(
    webdb: AutonomousWebDatabase,
    sample_size: int,
    rng: random.Random | None = None,
    settings: AIMQSettings | None = None,
    spanning_attribute: str | None = None,
    key_criterion: str = "support",
) -> AIMQModel:
    """Full offline pipeline against an autonomous source.

    Probes the source for a ``sample_size`` random sample, then mines
    dependencies, the attribute ordering and value similarities.
    """
    rng = rng or random.Random(0)
    with OBS.span("pipeline.build_model", sample_size=sample_size):
        with timed_phase(
            "pipeline.probing",
            histogram="repro_core_pipeline_phase_seconds",
            help_text="Wall-clock seconds per offline pipeline phase.",
            labels={"phase": "probing"},
        ) as probing_phase:
            sample, report = collect_sample(
                webdb, sample_size, rng, spanning_attribute=spanning_attribute
            )

        model = build_model_from_sample(
            sample, settings=settings, key_criterion=key_criterion
        )
    model.timings.probing_seconds = probing_phase.elapsed_seconds
    model.collection_report = report
    return model
