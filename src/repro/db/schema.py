"""Relation schemas and attribute typing.

The paper distinguishes exactly two attribute kinds: *categorical*
(Make, Model, Location, ...) and *numerical* (Price, Mileage, ...).
Query relaxation, similarity estimation and supertuple construction all
branch on this distinction, so the schema records it explicitly.

A :class:`RelationSchema` is immutable; tables, queries and mined models
all hold a reference to one and use it to translate attribute names to
tuple positions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.db.errors import SchemaError, TypeMismatchError, UnknownAttributeError

__all__ = ["AttributeKind", "Attribute", "RelationSchema"]


class AttributeKind(enum.Enum):
    """Kind of an attribute, driving similarity and relaxation behaviour."""

    CATEGORICAL = "categorical"
    NUMERIC = "numeric"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Attribute:
    """A named, typed column of a relation.

    Parameters
    ----------
    name:
        Attribute name, unique within its relation.
    kind:
        Whether values are categorical labels or numbers.
    """

    name: str
    kind: AttributeKind

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("attribute name must be non-empty")

    @property
    def is_categorical(self) -> bool:
        return self.kind is AttributeKind.CATEGORICAL

    @property
    def is_numeric(self) -> bool:
        return self.kind is AttributeKind.NUMERIC

    def validate_value(self, value: object) -> None:
        """Raise :class:`TypeMismatchError` if ``value`` does not fit.

        ``None`` is accepted for either kind and models a missing value.
        Booleans are rejected for numeric attributes because they are
        almost always a bug (``True == 1`` would silently join categories
        with numbers).
        """
        if value is None:
            return
        if self.is_numeric:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise TypeMismatchError(
                    f"attribute {self.name!r} is numeric but got "
                    f"{type(value).__name__} value {value!r}"
                )
        else:
            if not isinstance(value, str):
                raise TypeMismatchError(
                    f"attribute {self.name!r} is categorical but got "
                    f"{type(value).__name__} value {value!r}"
                )


@dataclass(frozen=True)
class RelationSchema:
    """An ordered, immutable set of typed attributes.

    >>> schema = RelationSchema(
    ...     "CarDB",
    ...     (
    ...         Attribute("Make", AttributeKind.CATEGORICAL),
    ...         Attribute("Price", AttributeKind.NUMERIC),
    ...     ),
    ... )
    >>> schema.position("Price")
    1
    """

    name: str
    attributes: tuple[Attribute, ...]
    _positions: dict[str, int] = field(
        init=False, repr=False, compare=False, hash=False, default_factory=dict
    )

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("relation name must be non-empty")
        if not self.attributes:
            raise SchemaError(f"relation {self.name!r} needs at least one attribute")
        positions: dict[str, int] = {}
        for index, attribute in enumerate(self.attributes):
            if attribute.name in positions:
                raise SchemaError(
                    f"duplicate attribute {attribute.name!r} in relation "
                    f"{self.name!r}"
                )
            positions[attribute.name] = index
        object.__setattr__(self, "_positions", positions)

    # -- construction helpers -------------------------------------------------

    @classmethod
    def build(
        cls,
        name: str,
        categorical: Sequence[str] = (),
        numeric: Sequence[str] = (),
        order: Sequence[str] | None = None,
    ) -> "RelationSchema":
        """Build a schema from two name lists.

        ``order`` fixes the column order; when omitted, categorical
        attributes come first in the given order, then numeric ones.
        """
        kind_of = {name_: AttributeKind.CATEGORICAL for name_ in categorical}
        for name_ in numeric:
            if name_ in kind_of:
                raise SchemaError(f"attribute {name_!r} listed as both kinds")
            kind_of[name_] = AttributeKind.NUMERIC
        ordering = list(order) if order is not None else list(kind_of)
        if sorted(ordering) != sorted(kind_of):
            raise SchemaError("order must list exactly the declared attributes")
        return cls(name, tuple(Attribute(n, kind_of[n]) for n in ordering))

    # -- lookups --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self.attributes)

    def __contains__(self, attribute_name: object) -> bool:
        return attribute_name in self._positions

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return tuple(attribute.name for attribute in self.attributes)

    def attribute(self, name: str) -> Attribute:
        """Return the attribute called ``name``."""
        try:
            return self.attributes[self._positions[name]]
        except KeyError:
            raise UnknownAttributeError(name, self.name) from None

    def position(self, name: str) -> int:
        """Return the tuple position of attribute ``name``."""
        try:
            return self._positions[name]
        except KeyError:
            raise UnknownAttributeError(name, self.name) from None

    def positions(self, names: Iterable[str]) -> tuple[int, ...]:
        """Return tuple positions for several attribute names at once."""
        return tuple(self.position(name) for name in names)

    @property
    def categorical_names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self.attributes if a.is_categorical)

    @property
    def numeric_names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self.attributes if a.is_numeric)

    @property
    def categorical_positions(self) -> tuple[int, ...]:
        """Tuple positions of the categorical attributes (schema order).

        The columnar store sizes its per-kind column arrays off these,
        so the kind split is computed once per schema, not per row.
        """
        return tuple(
            i for i, a in enumerate(self.attributes) if a.is_categorical
        )

    @property
    def numeric_positions(self) -> tuple[int, ...]:
        """Tuple positions of the numeric attributes (schema order)."""
        return tuple(i for i, a in enumerate(self.attributes) if a.is_numeric)

    # -- row handling ---------------------------------------------------------

    def validate_row(self, row: Sequence[object]) -> tuple[object, ...]:
        """Check arity and per-attribute types; return the row as a tuple."""
        if len(row) != len(self.attributes):
            raise TypeMismatchError(
                f"relation {self.name!r} expects {len(self.attributes)} values, "
                f"got {len(row)}"
            )
        for attribute, value in zip(self.attributes, row):
            attribute.validate_value(value)
        return tuple(row)

    def row_from_mapping(self, mapping: dict[str, object]) -> tuple[object, ...]:
        """Build a positional row from an attribute-name mapping."""
        extra = set(mapping) - set(self._positions)
        if extra:
            raise UnknownAttributeError(sorted(extra)[0], self.name)
        return self.validate_row(
            [mapping.get(attribute.name) for attribute in self.attributes]
        )

    def row_to_mapping(self, row: Sequence[object]) -> dict[str, object]:
        """Render a positional row as an ``{attribute: value}`` dict."""
        return {
            attribute.name: value for attribute, value in zip(self.attributes, row)
        }

    def project(self, names: Sequence[str]) -> "RelationSchema":
        """Return a new schema with only the named attributes (in order)."""
        return RelationSchema(
            self.name, tuple(self.attribute(name) for name in names)
        )
