"""Boolean query execution with simple index selection.

The executor answers conjunctive selection queries over a
:class:`~repro.db.table.Table`.  Planning is deliberately simple and
fully deterministic:

1. among the query's predicates, find those an existing index can serve;
2. pick the one whose candidate set is (estimated) smallest as the
   *driver*;
3. verify every remaining predicate against the driver's candidates.

When no predicate is indexable the executor falls back to a full scan.
An :class:`ExecutionStats` record reports how much work each query did —
the efficiency experiments (paper Figs 6–7) count extracted tuples
through this channel — and, when observability is enabled, the same
work lands in the shared metrics registry (probe latency histogram,
rows scanned vs returned, truncations).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Iterator

from repro.db.predicates import Eq, IsIn, Predicate
from repro.db.query import SelectionQuery
from repro.db.table import Table
from repro.obs.runtime import OBS

__all__ = ["ExecutionStats", "QueryResult", "Executor"]


@dataclass
class ExecutionStats:
    """Cumulative work counters for one executor."""

    queries_executed: int = 0
    rows_examined: int = 0
    rows_returned: int = 0
    full_scans: int = 0
    index_lookups: int = 0

    def merge(self, other: "ExecutionStats") -> None:
        self.queries_executed += other.queries_executed
        self.rows_examined += other.rows_examined
        self.rows_returned += other.rows_returned
        self.full_scans += other.full_scans
        self.index_lookups += other.index_lookups

    def snapshot(self) -> "ExecutionStats":
        """An independent copy of the current counters."""
        return replace(self)

    def delta(self, since: "ExecutionStats") -> "ExecutionStats":
        """Counters accumulated after the ``since`` snapshot was taken."""
        return ExecutionStats(
            queries_executed=self.queries_executed - since.queries_executed,
            rows_examined=self.rows_examined - since.rows_examined,
            rows_returned=self.rows_returned - since.rows_returned,
            full_scans=self.full_scans - since.full_scans,
            index_lookups=self.index_lookups - since.index_lookups,
        )


@dataclass(frozen=True)
class QueryResult:
    """Result of one selection query: matching row ids and rows.

    ``from_cache`` marks results the facade served from its probe
    cache rather than from the source; payloads are identical either
    way, the flag only drives probe accounting.  ``derived`` marks
    results the semantic planner computed locally by filtering a
    containing query's rows — no probe reached the source at all.

    Rows are always ordered by ascending row id (the canonical result
    order, see :meth:`Executor.execute`), so two results for the same
    query are comparable position by position however they were
    produced.
    """

    query: SelectionQuery
    row_ids: tuple[int, ...]
    rows: tuple[tuple, ...]
    truncated: bool = False
    from_cache: bool = False
    derived: bool = False

    def __len__(self) -> int:
        return len(self.row_ids)

    def __bool__(self) -> bool:
        return bool(self.row_ids)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)


@dataclass
class _Plan:
    driver: Predicate | None
    candidates: list[int] | None
    residual: tuple[Predicate, ...] = field(default_factory=tuple)


class Executor:
    """Executes selection queries over a single table."""

    def __init__(self, table: Table) -> None:
        self.table = table
        self.stats = ExecutionStats()

    # -- planning -------------------------------------------------------------

    def _plan(self, query: SelectionQuery) -> _Plan:
        """Choose the cheapest indexable predicate as the driver."""
        best: tuple[int, Predicate, list[int]] | None = None
        for predicate in query.predicates:
            candidates = self._index_candidates(predicate)
            if candidates is None:
                continue
            if best is None or len(candidates) < best[0]:
                best = (len(candidates), predicate, candidates)
        if best is None:
            return _Plan(driver=None, candidates=None, residual=query.predicates)
        _, driver, candidates = best
        residual = tuple(p for p in query.predicates if p is not driver)
        return _Plan(driver=driver, candidates=candidates, residual=residual)

    def _index_candidates(self, predicate: Predicate) -> list[int] | None:
        """Exact candidate row ids from an index, or None if unservable."""
        if isinstance(predicate, (Eq, IsIn)):
            hash_index = self.table.hash_index(predicate.attribute)
            if hash_index is not None:
                return hash_index.candidates(predicate)
        sorted_index = self.table.sorted_index(predicate.attribute)
        if sorted_index is not None and sorted_index.serves(predicate):
            return sorted_index.candidates(predicate)
        return None

    # -- execution ------------------------------------------------------------

    def execute(
        self,
        query: SelectionQuery,
        limit: int | None = None,
        offset: int = 0,
    ) -> QueryResult:
        """Run ``query`` and return matching rows (optionally paged).

        ``limit``/``offset`` model a Web form's result pages: skip the
        first ``offset`` matches, return at most ``limit``.  The result
        is flagged ``truncated`` when further matches exist beyond the
        returned window.

        Results come back in *canonical order*: ascending row id,
        whatever plan served the query.  Index drivers are sorted into
        that order before the verify loop, so a paged window always
        means "the first N matches by row id" — a plan-independent
        contract the semantic planner relies on when it derives one
        query's result from another's.
        """
        if offset < 0:
            raise ValueError("offset cannot be negative")
        query.validate_against(self.table.schema)
        observing = OBS.enabled
        started = time.perf_counter() if observing else 0.0
        self.stats.queries_executed += 1
        plan = self._plan(query)

        matched_ids: list[int] = []
        skipped = 0
        truncated = False
        examined = 0
        schema = self.table.schema

        def consume(row_id: int, row: tuple) -> bool:
            """Track one match; returns True when the window is full."""
            nonlocal skipped, truncated
            if skipped < offset:
                skipped += 1
                return False
            if limit is not None and len(matched_ids) >= limit:
                truncated = True
                return True
            matched_ids.append(row_id)
            return False

        if plan.candidates is None:
            self.stats.full_scans += 1
            for row_id, row in enumerate(self.table):
                examined += 1
                if query.matches(row, schema) and consume(row_id, row):
                    break
        else:
            self.stats.index_lookups += 1
            residual = SelectionQuery(plan.residual)
            for row_id in sorted(plan.candidates):
                examined += 1
                row = self.table.row(row_id)
                if residual.matches(row, schema) and consume(row_id, row):
                    break

        self.stats.rows_examined += examined
        rows = tuple(self.table.row(row_id) for row_id in matched_ids)
        self.stats.rows_returned += len(rows)
        if observing:
            self._record_metrics(
                mode="scan" if plan.candidates is None else "index",
                seconds=time.perf_counter() - started,
                examined=examined,
                returned=len(rows),
                truncated=truncated,
            )
        return QueryResult(
            query=query,
            row_ids=tuple(matched_ids),
            rows=rows,
            truncated=truncated,
        )

    def count(self, query: SelectionQuery) -> int:
        """Number of tuples matching ``query``.

        A true count-only path: no row tuples are materialised and the
        ``rows_returned`` work counter is untouched, so count probes
        never inflate the rows-returned accounting the efficiency
        experiments read.
        """
        query.validate_against(self.table.schema)
        observing = OBS.enabled
        started = time.perf_counter() if observing else 0.0
        self.stats.queries_executed += 1
        plan = self._plan(query)
        schema = self.table.schema
        matches = 0
        examined = 0

        if plan.candidates is None:
            self.stats.full_scans += 1
            for row in self.table:
                examined += 1
                if query.matches(row, schema):
                    matches += 1
        else:
            self.stats.index_lookups += 1
            residual = SelectionQuery(plan.residual)
            for row_id in plan.candidates:
                examined += 1
                if residual.matches(self.table.row(row_id), schema):
                    matches += 1

        self.stats.rows_examined += examined
        if observing:
            self._record_metrics(
                mode="scan" if plan.candidates is None else "index",
                seconds=time.perf_counter() - started,
                examined=examined,
                returned=0,
                truncated=False,
            )
        return matches

    # -- observability --------------------------------------------------------

    def _record_metrics(
        self,
        mode: str,
        seconds: float,
        examined: int,
        returned: int,
        truncated: bool,
    ) -> None:
        registry = OBS.registry
        registry.histogram(
            "repro_db_probe_seconds",
            "Latency of one selection probe against the local substrate.",
            labels=("mode",),
        ).labels(mode=mode).observe(seconds)
        registry.counter(
            "repro_db_rows_examined_total",
            "Rows touched while evaluating selection probes.",
        ).inc(examined)
        if returned:
            registry.counter(
                "repro_db_rows_returned_total",
                "Rows materialised and handed back to callers.",
            ).inc(returned)
        if truncated:
            registry.counter(
                "repro_db_result_truncations_total",
                "Probes whose result window was cut short by a cap.",
            ).inc()
