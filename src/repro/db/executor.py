"""Boolean query execution with simple index selection.

The executor answers conjunctive selection queries over a
:class:`~repro.db.table.Table`.  Planning is deliberately simple and
fully deterministic:

1. among the query's predicates, find those an existing index can serve;
2. pick the one whose candidate set is (estimated) smallest as the
   *driver*;
3. verify every remaining predicate against the driver's candidates.

When no predicate is indexable the executor falls back to a full scan.
On a :class:`~repro.db.table.ColumnarTable` both paths are vectorized:
full scans evaluate one bitmask per conjunct per block (after zone maps
prune blocks that provably hold no match), and index candidate lists
are regrouped into per-block runs so residual predicates can prune and
verify block-at-a-time.  The vectorized layer is exact by construction
(:mod:`repro.db.vectorized`); whenever a query cannot be reproduced
bit-identically it falls back to the per-row path, so results — rows,
order, truncation — never depend on the storage engine.

An :class:`ExecutionStats` record reports how much work each query did —
the efficiency experiments (paper Figs 6–7) count extracted tuples
through this channel — and, when observability is enabled, the same
work lands in the shared metrics registry (probe latency histogram,
rows scanned vs returned, blocks pruned, truncations).  Accounting is
honest: a zone-map-pruned block contributes to ``blocks_pruned`` and
*nothing* to ``rows_examined``, because its values were never touched.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Callable, Iterator

from repro.db.index import block_spans
from repro.db.predicates import Eq, IsIn, Predicate
from repro.db.query import SelectionQuery
from repro.db.table import ColumnarTable, Table
from repro.db.vectorized import CompiledQuery, compile_query
from repro.obs.runtime import OBS

__all__ = ["ExecutionStats", "QueryResult", "Executor"]


@dataclass
class ExecutionStats:
    """Cumulative work counters for one executor.

    ``rows_examined`` counts rows whose values were actually evaluated;
    ``blocks_pruned`` counts blocks zone maps skipped wholesale (their
    rows are deliberately *not* part of ``rows_examined``).
    """

    queries_executed: int = 0
    rows_examined: int = 0
    rows_returned: int = 0
    full_scans: int = 0
    index_lookups: int = 0
    blocks_scanned: int = 0
    blocks_pruned: int = 0

    def merge(self, other: "ExecutionStats") -> None:
        self.queries_executed += other.queries_executed
        self.rows_examined += other.rows_examined
        self.rows_returned += other.rows_returned
        self.full_scans += other.full_scans
        self.index_lookups += other.index_lookups
        self.blocks_scanned += other.blocks_scanned
        self.blocks_pruned += other.blocks_pruned

    def snapshot(self) -> "ExecutionStats":
        """An independent copy of the current counters."""
        return replace(self)

    def delta(self, since: "ExecutionStats") -> "ExecutionStats":
        """Counters accumulated after the ``since`` snapshot was taken."""
        return ExecutionStats(
            queries_executed=self.queries_executed - since.queries_executed,
            rows_examined=self.rows_examined - since.rows_examined,
            rows_returned=self.rows_returned - since.rows_returned,
            full_scans=self.full_scans - since.full_scans,
            index_lookups=self.index_lookups - since.index_lookups,
            blocks_scanned=self.blocks_scanned - since.blocks_scanned,
            blocks_pruned=self.blocks_pruned - since.blocks_pruned,
        )


@dataclass(frozen=True)
class QueryResult:
    """Result of one selection query: matching row ids and rows.

    ``from_cache`` marks results the facade served from its probe
    cache rather than from the source; payloads are identical either
    way, the flag only drives probe accounting.  ``derived`` marks
    results the semantic planner computed locally by filtering a
    containing query's rows — no probe reached the source at all.

    Rows are always ordered by ascending row id (the canonical result
    order, see :meth:`Executor.execute`), so two results for the same
    query are comparable position by position however they were
    produced.
    """

    query: SelectionQuery
    row_ids: tuple[int, ...]
    rows: tuple[tuple, ...]
    truncated: bool = False
    from_cache: bool = False
    derived: bool = False

    def __len__(self) -> int:
        return len(self.row_ids)

    def __bool__(self) -> bool:
        return bool(self.row_ids)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)


@dataclass
class _Plan:
    driver: Predicate | None
    candidates: list[int] | None
    residual: tuple[Predicate, ...] = field(default_factory=tuple)


class Executor:
    """Executes selection queries over a single table."""

    def __init__(self, table: Table) -> None:
        self.table = table
        self.stats = ExecutionStats()

    # -- planning -------------------------------------------------------------

    def _plan(self, query: SelectionQuery) -> _Plan:
        """Choose the cheapest indexable predicate as the driver."""
        best: tuple[int, Predicate, list[int]] | None = None
        for predicate in query.predicates:
            candidates = self._index_candidates(predicate)
            if candidates is None:
                continue
            if best is None or len(candidates) < best[0]:
                best = (len(candidates), predicate, candidates)
        if best is None:
            return _Plan(driver=None, candidates=None, residual=query.predicates)
        _, driver, candidates = best
        residual = tuple(p for p in query.predicates if p is not driver)
        return _Plan(driver=driver, candidates=candidates, residual=residual)

    def _index_candidates(self, predicate: Predicate) -> list[int] | None:
        """Exact candidate row ids from an index, or None if unservable."""
        if isinstance(predicate, (Eq, IsIn)):
            hash_index = self.table.hash_index(predicate.attribute)
            if hash_index is not None and hash_index.serves(predicate):
                return hash_index.candidates(predicate)
        sorted_index = self.table.sorted_index(predicate.attribute)
        if sorted_index is not None and sorted_index.serves(predicate):
            return sorted_index.candidates(predicate)
        return None

    def _compile(self, query: SelectionQuery) -> CompiledQuery | None:
        """Vectorized form of ``query``, when exactly reproducible."""
        if not isinstance(self.table, ColumnarTable):
            return None
        return compile_query(query, self.table.column_store)

    # -- execution ------------------------------------------------------------

    def execute(
        self,
        query: SelectionQuery,
        limit: int | None = None,
        offset: int = 0,
    ) -> QueryResult:
        """Run ``query`` and return matching rows (optionally paged).

        ``limit``/``offset`` model a Web form's result pages: skip the
        first ``offset`` matches, return at most ``limit``.  The result
        is flagged ``truncated`` when further matches exist beyond the
        returned window.

        Results come back in *canonical order*: ascending row id,
        whatever plan served the query.  Index drivers are sorted into
        that order before the verify loop, so a paged window always
        means "the first N matches by row id" — a plan-independent
        contract the semantic planner relies on when it derives one
        query's result from another's.
        """
        if offset < 0:
            raise ValueError("offset cannot be negative")
        query.validate_against(self.table.schema)
        observing = OBS.enabled
        started = time.perf_counter() if observing else 0.0
        self.stats.queries_executed += 1
        plan = self._plan(query)
        compiled = self._compile(query)

        matched_ids: list[int] = []
        skipped = 0
        truncated = False
        examined = 0
        pruned = 0
        schema = self.table.schema

        def consume(row_id: int) -> bool:
            """Track one match; returns True when the window is full."""
            nonlocal skipped, truncated
            if skipped < offset:
                skipped += 1
                return False
            if limit is not None and len(matched_ids) >= limit:
                truncated = True
                return True
            matched_ids.append(row_id)
            return False

        if plan.candidates is None:
            self.stats.full_scans += 1
            if compiled is not None:
                examined, pruned = self._scan_blocks(compiled, consume)
            else:
                for row_id, row in enumerate(self.table):
                    examined += 1
                    if query.matches(row, schema) and consume(row_id):
                        break
        else:
            self.stats.index_lookups += 1
            ordered = sorted(plan.candidates)
            if compiled is not None:
                examined, pruned = self._verify_candidates(
                    compiled, plan, ordered, consume
                )
            else:
                residual = SelectionQuery(plan.residual)
                for row_id in ordered:
                    examined += 1
                    row = self.table.row(row_id)
                    if residual.matches(row, schema) and consume(row_id):
                        break

        self.stats.rows_examined += examined
        rows = tuple(self.table.row(row_id) for row_id in matched_ids)
        self.stats.rows_returned += len(rows)
        if observing:
            self._record_metrics(
                mode="scan" if plan.candidates is None else "index",
                seconds=time.perf_counter() - started,
                examined=examined,
                returned=len(rows),
                truncated=truncated,
                pruned=pruned,
            )
        return QueryResult(
            query=query,
            row_ids=tuple(matched_ids),
            rows=rows,
            truncated=truncated,
        )

    def count(self, query: SelectionQuery) -> int:
        """Number of tuples matching ``query``.

        A true count-only path: no row tuples are materialised and the
        ``rows_returned`` work counter is untouched, so count probes
        never inflate the rows-returned accounting the efficiency
        experiments read.
        """
        query.validate_against(self.table.schema)
        observing = OBS.enabled
        started = time.perf_counter() if observing else 0.0
        self.stats.queries_executed += 1
        plan = self._plan(query)
        compiled = self._compile(query)
        schema = self.table.schema
        matches = 0
        examined = 0
        pruned = 0

        if plan.candidates is None:
            self.stats.full_scans += 1
            if compiled is not None:
                store = compiled.store
                scanned = 0
                for block in range(store.n_blocks()):
                    if compiled.prune_block(block):
                        pruned += 1
                        continue
                    scanned += 1
                    start, stop = store.block_bounds(block)
                    examined += stop - start
                    matches += compiled.block_match_count(start, stop)
                self.stats.blocks_scanned += scanned
                self.stats.blocks_pruned += pruned
            else:
                for row in self.table:
                    examined += 1
                    if query.matches(row, schema):
                        matches += 1
        else:
            self.stats.index_lookups += 1
            if compiled is not None:
                residual_compiled = self._residual_compiled(compiled, plan)
                for row_id in plan.candidates:
                    examined += 1
                    if residual_compiled.matches_at(row_id):
                        matches += 1
            else:
                residual = SelectionQuery(plan.residual)
                for row_id in plan.candidates:
                    examined += 1
                    if residual.matches(self.table.row(row_id), schema):
                        matches += 1

        self.stats.rows_examined += examined
        if observing:
            self._record_metrics(
                mode="scan" if plan.candidates is None else "index",
                seconds=time.perf_counter() - started,
                examined=examined,
                returned=0,
                truncated=False,
                pruned=pruned,
            )
        return matches

    # -- vectorized paths ------------------------------------------------------

    def _scan_blocks(
        self, compiled: CompiledQuery, consume: "Callable[[int], bool]"
    ) -> tuple[int, int]:
        """Full scan, block-at-a-time: zone-prune, then mask, then page.

        Returns ``(rows_examined, blocks_pruned)``.  Matches surface in
        ascending row-id order (blocks ascend, masks are positional), so
        paging semantics are identical to the per-row scan.  On early
        exit the whole current block still counts as examined — its mask
        was fully evaluated.
        """
        examined = 0
        pruned = 0
        scanned = 0
        store = compiled.store
        done = False
        for block in range(store.n_blocks()):
            if compiled.prune_block(block):
                pruned += 1
                continue
            scanned += 1
            start, stop = store.block_bounds(block)
            examined += stop - start
            for row_id in compiled.block_matches(start, stop):
                if consume(row_id):
                    done = True
                    break
            if done:
                break
        self.stats.blocks_scanned += scanned
        self.stats.blocks_pruned += pruned
        return examined, pruned

    def _verify_candidates(
        self,
        compiled: CompiledQuery,
        plan: _Plan,
        ordered: list[int],
        consume: "Callable[[int], bool]",
    ) -> tuple[int, int]:
        """Index path: residual-verify candidates, one block run at a time.

        The sorted candidate list is regrouped into per-block runs
        (:func:`~repro.db.index.block_spans`); residual zone maps can
        then discard a whole run before any candidate row is touched.
        Returns ``(rows_examined, blocks_pruned)`` — pruned runs add
        nothing to ``rows_examined``.
        """
        examined = 0
        pruned = 0
        scanned = 0
        store = compiled.store
        residual_compiled = self._residual_compiled(compiled, plan)
        prunable = bool(residual_compiled.predicates)
        done = False
        for block, start, stop in block_spans(ordered, store.block_rows):
            if prunable and residual_compiled.prune_block(block):
                pruned += 1
                continue
            scanned += 1
            for index in range(start, stop):
                row_id = ordered[index]
                examined += 1
                if residual_compiled.matches_at(row_id) and consume(row_id):
                    done = True
                    break
            if done:
                break
        self.stats.blocks_scanned += scanned
        self.stats.blocks_pruned += pruned
        return examined, pruned

    @staticmethod
    def _residual_compiled(compiled: CompiledQuery, plan: _Plan) -> CompiledQuery:
        """The compiled conjunction minus the plan's driver predicate."""
        return CompiledQuery(
            compiled.store,
            [
                strategy
                for strategy in compiled.predicates
                if strategy.predicate is not plan.driver
            ],
        )

    # -- observability --------------------------------------------------------

    def _record_metrics(
        self,
        mode: str,
        seconds: float,
        examined: int,
        returned: int,
        truncated: bool,
        pruned: int = 0,
    ) -> None:
        registry = OBS.registry
        registry.histogram(
            "repro_db_probe_seconds",
            "Latency of one selection probe against the local substrate.",
            labels=("mode",),
        ).labels(mode=mode).observe(seconds)
        registry.counter(
            "repro_db_rows_examined_total",
            "Rows touched while evaluating selection probes.",
        ).inc(examined)
        if pruned:
            registry.counter(
                "repro_db_blocks_pruned_total",
                "Blocks zone maps skipped before any value was touched.",
            ).inc(pruned)
        if returned:
            registry.counter(
                "repro_db_rows_returned_total",
                "Rows materialised and handed back to callers.",
            ).inc(returned)
        if truncated:
            registry.counter(
                "repro_db_result_truncations_total",
                "Probes whose result window was cut short by a cap.",
            ).inc()
