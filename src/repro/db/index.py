"""Secondary indexes for the in-memory relational engine.

Two index families cover the predicate classes the substrate supports:

* :class:`HashIndex` — value → row ids, serving equality and IN
  predicates in O(1) per value.
* :class:`SortedIndex` — bisectable ``(value, row_id)`` pairs, serving
  range predicates (``<, <=, >, >=, between``) in O(log n + answer).

Both indexes map a single attribute.  They are maintained eagerly by
:class:`repro.db.table.Table` on insert.  Null values are excluded from
indexes (no predicate matches null), matching SQL semantics.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Iterator

from repro.db.predicates import (
    Between,
    Eq,
    Ge,
    Gt,
    IsIn,
    Le,
    Lt,
    Predicate,
)

__all__ = ["HashIndex", "SortedIndex", "block_spans"]


def block_spans(
    sorted_row_ids: list[int], block_rows: int
) -> Iterator[tuple[int, int, int]]:
    """Group ascending row ids into per-block runs.

    Yields ``(block, start, stop)`` triples where
    ``sorted_row_ids[start:stop]`` are exactly the ids falling in
    ``block`` (ids ``[block * block_rows, (block + 1) * block_rows)``).
    This is how index candidate lists are retargeted onto the columnar
    engine's blocks: the executor zone-prunes one run at a time before
    verifying residual predicates per candidate.
    """
    n = len(sorted_row_ids)
    start = 0
    while start < n:
        block = sorted_row_ids[start] // block_rows
        limit = (block + 1) * block_rows
        stop = bisect.bisect_left(sorted_row_ids, limit, lo=start)
        yield (block, start, stop)
        start = stop


class HashIndex:
    """Exact-match index: attribute value → sorted list of row ids."""

    def __init__(self, attribute: str) -> None:
        self.attribute = attribute
        self._buckets: dict[object, list[int]] = {}

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())

    def add(self, value: object, row_id: int) -> None:
        if value is None:
            return
        self._buckets.setdefault(value, []).append(row_id)

    def lookup(self, value: object) -> list[int]:
        """Row ids whose attribute equals ``value`` (insertion order)."""
        return list(self._buckets.get(value, ()))

    def lookup_many(self, values: Iterable[object]) -> list[int]:
        """Union of lookups, deduplicated, in ascending row-id order."""
        merged: set[int] = set()
        for value in values:
            merged.update(self._buckets.get(value, ()))
        return sorted(merged)

    def distinct_values(self) -> list[object]:
        """All indexed values (arbitrary but deterministic order)."""
        return list(self._buckets)

    def value_counts(self) -> dict[object, int]:
        """Histogram of indexed values; used by form-option discovery."""
        return {value: len(rows) for value, rows in self._buckets.items()}

    def serves(self, predicate: Predicate) -> bool:
        """True when this index can answer ``predicate`` *exactly*.

        Null values are not indexed, so predicates a null cell can
        satisfy — ``Eq(None)``, ``IsIn`` with a None member — must go
        to the scan path or their matches would silently vanish.
        """
        if predicate.attribute != self.attribute:
            return False
        if isinstance(predicate, Eq):
            return predicate.value is not None
        if isinstance(predicate, IsIn):
            return None not in predicate.values
        return False

    def candidates(self, predicate: Predicate) -> list[int]:
        """Row ids possibly matching ``predicate`` (exact for Eq/IsIn)."""
        if isinstance(predicate, Eq):
            return self.lookup(predicate.value)
        if isinstance(predicate, IsIn):
            return self.lookup_many(predicate.values)
        raise TypeError(f"HashIndex cannot serve {predicate!r}")


class SortedIndex:
    """Order index: bisect over ``(value, row_id)`` pairs.

    The index is built lazily on first read and invalidated on writes,
    so bulk loading stays O(n) and the sort cost is paid once.
    """

    def __init__(self, attribute: str) -> None:
        self.attribute = attribute
        self._pending: list[tuple[object, int]] = []
        self._keys: list[object] = []
        self._row_ids: list[int] = []
        self._dirty = False

    def __len__(self) -> int:
        self._rebuild_if_needed()
        return len(self._keys)

    def add(self, value: object, row_id: int) -> None:
        if value is None:
            return
        self._pending.append((value, row_id))
        self._dirty = True

    def _rebuild_if_needed(self) -> None:
        if not self._dirty:
            return
        pairs = sorted(
            zip(self._keys, self._row_ids), key=lambda pair: pair[0]
        )
        pairs.extend(sorted(self._pending, key=lambda pair: pair[0]))
        pairs.sort(key=lambda pair: pair[0])
        self._keys = [key for key, _ in pairs]
        self._row_ids = [row_id for _, row_id in pairs]
        self._pending.clear()
        self._dirty = False

    def range(
        self,
        low: object = None,
        high: object = None,
        inclusive_low: bool = True,
        inclusive_high: bool = True,
    ) -> Iterator[int]:
        """Row ids with values inside the given (optionally open) range."""
        self._rebuild_if_needed()
        if low is None:
            start = 0
        elif inclusive_low:
            start = bisect.bisect_left(self._keys, low)
        else:
            start = bisect.bisect_right(self._keys, low)
        if high is None:
            stop = len(self._keys)
        elif inclusive_high:
            stop = bisect.bisect_right(self._keys, high)
        else:
            stop = bisect.bisect_left(self._keys, high)
        return iter(self._row_ids[start:stop])

    def min_value(self) -> object | None:
        self._rebuild_if_needed()
        return self._keys[0] if self._keys else None

    def max_value(self) -> object | None:
        self._rebuild_if_needed()
        return self._keys[-1] if self._keys else None

    def serves(self, predicate: Predicate) -> bool:
        """True when this index can answer ``predicate`` *exactly*.

        A None comparison value disqualifies the index: nulls are not
        indexed (``Eq(None)`` matches rows the index cannot see), and a
        None range bound makes the scan path raise ``TypeError`` — the
        index must not silently answer what the engine would refuse.
        (``Between`` rejects None bounds at construction.)
        """
        if predicate.attribute != self.attribute:
            return False
        if isinstance(predicate, Eq):
            return predicate.value is not None
        if isinstance(predicate, (Lt, Le, Gt, Ge)):
            return predicate.bound is not None
        return isinstance(predicate, Between)

    def candidates(self, predicate: Predicate) -> list[int]:
        """Row ids matching a range (or equality) predicate exactly."""
        if isinstance(predicate, Eq):
            return list(self.range(predicate.value, predicate.value))
        if isinstance(predicate, Lt):
            return list(self.range(high=predicate.bound, inclusive_high=False))
        if isinstance(predicate, Le):
            return list(self.range(high=predicate.bound))
        if isinstance(predicate, Gt):
            return list(self.range(low=predicate.bound, inclusive_low=False))
        if isinstance(predicate, Ge):
            return list(self.range(low=predicate.bound))
        if isinstance(predicate, Between):
            return list(self.range(predicate.low, predicate.high))
        raise TypeError(f"SortedIndex cannot serve {predicate!r}")
