"""Precise selection predicates for the boolean query model.

The autonomous web database (paper §3.1, constraint 1) supports only the
boolean query processing model: a tuple either satisfies a query or it
does not.  These predicate classes are the atoms of that model.  Each
one evaluates against a single attribute value and reports whether an
equality / range index can serve it.

The imprecise ``like`` constraint deliberately does *not* live here —
it belongs to the AIMQ layer (:mod:`repro.core.query`) which rewrites it
into precise predicates before touching the database.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.db.errors import QueryError

__all__ = [
    "Predicate",
    "Eq",
    "Ne",
    "Lt",
    "Le",
    "Gt",
    "Ge",
    "Between",
    "IsIn",
    "parse_op",
]


@dataclass(frozen=True)
class Predicate:
    """Base class: a boolean condition over one attribute."""

    attribute: str

    def matches(self, value: object) -> bool:
        """Return True when ``value`` satisfies the predicate."""
        raise NotImplementedError

    def canonical_form(self) -> tuple[object, ...]:
        """Hashable, order-insensitive identity of this predicate.

        Two predicates describing the same form constraint — regardless
        of construction order or ``IsIn`` value order — share one
        canonical form.  The probe cache keys on it and the semantic
        planner uses set-inclusion over canonical forms to decide query
        containment, so the form must be *exact*: no two semantically
        different predicates may collide.
        """
        return (self.attribute, type(self).__name__, repr(self))

    @property
    def is_equality(self) -> bool:
        """True when the predicate pins the attribute to one value."""
        return False

    @property
    def is_range(self) -> bool:
        """True when a sorted index can enumerate matching values."""
        return False

    def describe(self) -> str:
        """Human-readable rendering used in logs and query repr."""
        raise NotImplementedError


def _comparable(value: object) -> bool:
    return value is not None


@dataclass(frozen=True)
class Eq(Predicate):
    """``attribute = value``."""

    value: object

    def matches(self, value: object) -> bool:
        return value == self.value

    def canonical_form(self) -> tuple[object, ...]:
        return (self.attribute, "eq", self.value)

    @property
    def is_equality(self) -> bool:
        return True

    def describe(self) -> str:
        return f"{self.attribute} = {self.value!r}"


@dataclass(frozen=True)
class Ne(Predicate):
    """``attribute != value`` (nulls never match)."""

    value: object

    def matches(self, value: object) -> bool:
        return value is not None and value != self.value

    def canonical_form(self) -> tuple[object, ...]:
        return (self.attribute, "ne", self.value)

    def describe(self) -> str:
        return f"{self.attribute} != {self.value!r}"


@dataclass(frozen=True)
class Lt(Predicate):
    """``attribute < bound``."""

    bound: object

    def matches(self, value: object) -> bool:
        return _comparable(value) and value < self.bound  # type: ignore[operator]

    def canonical_form(self) -> tuple[object, ...]:
        return (self.attribute, "lt", self.bound)

    @property
    def is_range(self) -> bool:
        return True

    def describe(self) -> str:
        return f"{self.attribute} < {self.bound!r}"


@dataclass(frozen=True)
class Le(Predicate):
    """``attribute <= bound``."""

    bound: object

    def matches(self, value: object) -> bool:
        return _comparable(value) and value <= self.bound  # type: ignore[operator]

    def canonical_form(self) -> tuple[object, ...]:
        return (self.attribute, "le", self.bound)

    @property
    def is_range(self) -> bool:
        return True

    def describe(self) -> str:
        return f"{self.attribute} <= {self.bound!r}"


@dataclass(frozen=True)
class Gt(Predicate):
    """``attribute > bound``."""

    bound: object

    def matches(self, value: object) -> bool:
        return _comparable(value) and value > self.bound  # type: ignore[operator]

    def canonical_form(self) -> tuple[object, ...]:
        return (self.attribute, "gt", self.bound)

    @property
    def is_range(self) -> bool:
        return True

    def describe(self) -> str:
        return f"{self.attribute} > {self.bound!r}"


@dataclass(frozen=True)
class Ge(Predicate):
    """``attribute >= bound``."""

    bound: object

    def matches(self, value: object) -> bool:
        return _comparable(value) and value >= self.bound  # type: ignore[operator]

    def canonical_form(self) -> tuple[object, ...]:
        return (self.attribute, "ge", self.bound)

    @property
    def is_range(self) -> bool:
        return True

    def describe(self) -> str:
        return f"{self.attribute} >= {self.bound!r}"


@dataclass(frozen=True)
class Between(Predicate):
    """``low <= attribute <= high`` (inclusive on both ends)."""

    low: object
    high: object

    def __post_init__(self) -> None:
        try:
            inverted = self.low > self.high  # type: ignore[operator]
        except TypeError as exc:
            raise QueryError(
                f"between bounds {self.low!r}..{self.high!r} are not comparable"
            ) from exc
        if inverted:
            raise QueryError(
                f"between bounds inverted: {self.low!r} > {self.high!r}"
            )

    def matches(self, value: object) -> bool:
        return (
            _comparable(value)
            and self.low <= value <= self.high  # type: ignore[operator]
        )

    def canonical_form(self) -> tuple[object, ...]:
        return (self.attribute, "between", self.low, self.high)

    @property
    def is_range(self) -> bool:
        return True

    def describe(self) -> str:
        return f"{self.attribute} between {self.low!r} and {self.high!r}"


@dataclass(frozen=True)
class IsIn(Predicate):
    """``attribute IN values`` (finite disjunction of equalities)."""

    values: frozenset

    def __init__(self, attribute: str, values: Iterable[object]) -> None:
        object.__setattr__(self, "attribute", attribute)
        object.__setattr__(self, "values", frozenset(values))
        if not self.values:
            raise QueryError(f"IN predicate on {attribute!r} needs at least one value")

    def matches(self, value: object) -> bool:
        return value in self.values

    def canonical_form(self) -> tuple[object, ...]:
        return (self.attribute, "in", tuple(sorted(self.values, key=repr)))

    def describe(self) -> str:
        rendered = ", ".join(repr(v) for v in sorted(self.values, key=repr))
        return f"{self.attribute} in ({rendered})"


_OPS = {
    "=": Eq,
    "==": Eq,
    "!=": Ne,
    "<": Lt,
    "<=": Le,
    ">": Gt,
    ">=": Ge,
}


def parse_op(attribute: str, op: str, value: object) -> Predicate:
    """Build a predicate from an operator string.

    >>> parse_op("Price", "<", 10000).describe()
    "Price < 10000"
    """
    try:
        factory = _OPS[op]
    except KeyError:
        raise QueryError(
            f"unknown operator {op!r} for attribute {attribute!r}"
        ) from None
    return factory(attribute, value)
