"""Autonomous Web database facade.

The paper's setting (§1, footnote 1) is a *non-local autonomous database
accessible only via a Web form interface*.  This facade enforces that
access model on top of the local engine:

* only conjunctive selection queries may be issued (the boolean model);
* the caller never touches rows, indexes or statistics directly;
* the only metadata exposed is what a real form exposes — the schema
  behind the form and, for categorical attributes, the drop-down
  *form options* (distinct values);
* every probe is accounted, and an optional probe budget and per-query
  result cap mimic rate limits and "first N results" pages.

The Data Collector (:mod:`repro.sampling`) and the online Query Engine
(:mod:`repro.core.engine`) both operate exclusively through this facade,
so nothing in AIMQ accidentally depends on local-database privileges.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.db.errors import ProbeLimitExceededError
from repro.db.executor import ExecutionStats, Executor, QueryResult
from repro.db.query import SelectionQuery
from repro.db.schema import RelationSchema
from repro.db.table import Table

__all__ = ["ProbeLog", "AutonomousWebDatabase"]


@dataclass
class ProbeLog:
    """Account of the probing traffic an autonomous source has seen."""

    probes_issued: int = 0
    tuples_returned: int = 0
    empty_results: int = 0

    def record(self, result: QueryResult) -> None:
        self.probes_issued += 1
        self.tuples_returned += len(result)
        if not result:
            self.empty_results += 1

    def reset(self) -> None:
        self.probes_issued = 0
        self.tuples_returned = 0
        self.empty_results = 0


class AutonomousWebDatabase:
    """Form-interface view of a relation hosted by an autonomous source.

    Parameters
    ----------
    table:
        The backing relation instance (hidden from callers).
    result_cap:
        When set, every query returns at most this many tuples — the
        "first N results" page a Web form would serve.
    probe_budget:
        When set, raise :class:`ProbeLimitExceededError` once this many
        probes have been issued (rate limiting).
    """

    def __init__(
        self,
        table: Table,
        result_cap: int | None = None,
        probe_budget: int | None = None,
    ) -> None:
        self._table = table
        self._executor = Executor(table)
        self.result_cap = result_cap
        self.probe_budget = probe_budget
        self.log = ProbeLog()

    # -- metadata a Web form exposes -------------------------------------------

    @property
    def schema(self) -> RelationSchema:
        """The relation schema projected by the form."""
        return self._table.schema

    @property
    def name(self) -> str:
        return self._table.schema.name

    def form_options(self, attribute: str) -> list[object]:
        """Drop-down options for a categorical attribute.

        Web search forms routinely enumerate categorical domains in
        ``<select>`` elements; this is the hook the spanning-query
        prober uses.  Numeric attributes have free-text inputs, so the
        facade refuses to enumerate them.
        """
        if not self.schema.attribute(attribute).is_categorical:
            raise ValueError(
                f"attribute {attribute!r} is numeric; forms expose no option "
                "list for free-text inputs"
            )
        return sorted(self._table.distinct_values(attribute), key=str)

    def cardinality_hint(self) -> int:
        """Advertised result-count of the unconstrained search.

        Many Web sources display "N listings found"; probers use it to
        size samples.  This is the only total the facade reveals.
        """
        return len(self._table)

    # -- the boolean query interface -------------------------------------------

    def query(
        self,
        query: SelectionQuery,
        limit: int | None = None,
        offset: int = 0,
    ) -> QueryResult:
        """Issue one selection probe.

        ``limit`` may further reduce (never exceed) the facade's
        ``result_cap``; ``offset`` requests a later result page, the
        way a Web form's "next page" link does.
        """
        if (
            self.probe_budget is not None
            and self.log.probes_issued >= self.probe_budget
        ):
            raise ProbeLimitExceededError(self.probe_budget)
        effective_limit = self.result_cap
        if limit is not None:
            effective_limit = (
                limit if effective_limit is None else min(limit, effective_limit)
            )
        result = self._executor.execute(query, limit=effective_limit, offset=offset)
        self.log.record(result)
        return result

    def count(self, query: SelectionQuery) -> int:
        """Result-count probe (forms report counts without listing)."""
        return len(self.query(query))

    # -- bookkeeping -----------------------------------------------------------

    @property
    def execution_stats(self) -> ExecutionStats:
        """Engine-side work counters (for experiments, not for AIMQ)."""
        return self._executor.stats

    def reset_accounting(self) -> None:
        """Zero the probe log and engine counters between experiments."""
        self.log.reset()
        self._executor.stats = ExecutionStats()
