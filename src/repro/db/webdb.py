"""Autonomous Web database facade.

The paper's setting (§1, footnote 1) is a *non-local autonomous database
accessible only via a Web form interface*.  This facade enforces that
access model on top of the local engine:

* only conjunctive selection queries may be issued (the boolean model);
* the caller never touches rows, indexes or statistics directly;
* the only metadata exposed is what a real form exposes — the schema
  behind the form and, for categorical attributes, the drop-down
  *form options* (distinct values);
* every probe is accounted, and an optional probe budget and per-query
  result cap mimic rate limits and "first N results" pages.

The Data Collector (:mod:`repro.sampling`) and the online Query Engine
(:mod:`repro.core.engine`) both operate exclusively through this facade,
so nothing in AIMQ accidentally depends on local-database privileges.

Accounting comes in two layers: the cumulative :class:`ProbeLog` (plus
nestable :meth:`AutonomousWebDatabase.accounting_scope` windows over
it), and — when observability is enabled — labelled counters in the
shared metrics registry, including probe counts by predicate shape.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Iterator, Protocol

from repro.db.errors import ProbeLimitExceededError
from repro.db.executor import ExecutionStats, Executor, QueryResult
from repro.db.faults import FaultDecision, FaultPolicy
from repro.db.probe_cache import ProbeCache
from repro.db.query import SelectionQuery
from repro.db.schema import RelationSchema
from repro.db.table import Table
from repro.obs.runtime import OBS

__all__ = [
    "ProbeLog",
    "AccountedSource",
    "AccountingWindow",
    "AutonomousWebDatabase",
]


@dataclass
class ProbeLog:
    """Account of the probing traffic an autonomous source has seen.

    ``count_probes`` tracks result-count probes separately: a count
    probe costs the source one form submission (and one unit of probe
    budget) but returns no tuples, so it must never inflate
    ``tuples_returned``.

    ``cache_hits`` counts lookups served from the facade's probe cache.
    A hit never reaches the source — no form submission, no budget
    charge — so it is *not* a probe and leaves every other counter
    untouched.  Figures 6–7 read ``probes_issued``, which therefore
    keeps its paper semantics whether the cache is on or off.
    """

    probes_issued: int = 0
    tuples_returned: int = 0
    empty_results: int = 0
    count_probes: int = 0
    cache_hits: int = 0

    def record(self, result: QueryResult) -> None:
        self.probes_issued += 1
        self.tuples_returned += len(result)
        if not result:
            self.empty_results += 1

    def record_count(self, matches: int) -> None:
        """Account one count-only probe (no tuples were returned)."""
        self.probes_issued += 1
        self.count_probes += 1
        if matches == 0:
            self.empty_results += 1

    def record_cache_hit(self) -> None:
        """Account one lookup answered by the probe cache."""
        self.cache_hits += 1

    def snapshot(self) -> "ProbeLog":
        """An independent copy of the current counters."""
        return replace(self)

    def delta(self, since: "ProbeLog") -> "ProbeLog":
        """Traffic recorded after the ``since`` snapshot was taken."""
        return ProbeLog(
            probes_issued=self.probes_issued - since.probes_issued,
            tuples_returned=self.tuples_returned - since.tuples_returned,
            empty_results=self.empty_results - since.empty_results,
            count_probes=self.count_probes - since.count_probes,
            cache_hits=self.cache_hits - since.cache_hits,
        )

    def reset(self) -> None:
        self.probes_issued = 0
        self.tuples_returned = 0
        self.empty_results = 0
        self.count_probes = 0
        self.cache_hits = 0


class AccountedSource(Protocol):
    """Anything with a probe log and engine counters to window over.

    Satisfied by :class:`AutonomousWebDatabase` and by the sharded
    facade (:class:`~repro.db.sharded.ShardedWebDatabase`), whose
    ``execution_stats`` roll up per-shard engine work.
    """

    log: ProbeLog

    @property
    def execution_stats(self) -> ExecutionStats: ...


class AccountingWindow:
    """Delta view over a webdb's accounting since the window opened.

    Windows never mutate the underlying counters, so they nest freely
    and leave the global totals intact — unlike ``reset_accounting``,
    which zeroes everything for every observer at once.
    """

    def __init__(
        self, webdb: AccountedSource, log_start: ProbeLog,
        stats_start: ExecutionStats,
    ) -> None:
        self._webdb = webdb
        self._log_start = log_start
        self._stats_start = stats_start
        self._frozen_log: ProbeLog | None = None
        self._frozen_stats: ExecutionStats | None = None

    @property
    def log(self) -> ProbeLog:
        """Probe traffic inside the window (live until the window closes)."""
        if self._frozen_log is not None:
            return self._frozen_log
        return self._webdb.log.delta(self._log_start)

    @property
    def execution_stats(self) -> ExecutionStats:
        """Engine-side work inside the window."""
        if self._frozen_stats is not None:
            return self._frozen_stats
        return self._webdb.execution_stats.delta(self._stats_start)

    @property
    def probes_issued(self) -> int:
        return self.log.probes_issued

    @property
    def tuples_returned(self) -> int:
        return self.log.tuples_returned

    @property
    def empty_results(self) -> int:
        return self.log.empty_results

    @property
    def count_probes(self) -> int:
        return self.log.count_probes

    @property
    def cache_hits(self) -> int:
        return self.log.cache_hits

    def close(self) -> None:
        """Freeze the window so later traffic stops leaking into it."""
        if self._frozen_log is None:
            self._frozen_log = self.log.snapshot()
            self._frozen_stats = self.execution_stats.snapshot()


class AutonomousWebDatabase:
    """Form-interface view of a relation hosted by an autonomous source.

    Parameters
    ----------
    table:
        The backing relation instance (hidden from callers).
    result_cap:
        When set, every query returns at most this many tuples — the
        "first N results" page a Web form would serve.
    probe_budget:
        When set, raise :class:`ProbeLimitExceededError` once this many
        probes have been issued (rate limiting).
    probe_cache_capacity:
        When set, enable a bounded LRU cache over probes (see
        :mod:`repro.db.probe_cache`).  Off by default — the efficiency
        experiments meter issued probes, and a cache would serve
        repeats for free.  Cache hits are logged as
        ``ProbeLog.cache_hits`` and never charge the probe budget.
    fault_policy:
        When set, every source-reaching probe attempt first consults
        the seeded fault schedule (see :mod:`repro.db.faults`): the
        attempt may be aborted with a transient error, a timeout, a
        throttle response or an outage, or its result page may be
        truncated.  Off by default; with the policy unset this path is
        never entered and probe/accounting semantics are bit-identical
        to a policy-free facade.  An injected error aborts the probe
        before execution, so it charges no budget and moves no
        ``ProbeLog`` counter.
    """

    def __init__(
        self,
        table: Table,
        result_cap: int | None = None,
        probe_budget: int | None = None,
        probe_cache_capacity: int | None = None,
        fault_policy: FaultPolicy | None = None,
    ) -> None:
        self._table = table
        self._executor = Executor(table)
        self.result_cap = result_cap
        self.probe_budget = probe_budget
        self.log = ProbeLog()
        # Serialises probe execution + accounting so concurrent callers
        # (the batched planner's worker pool) cannot interleave a budget
        # check, the executor counters, and the ProbeLog update.  The
        # in-memory substrate therefore runs probes one at a time under
        # the lock; worker pools only pay off against facades with real
        # I/O latency.
        self._accounting_lock = threading.RLock()
        self._fault_policy = fault_policy
        self._probe_cache: ProbeCache | None = (
            ProbeCache(probe_cache_capacity)
            if probe_cache_capacity is not None
            else None
        )

    # -- metadata a Web form exposes -------------------------------------------

    @property
    def schema(self) -> RelationSchema:
        """The relation schema projected by the form."""
        return self._table.schema

    @property
    def name(self) -> str:
        return self._table.schema.name

    def form_options(self, attribute: str) -> list[object]:
        """Drop-down options for a categorical attribute.

        Web search forms routinely enumerate categorical domains in
        ``<select>`` elements; this is the hook the spanning-query
        prober uses.  Numeric attributes have free-text inputs, so the
        facade refuses to enumerate them.
        """
        if not self.schema.attribute(attribute).is_categorical:
            raise ValueError(
                f"attribute {attribute!r} is numeric; forms expose no option "
                "list for free-text inputs"
            )
        return sorted(self._table.distinct_values(attribute), key=str)

    def cardinality_hint(self) -> int:
        """Advertised result-count of the unconstrained search.

        Many Web sources display "N listings found"; probers use it to
        size samples.  This is the only total the facade reveals.
        """
        return len(self._table)

    # -- the boolean query interface -------------------------------------------

    def query(
        self,
        query: SelectionQuery,
        limit: int | None = None,
        offset: int = 0,
    ) -> QueryResult:
        """Issue one selection probe.

        ``limit`` may further reduce (never exceed) the facade's
        ``result_cap``; ``offset`` requests a later result page, the
        way a Web form's "next page" link does.

        With the probe cache enabled, a repeated probe (same canonical
        conjunction and result window) is served from the cache: the
        returned result is payload-identical but flagged
        ``from_cache=True``, no budget is charged, and only
        ``cache_hits`` accounting moves.

        Thread-safe: the whole probe (budget check, execution, cache and
        log updates) runs under one lock, so concurrent callers observe
        consistent accounting.
        """
        with self._accounting_lock:
            return self._query_locked(query, limit, offset)

    def _query_locked(
        self,
        query: SelectionQuery,
        limit: int | None,
        offset: int,
    ) -> QueryResult:
        effective_limit = self.result_cap
        if limit is not None:
            effective_limit = (
                limit if effective_limit is None else min(limit, effective_limit)
            )
        cache = self._probe_cache
        if cache is not None:
            cached = cache.get_result(query, effective_limit, offset)
            if cached is not None:
                self.log.record_cache_hit()
                self._record_cache_metrics(hit=True)
                self._emit_probe_event(
                    query, kind="query", rows=len(cached), from_cache=True
                )
                return replace(cached, from_cache=True)
        self._check_budget()
        decision = self._consult_faults()
        result = self._executor.execute(query, limit=effective_limit, offset=offset)
        fault_truncated = False
        if decision is not None and decision.truncate:
            policy = self._fault_policy
            assert policy is not None
            cut = policy.truncate_result(result)
            fault_truncated = cut is not result
            result = cut
        self.log.record(result)
        if cache is not None and not fault_truncated:
            # A fault-truncated page is not the source's real answer;
            # caching it would replay the corruption on every repeat.
            evicted = cache.put_result(query, effective_limit, offset, result)
            self._record_cache_metrics(hit=False, evicted=evicted)
        if OBS.enabled:
            self._record_probe_metrics(query, kind="query", empty=not result)
            if result.truncated and self.result_cap is not None:
                OBS.registry.counter(
                    "repro_db_result_cap_truncations_total",
                    "Probes whose result page was cut by the facade's cap.",
                ).inc()
        self._emit_probe_event(
            query,
            kind="query",
            rows=len(result),
            from_cache=False,
            truncated=result.truncated,
        )
        return result

    def count(self, query: SelectionQuery) -> int:
        """Result-count probe (forms report counts without listing).

        Uses the executor's count-only path: no rows are materialised,
        and the probe is logged distinctly as a count probe.  The probe
        budget applies exactly as for row probes — a count still costs
        the source one form submission.  Repeated counts are served by
        the probe cache when it is enabled.  Thread-safe, like
        :meth:`query`.
        """
        with self._accounting_lock:
            return self._count_locked(query)

    def _count_locked(self, query: SelectionQuery) -> int:
        cache = self._probe_cache
        if cache is not None:
            cached = cache.get_count(query)
            if cached is not None:
                self.log.record_cache_hit()
                self._record_cache_metrics(hit=True)
                self._emit_probe_event(
                    query, kind="count", rows=cached, from_cache=True
                )
                return cached
        self._check_budget()
        self._consult_faults()
        matches = self._executor.count(query)
        self.log.record_count(matches)
        if cache is not None:
            evicted = cache.put_count(query, matches)
            self._record_cache_metrics(hit=False, evicted=evicted)
        if OBS.enabled:
            self._record_probe_metrics(query, kind="count", empty=matches == 0)
        self._emit_probe_event(
            query, kind="count", rows=matches, from_cache=False
        )
        return matches

    # -- fault injection ---------------------------------------------------------

    @property
    def fault_policy(self) -> FaultPolicy | None:
        """The active fault-injection policy, or None when off."""
        return self._fault_policy

    def set_fault_policy(self, policy: FaultPolicy | None) -> None:
        """Install (or, with None, remove) the fault-injection policy."""
        with self._accounting_lock:
            self._fault_policy = policy

    def _consult_faults(self) -> FaultDecision | None:
        """Draw the fault schedule for one source-reaching attempt.

        Raises the injected error (before any accounting) when the
        schedule says the attempt fails; otherwise returns the decision
        so the caller can apply a pending page truncation.
        """
        policy = self._fault_policy
        if policy is None:
            return None
        decision = policy.decide()
        if decision.error is not None:
            raise decision.error
        return decision

    # -- probe cache management ------------------------------------------------

    @property
    def probe_cache(self) -> ProbeCache | None:
        """The active probe cache, or None when caching is off."""
        return self._probe_cache

    def enable_probe_cache(self, capacity: int = 1024) -> ProbeCache:
        """Switch the probe cache on (replacing any existing one)."""
        with self._accounting_lock:
            self._probe_cache = ProbeCache(capacity)
            return self._probe_cache

    def disable_probe_cache(self) -> None:
        """Switch the probe cache off and drop its entries."""
        with self._accounting_lock:
            self._probe_cache = None

    # -- bookkeeping -----------------------------------------------------------

    @property
    def execution_stats(self) -> ExecutionStats:
        """Engine-side work counters (for experiments, not for AIMQ)."""
        return self._executor.stats

    def reset_accounting(self) -> None:
        """Zero the probe log and engine counters between experiments."""
        self.log.reset()
        self._executor.stats = ExecutionStats()

    @contextmanager
    def accounting_scope(self) -> Iterator[AccountingWindow]:
        """Nestable accounting window over this source's traffic.

        Yields an :class:`AccountingWindow` whose counters cover only
        the probes issued inside the ``with`` block; the global
        :attr:`log` keeps accumulating untouched, so scopes nest and
        concurrent observers never clobber each other — the failure
        mode ``reset_accounting`` has when a probe budget trips
        mid-experiment.
        """
        window = AccountingWindow(
            self, self.log.snapshot(), self._executor.stats.snapshot()
        )
        try:
            yield window
        finally:
            window.close()

    # -- internals -------------------------------------------------------------

    def _check_budget(self) -> None:
        if (
            self.probe_budget is not None
            and self.log.probes_issued >= self.probe_budget
        ):
            if OBS.enabled:
                OBS.registry.counter(
                    "repro_db_probe_budget_exhausted_total",
                    "Probes refused because the source's budget ran out.",
                ).inc()
            raise ProbeLimitExceededError(
                self.probe_budget, probes_issued=self.log.probes_issued
            )

    def _record_cache_metrics(self, hit: bool, evicted: bool = False) -> None:
        _record_cache_metrics(hit, evicted)

    def _record_probe_metrics(
        self, query: SelectionQuery, kind: str, empty: bool
    ) -> None:
        _record_probe_metrics(query, kind, empty)

    def _emit_probe_event(
        self,
        query: SelectionQuery,
        kind: str,
        rows: int,
        from_cache: bool,
        truncated: bool = False,
    ) -> None:
        _emit_probe_event(query, kind, rows, from_cache, truncated)


# The accounting helpers below are module-level so every facade flavour
# (single-source and sharded) reports probes through the same metric
# names and the same wide-event shape.


def _record_cache_metrics(hit: bool, evicted: bool = False) -> None:
    if not OBS.enabled:
        return
    registry = OBS.registry
    if hit:
        registry.counter(
            "repro_db_probe_cache_hits_total",
            "Probe lookups served from the facade's probe cache.",
        ).inc()
    else:
        registry.counter(
            "repro_db_probe_cache_misses_total",
            "Probe lookups that missed the cache and reached the source.",
        ).inc()
    if evicted:
        registry.counter(
            "repro_db_probe_cache_evictions_total",
            "Probe cache entries evicted by the LRU capacity bound.",
        ).inc()


def _record_probe_metrics(query: SelectionQuery, kind: str, empty: bool) -> None:
    registry = OBS.registry
    registry.counter(
        "repro_db_probes_total",
        "Probes issued against the autonomous source, by kind and "
        "predicate shape.",
        labels=("kind", "shape"),
    ).labels(kind=kind, shape=_predicate_shape(query)).inc()
    if empty:
        registry.counter(
            "repro_db_empty_results_total",
            "Probes that returned (or counted) zero tuples.",
        ).inc()


def _emit_probe_event(
    query: SelectionQuery,
    kind: str,
    rows: int,
    from_cache: bool,
    truncated: bool = False,
) -> None:
    """One wide event per probe — opt-in (``--events-probe``)."""
    events = OBS.events
    if not (events.enabled and events.probe_events):
        return
    OBS.emit_event(
        "db.probe",
        query=query.describe(),
        kind=kind,
        rows=rows,
        from_cache=from_cache,
        truncated=truncated,
        trace_id=OBS.current_trace_id() or "",
    )


def _predicate_shape(query: SelectionQuery) -> str:
    """Compact shape label, e.g. ``between:1,eq:4`` (``none`` if empty)."""
    kinds: dict[str, int] = {}
    for predicate in query.predicates:
        name = type(predicate).__name__.lower()
        kinds[name] = kinds.get(name, 0) + 1
    if not kinds:
        return "none"
    return ",".join(f"{name}:{kinds[name]}" for name in sorted(kinds))
