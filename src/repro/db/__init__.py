"""Relational substrate: the "autonomous Web database" AIMQ runs against.

This package implements everything the paper assumes on the database
side: typed relation schemas, an in-memory boolean query engine with
hash and sorted indexes, conjunctive selection queries, CSV persistence,
and the :class:`AutonomousWebDatabase` facade that restricts access to a
Web-form-style probing interface.
"""

from repro.db.errors import (
    DatabaseError,
    ProbeLimitExceededError,
    ProbeTimeoutError,
    QueryError,
    SchemaError,
    SourceThrottledError,
    SourceUnavailableError,
    TransientProbeError,
    TransientSourceError,
    TypeMismatchError,
    UnknownAttributeError,
    UnsupportedPredicateError,
)
from repro.db.executor import ExecutionStats, Executor, QueryResult
from repro.db.faults import FAULT_KINDS, FaultDecision, FaultPolicy, FaultSpec
from repro.db.predicates import (
    Between,
    Eq,
    Ge,
    Gt,
    IsIn,
    Le,
    Lt,
    Ne,
    Predicate,
    parse_op,
)
from repro.db.probe_cache import ProbeCache, canonical_probe_key
from repro.db.query import SelectionQuery
from repro.db.schema import Attribute, AttributeKind, RelationSchema
from repro.db.sharded import ShardedWebDatabase, ShardFailure, ShardGuard
from repro.db.table import ColumnarTable, Table
from repro.db.webdb import AutonomousWebDatabase, ProbeLog

__all__ = [
    "Attribute",
    "AttributeKind",
    "AutonomousWebDatabase",
    "Between",
    "ColumnarTable",
    "DatabaseError",
    "Eq",
    "ExecutionStats",
    "Executor",
    "FAULT_KINDS",
    "FaultDecision",
    "FaultPolicy",
    "FaultSpec",
    "Ge",
    "Gt",
    "IsIn",
    "Le",
    "Lt",
    "Ne",
    "Predicate",
    "ProbeCache",
    "ProbeLimitExceededError",
    "ProbeLog",
    "ProbeTimeoutError",
    "SourceThrottledError",
    "SourceUnavailableError",
    "TransientProbeError",
    "TransientSourceError",
    "canonical_probe_key",
    "parse_op",
    "QueryError",
    "QueryResult",
    "RelationSchema",
    "SchemaError",
    "SelectionQuery",
    "ShardFailure",
    "ShardGuard",
    "ShardedWebDatabase",
    "Table",
    "TypeMismatchError",
    "UnknownAttributeError",
    "UnsupportedPredicateError",
]
