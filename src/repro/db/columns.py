"""Typed columnar storage: the data plane behind :class:`ColumnarTable`.

Rows are decomposed into per-attribute columns at insert time:

* **categorical** attributes are dictionary-encoded — each distinct
  string gets a small integer code (in order of first appearance, so
  encodings are deterministic) and the column stores one code per row,
  with ``-1`` marking null;
* **numeric** attributes keep their raw Python values (``int`` /
  ``float`` / ``None``) plus, when numpy is available, a lazily built
  ``float64`` array and a validity mask for vectorized evaluation.

Rows are grouped into fixed-size *blocks* (:data:`DEFAULT_BLOCK_ROWS`
rows each).  Every ``(column, block)`` pair has a :class:`BlockStats`
zone map — min/max for numerics, the distinct code set (when small) for
categoricals, plus null presence — built lazily after bulk load and
reused until the column grows.  The vectorized executor consults zone
maps to prune whole blocks before touching a single value.

Exactness contract
------------------

The vectorized paths must be *bit-identical* to per-row Python
evaluation.  Two float64 hazards are tracked explicitly:

* an ``int`` cell beyond ``±2**53`` has no exact float64 image; a
  column containing one reports ``exact=False`` and the executor falls
  back to the row path for the whole query;
* a NaN cell never satisfies a range or equality predicate but *does*
  satisfy ``Ne``; blocks containing NaN report unbounded extents so
  zone maps never prune on garbage min/max.

Everything here is private to ``repro.db`` (reprolint REP004): outside
code sees only ``Table``-shaped reads and the facade's probe interface.
"""

from __future__ import annotations

import math
from typing import Any, Iterator

from repro.db.schema import RelationSchema

__all__ = [
    "DEFAULT_BLOCK_ROWS",
    "HAS_NUMPY",
    "MAX_EXACT_INT",
    "ZONE_MAP_DISTINCT_LIMIT",
    "BlockStats",
    "CategoricalColumn",
    "NumericColumn",
    "ColumnStore",
]

#: Rows per block; zone maps and vectorized masks work block-at-a-time.
DEFAULT_BLOCK_ROWS = 4096

#: A categorical block's distinct-code set is kept only while it stays
#: at or below this size; beyond it the zone map stores None (no
#: pruning for that block, membership tests would cost what they save).
ZONE_MAP_DISTINCT_LIMIT = 64

#: Largest magnitude an int may have and still be exactly representable
#: in float64 (2**53); columns holding larger ints disable vectorization.
MAX_EXACT_INT = 2**53

_np: Any
try:  # numpy is an accelerator, never a requirement
    import numpy

    _np = numpy
except ImportError:  # pragma: no cover - numpy present in the CI image
    _np = None

HAS_NUMPY = _np is not None


class BlockStats:
    """Zone-map entry for one ``(column, block)`` pair.

    For numeric columns ``low``/``high`` bound the block's non-null,
    non-NaN values (both None when no such value exists *or* when the
    block holds a NaN — an unbounded block admits every range).  For
    categorical columns ``codes`` is the distinct dictionary-code set,
    or None when it overflowed :data:`ZONE_MAP_DISTINCT_LIMIT`.
    ``non_null`` counts non-null cells (NaN included: ``Ne`` matches
    them); ``has_null`` records whether any cell is null.
    """

    __slots__ = ("low", "high", "has_null", "non_null", "codes", "unbounded")

    def __init__(
        self,
        low: int | float | None,
        high: int | float | None,
        has_null: bool,
        non_null: int,
        codes: frozenset[int] | None,
        unbounded: bool,
    ) -> None:
        self.low = low
        self.high = high
        self.has_null = has_null
        self.non_null = non_null
        self.codes = codes
        self.unbounded = unbounded


class CategoricalColumn:
    """Dictionary-encoded string column (``-1`` codes null)."""

    __slots__ = ("codes", "dictionary", "_code_of", "_array", "_array_rows")

    def __init__(self) -> None:
        self.codes: list[int] = []
        self.dictionary: list[str] = []
        self._code_of: dict[str, int] = {}
        self._array: Any = None
        self._array_rows = 0

    def append(self, value: str | None) -> None:
        if value is None:
            self.codes.append(-1)
            return
        code = self._code_of.get(value)
        if code is None:
            code = len(self.dictionary)
            self._code_of[value] = code
            self.dictionary.append(value)
        self.codes.append(code)

    def value(self, row_id: int) -> str | None:
        code = self.codes[row_id]
        return None if code < 0 else self.dictionary[code]

    def code_for(self, value: object) -> int | None:
        """Dictionary code of ``value``; None when absent or not a str."""
        if isinstance(value, str):
            return self._code_of.get(value)
        return None

    def code_array(self) -> Any:
        """Cached int64 numpy array of codes (None without numpy)."""
        if _np is None:
            return None
        if self._array is None or self._array_rows != len(self.codes):
            self._array = _np.asarray(self.codes, dtype=_np.int64)
            self._array_rows = len(self.codes)
        return self._array


class NumericColumn:
    """Raw numeric column with an optional float64 shadow array."""

    __slots__ = ("values", "_exact", "_array", "_valid", "_array_rows")

    def __init__(self) -> None:
        self.values: list[int | float | None] = []
        self._exact = True
        self._array: Any = None
        self._valid: Any = None
        self._array_rows = 0

    def append(self, value: int | float | None) -> None:
        if isinstance(value, int) and (
            value > MAX_EXACT_INT or value < -MAX_EXACT_INT
        ):
            self._exact = False
        self.values.append(value)

    @property
    def exact(self) -> bool:
        """True while every int cell is exactly representable in float64."""
        return self._exact

    def value(self, row_id: int) -> int | float | None:
        return self.values[row_id]

    def arrays(self) -> tuple[Any, Any]:
        """Cached ``(float64 values, bool validity)`` pair.

        Null cells hold NaN in the value array and False in the
        validity mask; genuine NaN cells stay valid (``Ne`` matches
        them).  Returns ``(None, None)`` without numpy.
        """
        if _np is None:
            return (None, None)
        n = len(self.values)
        if self._array is None or self._array_rows != n:
            vals = _np.empty(n, dtype=_np.float64)
            valid = _np.ones(n, dtype=bool)
            for index, value in enumerate(self.values):
                if value is None:
                    vals[index] = _np.nan
                    valid[index] = False
                else:
                    vals[index] = value
            self._array = vals
            self._valid = valid
            self._array_rows = n
        return (self._array, self._valid)


def _is_nan(value: object) -> bool:
    return isinstance(value, float) and math.isnan(value)


class ColumnStore:
    """Per-attribute columns plus block-level zone maps for one relation."""

    def __init__(
        self,
        schema: RelationSchema,
        block_rows: int = DEFAULT_BLOCK_ROWS,
        zone_maps: bool = True,
    ) -> None:
        if block_rows < 1:
            raise ValueError("block_rows must be at least 1")
        self.schema = schema
        self.block_rows = block_rows
        self.zone_maps_enabled = zone_maps
        self._columns: list[CategoricalColumn | NumericColumn] = [
            CategoricalColumn() if attribute.is_categorical else NumericColumn()
            for attribute in schema
        ]
        self._n_rows = 0
        self._zone_maps: list[list[BlockStats]] = [[] for _ in schema]
        self._zone_rows: list[int] = [0 for _ in schema]

    # -- writes ----------------------------------------------------------------

    def append(self, row: tuple[object, ...]) -> int:
        """Append one schema-validated row; return its row id."""
        for column, value in zip(self._columns, row):
            column.append(value)  # type: ignore[arg-type]
        row_id = self._n_rows
        self._n_rows += 1
        return row_id

    # -- row-shaped reads ------------------------------------------------------

    def __len__(self) -> int:
        return self._n_rows

    def row(self, row_id: int) -> tuple[object, ...]:
        return tuple(column.value(row_id) for column in self._columns)

    def iter_rows(self) -> Iterator[tuple[object, ...]]:
        columns = self._columns
        for row_id in range(self._n_rows):
            yield tuple(column.value(row_id) for column in columns)

    # -- column-shaped reads ---------------------------------------------------

    def column_at(self, position: int) -> CategoricalColumn | NumericColumn:
        return self._columns[position]

    def column_values(self, attribute: str) -> list[object]:
        """Materialise one column in row order (decoded)."""
        column = self._columns[self.schema.position(attribute)]
        if isinstance(column, CategoricalColumn):
            dictionary = column.dictionary
            return [
                None if code < 0 else dictionary[code] for code in column.codes
            ]
        return list(column.values)

    def distinct_values(self, attribute: str) -> list[str]:
        """Distinct non-null values of a categorical attribute.

        The dictionary is built in order of first appearance, so this
        matches the scan-order contract of ``Table.distinct_values``.
        """
        column = self._columns[self.schema.position(attribute)]
        if not isinstance(column, CategoricalColumn):
            raise TypeError(f"attribute {attribute!r} is not categorical")
        return list(column.dictionary)

    def value_counts(self, attribute: str) -> dict[str, int]:
        """Histogram of non-null values of a categorical attribute."""
        column = self._columns[self.schema.position(attribute)]
        if not isinstance(column, CategoricalColumn):
            raise TypeError(f"attribute {attribute!r} is not categorical")
        per_code = [0 for _ in column.dictionary]
        for code in column.codes:
            if code >= 0:
                per_code[code] += 1
        return {
            value: per_code[code]
            for code, value in enumerate(column.dictionary)
            if per_code[code] > 0
        }

    # -- blocks and zone maps --------------------------------------------------

    def n_blocks(self) -> int:
        return (self._n_rows + self.block_rows - 1) // self.block_rows

    def block_bounds(self, block: int) -> tuple[int, int]:
        """Half-open row-id range ``[start, stop)`` of ``block``."""
        start = block * self.block_rows
        return (start, min(start + self.block_rows, self._n_rows))

    def zone_map(self, position: int, block: int) -> BlockStats:
        """Zone-map entry for ``(column, block)``; built lazily, cached.

        Appending rows invalidates only the trailing (possibly partial)
        block, so bulk-load-then-read workloads pay one build pass.
        """
        if self._zone_rows[position] != self._n_rows:
            stats = self._zone_maps[position]
            first_stale = self._zone_rows[position] // self.block_rows
            del stats[first_stale:]
            for stale in range(first_stale, self.n_blocks()):
                stats.append(self._compute_stats(position, stale))
            self._zone_rows[position] = self._n_rows
        return self._zone_maps[position][block]

    def _compute_stats(self, position: int, block: int) -> BlockStats:
        start, stop = self.block_bounds(block)
        column = self._columns[position]
        has_null = False
        non_null = 0
        if isinstance(column, CategoricalColumn):
            seen: dict[int, None] = {}
            overflow = False
            for code in column.codes[start:stop]:
                if code < 0:
                    has_null = True
                    continue
                non_null += 1
                if not overflow:
                    seen.setdefault(code)
                    if len(seen) > ZONE_MAP_DISTINCT_LIMIT:
                        overflow = True
            codes = None if overflow else frozenset(seen)
            return BlockStats(
                low=None,
                high=None,
                has_null=has_null,
                non_null=non_null,
                codes=codes,
                unbounded=False,
            )
        low: int | float | None = None
        high: int | float | None = None
        unbounded = False
        for value in column.values[start:stop]:
            if value is None:
                has_null = True
                continue
            non_null += 1
            if _is_nan(value):
                # NaN poisons min/max; mark the block unbounded so no
                # range or equality predicate ever prunes it wrongly.
                unbounded = True
                continue
            if low is None or value < low:
                low = value
            if high is None or value > high:
                high = value
        if unbounded:
            low = None
            high = None
        return BlockStats(
            low=low,
            high=high,
            has_null=has_null,
            non_null=non_null,
            codes=None,
            unbounded=unbounded,
        )
