"""Deterministic fault injection for the autonomous-source facade.

The paper's source is a *non-local autonomous Web database* (§1,
footnote 1): in production such a source times out, throttles, truncates
result pages and occasionally disappears outright.  This module lets
the facade simulate exactly that — reproducibly — so the resilience
layer (:mod:`repro.resilience`) and the chaos suite can be tested
against failure schedules that are bit-identical across runs.

Determinism contract
--------------------

A :class:`FaultPolicy` is a pure function of ``(spec, seed, attempt
sequence)``: every source-reaching probe attempt consumes exactly two
values from one seeded ``random.Random`` stream (one for the error
draw, one for the truncation draw), regardless of which fault kinds are
enabled.  Two policies built from the same spec and seed therefore
produce the same fault schedule, and a policy with all rates zero and
no outage windows draws the same stream but never fires — so enabling
the hook costs nothing semantically.

With ``fault_policy=None`` (the default) the facade never touches this
module and probe/accounting behaviour is bit-identical to a build
without it.

Accounting
----------

An injected fault aborts the probe *before* it reaches the executor:
nothing is recorded in the :class:`~repro.db.webdb.ProbeLog` and no
probe budget is charged — the paper's Figure 6–7 issued-probe semantics
only ever count answered probes.  Every injection is counted in the
policy's :attr:`FaultPolicy.injected` map and, when observability is
on, in ``repro_db_faults_injected_total{kind=...}``.  A truncation
fault lets the probe execute but drops the tail of the result page
(flagging it ``truncated``), the way a flaky source serves partial
pages; the facade skips caching such pages.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

from repro.db.errors import (
    DatabaseError,
    ProbeTimeoutError,
    SourceThrottledError,
    SourceUnavailableError,
    TransientProbeError,
)
from repro.db.executor import QueryResult
from repro.obs.runtime import OBS

__all__ = ["FaultSpec", "FaultDecision", "FaultPolicy", "FAULT_KINDS"]

#: Every fault kind a policy can inject, in metric-label spelling.
FAULT_KINDS: tuple[str, ...] = (
    "transient",
    "timeout",
    "throttle",
    "outage",
    "truncation",
)


@dataclass(frozen=True)
class FaultSpec:
    """What to inject, and how often.

    Rates are independent per-attempt probabilities in ``[0, 1]``; the
    three error rates share one uniform draw (cumulative comparison) so
    at most one error fires per attempt.  ``outages`` are half-open
    ``[start, stop)`` windows over the 0-based attempt index during
    which *every* probe fails with
    :class:`~repro.db.errors.SourceUnavailableError` — the windowed
    full outage of a source that is simply down.
    """

    transient_rate: float = 0.0
    timeout_rate: float = 0.0
    throttle_rate: float = 0.0
    truncation_rate: float = 0.0
    throttle_retry_after: float = 0.05
    timeout_seconds: float = 1.0
    truncation_keep_fraction: float = 0.5
    outages: tuple[tuple[int, int], ...] = ()

    def __post_init__(self) -> None:
        rates = (
            self.transient_rate,
            self.timeout_rate,
            self.throttle_rate,
            self.truncation_rate,
        )
        if any(rate < 0.0 or rate > 1.0 for rate in rates):
            raise ValueError("fault rates must lie in [0, 1]")
        if self.transient_rate + self.timeout_rate + self.throttle_rate > 1.0:
            raise ValueError("error rates may not sum above 1")
        if not 0.0 < self.truncation_keep_fraction <= 1.0:
            raise ValueError("truncation_keep_fraction must be in (0, 1]")
        if self.throttle_retry_after < 0.0:
            raise ValueError("throttle_retry_after cannot be negative")
        for start, stop in self.outages:
            if start < 0 or stop <= start:
                raise ValueError(
                    f"outage window ({start}, {stop}) must satisfy "
                    "0 <= start < stop"
                )

    def in_outage(self, attempt_index: int) -> bool:
        """True when ``attempt_index`` falls inside an outage window."""
        return any(
            start <= attempt_index < stop for start, stop in self.outages
        )


@dataclass(frozen=True)
class FaultDecision:
    """Outcome of one schedule draw.

    ``kind`` is the injected fault's label (None when the attempt is
    clean), ``error`` the exception to raise before executing, and
    ``truncate`` whether the result page should be cut.  ``kind`` and
    ``truncate`` alone define schedule equality — exceptions never
    compare equal — which is what the determinism property tests use.
    """

    attempt_index: int
    kind: str | None = None
    error: DatabaseError | None = None
    truncate: bool = False

    @property
    def signature(self) -> tuple[int, str | None, bool]:
        return (self.attempt_index, self.kind, self.truncate)


class FaultPolicy:
    """Seeded fault schedule applied by the facade to each probe attempt.

    Parameters
    ----------
    spec:
        The fault mix to inject.
    seed:
        Seed of the private ``random.Random`` stream; the whole
        schedule is a deterministic function of ``(spec, seed)``.
    """

    def __init__(self, spec: FaultSpec, seed: int = 0) -> None:
        self.spec = spec
        self.seed = seed
        self._rng = random.Random(seed)
        self.attempts = 0
        self.injected: dict[str, int] = {kind: 0 for kind in FAULT_KINDS}

    # -- schedule ------------------------------------------------------------

    def decide(self) -> FaultDecision:
        """Draw the next attempt's fate (advances the schedule).

        Exactly two uniforms are consumed per call whatever the spec
        enables, so schedules with the same seed stay aligned across
        configurations.
        """
        index = self.attempts
        self.attempts += 1
        error_draw = self._rng.random()
        truncate_draw = self._rng.random()
        spec = self.spec

        if spec.in_outage(index):
            self._count("outage")
            return FaultDecision(
                attempt_index=index,
                kind="outage",
                error=SourceUnavailableError(
                    f"source outage window covers probe attempt {index}"
                ),
            )

        kind = self._error_kind(error_draw)
        if kind is not None:
            self._count(kind)
            return FaultDecision(
                attempt_index=index, kind=kind, error=self._make_error(kind)
            )

        truncate = (
            spec.truncation_rate > 0.0 and truncate_draw < spec.truncation_rate
        )
        return FaultDecision(attempt_index=index, truncate=truncate)

    def truncate_result(self, result: QueryResult) -> QueryResult:
        """Cut a result page the way a flaky source would.

        Keeps the leading ``truncation_keep_fraction`` of the rows (at
        least one) and flags the page truncated.  Pages too small to
        lose a row pass through unchanged and count no injection.
        """
        keep = max(1, int(len(result) * self.spec.truncation_keep_fraction))
        if keep >= len(result):
            return result
        self._count("truncation")
        return replace(
            result,
            row_ids=result.row_ids[:keep],
            rows=result.rows[:keep],
            truncated=True,
        )

    # -- internals -----------------------------------------------------------

    def _error_kind(self, draw: float) -> str | None:
        spec = self.spec
        threshold = spec.transient_rate
        if draw < threshold:
            return "transient"
        threshold += spec.timeout_rate
        if draw < threshold:
            return "timeout"
        threshold += spec.throttle_rate
        if draw < threshold:
            return "throttle"
        return None

    def _make_error(self, kind: str) -> DatabaseError:
        if kind == "transient":
            return TransientProbeError()
        if kind == "timeout":
            return ProbeTimeoutError(
                timeout_seconds=self.spec.timeout_seconds
            )
        return SourceThrottledError(
            retry_after=self.spec.throttle_retry_after
        )

    def _count(self, kind: str) -> None:
        self.injected[kind] += 1
        if OBS.enabled:
            OBS.registry.counter(
                "repro_db_faults_injected_total",
                "Faults injected into the autonomous source, by kind.",
                labels=("kind",),
            ).labels(kind=kind).inc()
