"""Vectorized predicate evaluation over a :class:`ColumnStore`.

:func:`compile_query` lowers a conjunctive :class:`SelectionQuery` into
per-predicate strategies bound to the store's columns.  A compiled
query can:

* **zone-prune** — decide from a block's :class:`BlockStats` alone that
  no row in it can match, without touching values;
* **mask** — evaluate one block as a boolean bitmask per conjunct
  (numpy), ANDed across conjuncts;
* **probe** — evaluate a single row id scalar-wise (used for index
  residual verification and as the numpy-free block path).

Exactness is the whole contract: every strategy reproduces the row
engine's Python semantics bit for bit, nulls included (``Eq(None)``
matches nulls, ``Ne`` requires non-null, ``IsIn`` honours a null
member).  Whenever a predicate/column combination cannot be reproduced
exactly — a non-str bound on a categorical column (the row path raises
``TypeError``), an int beyond float64's exact range, a NaN inside an
``IsIn`` set (frozenset membership tests identity first) —
:func:`compile_query` returns None and the executor keeps the per-row
path for the whole query.

Zone-map pruning is *conservative*: ``admits`` may return True for a
block with no matches (cost: one wasted mask), but must never return
False for a block containing a match (that would change results).
"""

from __future__ import annotations

import math
from typing import Any

from repro.db.columns import (
    BlockStats,
    CategoricalColumn,
    ColumnStore,
    MAX_EXACT_INT,
    NumericColumn,
)
from repro.db.predicates import (
    Between,
    Eq,
    Ge,
    Gt,
    IsIn,
    Le,
    Lt,
    Ne,
    Predicate,
)
from repro.db.query import SelectionQuery

__all__ = ["CompiledPredicate", "CompiledQuery", "compile_query"]

_np: Any
try:
    import numpy

    _np = numpy
except ImportError:  # pragma: no cover - numpy present in the CI image
    _np = None


class CompiledPredicate:
    """One predicate bound to one column; base gives exact scalar probe."""

    __slots__ = ("predicate", "position", "column")

    def __init__(
        self,
        predicate: Predicate,
        position: int,
        column: CategoricalColumn | NumericColumn,
    ) -> None:
        self.predicate = predicate
        self.position = position
        self.column = column

    def matches_at(self, row_id: int) -> bool:
        """Exact per-row check (delegates to the predicate itself)."""
        return self.predicate.matches(self.column.value(row_id))

    def admits(self, stats: BlockStats) -> bool:
        """May any row of a block with these stats match?  Conservative."""
        return True

    def mask(self, start: int, stop: int) -> Any:
        """Boolean numpy mask over rows ``[start, stop)``."""
        raise NotImplementedError


# -- categorical strategies ----------------------------------------------------


class _CatNever(CompiledPredicate):
    """No cell can ever match (e.g. equality with an unknown value)."""

    __slots__ = ()

    def admits(self, stats: BlockStats) -> bool:
        return False

    def mask(self, start: int, stop: int) -> Any:
        return _np.zeros(stop - start, dtype=bool)


class _CatEqNull(CompiledPredicate):
    """``Eq(None)``: matches exactly the null cells."""

    __slots__ = ()

    def admits(self, stats: BlockStats) -> bool:
        return stats.has_null

    def mask(self, start: int, stop: int) -> Any:
        codes = self.column.code_array()[start:stop]  # type: ignore[union-attr]
        return codes < 0


class _CatEqCode(CompiledPredicate):
    """``Eq(value)`` with a dictionary-known value."""

    __slots__ = ("code",)

    def __init__(
        self,
        predicate: Predicate,
        position: int,
        column: CategoricalColumn,
        code: int,
    ) -> None:
        super().__init__(predicate, position, column)
        self.code = code

    def admits(self, stats: BlockStats) -> bool:
        return stats.codes is None or self.code in stats.codes

    def mask(self, start: int, stop: int) -> Any:
        codes = self.column.code_array()[start:stop]  # type: ignore[union-attr]
        return codes == self.code


class _CatNotNull(CompiledPredicate):
    """``Ne`` variants every non-null cell satisfies."""

    __slots__ = ()

    def admits(self, stats: BlockStats) -> bool:
        return stats.non_null > 0

    def mask(self, start: int, stop: int) -> Any:
        codes = self.column.code_array()[start:stop]  # type: ignore[union-attr]
        return codes >= 0


class _CatNeCode(CompiledPredicate):
    """``Ne(value)`` with a dictionary-known value."""

    __slots__ = ("code",)

    def __init__(
        self,
        predicate: Predicate,
        position: int,
        column: CategoricalColumn,
        code: int,
    ) -> None:
        super().__init__(predicate, position, column)
        self.code = code

    def admits(self, stats: BlockStats) -> bool:
        if stats.codes is None:
            return stats.non_null > 0
        return any(code != self.code for code in sorted(stats.codes))

    def mask(self, start: int, stop: int) -> Any:
        codes = self.column.code_array()[start:stop]  # type: ignore[union-attr]
        return (codes >= 0) & (codes != self.code)


class _CatLut(CompiledPredicate):
    """Dictionary lookup table: ranges over strings and ``IsIn`` sets.

    ``lut[code]`` says whether dictionary entry ``code`` matches; a
    trailing sentinel slot carries the null verdict so numpy fancy
    indexing maps null's ``-1`` code onto it directly.
    """

    __slots__ = ("lut", "null_match", "_lut_array")

    def __init__(
        self,
        predicate: Predicate,
        position: int,
        column: CategoricalColumn,
        lut: list[bool],
        null_match: bool,
    ) -> None:
        super().__init__(predicate, position, column)
        self.lut = lut
        self.null_match = null_match
        self._lut_array: Any = None

    def admits(self, stats: BlockStats) -> bool:
        if self.null_match and stats.has_null:
            return True
        if stats.codes is None:
            return stats.non_null > 0
        return any(self.lut[code] for code in sorted(stats.codes))

    def mask(self, start: int, stop: int) -> Any:
        if self._lut_array is None or len(self._lut_array) != len(self.lut) + 1:
            self._lut_array = _np.asarray(
                self.lut + [self.null_match], dtype=bool
            )
        codes = self.column.code_array()[start:stop]  # type: ignore[union-attr]
        return self._lut_array[codes]


# -- numeric strategies --------------------------------------------------------


class _NumNever(CompiledPredicate):
    __slots__ = ()

    def admits(self, stats: BlockStats) -> bool:
        return False

    def mask(self, start: int, stop: int) -> Any:
        return _np.zeros(stop - start, dtype=bool)


class _NumEqNull(CompiledPredicate):
    __slots__ = ()

    def admits(self, stats: BlockStats) -> bool:
        return stats.has_null

    def mask(self, start: int, stop: int) -> Any:
        _, valid = self.column.arrays()  # type: ignore[union-attr]
        return ~valid[start:stop]


class _NumNotNull(CompiledPredicate):
    """``Ne`` variants every non-null cell satisfies."""

    __slots__ = ()

    def admits(self, stats: BlockStats) -> bool:
        return stats.non_null > 0

    def mask(self, start: int, stop: int) -> Any:
        _, valid = self.column.arrays()  # type: ignore[union-attr]
        return valid[start:stop]


class _NumCompare(CompiledPredicate):
    """``eq/ne/lt/le/gt/ge`` against one float64-exact bound.

    Null cells are stored as NaN in the shadow array, and every float
    comparison with NaN is False — which is exactly the row path's
    null semantics for these operators — so only ``ne`` (which NaN
    *does* satisfy) needs the validity mask.
    """

    __slots__ = ("kind", "bound_f")

    def __init__(
        self,
        predicate: Predicate,
        position: int,
        column: NumericColumn,
        kind: str,
        bound_f: float,
    ) -> None:
        super().__init__(predicate, position, column)
        self.kind = kind
        self.bound_f = bound_f

    def admits(self, stats: BlockStats) -> bool:
        if self.kind == "ne":
            return stats.non_null > 0
        if stats.unbounded:
            return stats.non_null > 0
        if stats.low is None or stats.high is None:
            return False
        if self.kind == "eq":
            return stats.low <= self.bound_f <= stats.high
        if self.kind == "lt":
            return stats.low < self.bound_f
        if self.kind == "le":
            return stats.low <= self.bound_f
        if self.kind == "gt":
            return stats.high > self.bound_f
        return stats.high >= self.bound_f

    def mask(self, start: int, stop: int) -> Any:
        vals, valid = self.column.arrays()  # type: ignore[union-attr]
        window = vals[start:stop]
        if self.kind == "eq":
            return _np.equal(window, self.bound_f)
        if self.kind == "ne":
            return valid[start:stop] & _np.not_equal(window, self.bound_f)
        if self.kind == "lt":
            return window < self.bound_f
        if self.kind == "le":
            return window <= self.bound_f
        if self.kind == "gt":
            return window > self.bound_f
        return window >= self.bound_f


class _NumBetween(CompiledPredicate):
    __slots__ = ("low_f", "high_f")

    def __init__(
        self,
        predicate: Predicate,
        position: int,
        column: NumericColumn,
        low_f: float,
        high_f: float,
    ) -> None:
        super().__init__(predicate, position, column)
        self.low_f = low_f
        self.high_f = high_f

    def admits(self, stats: BlockStats) -> bool:
        if stats.unbounded:
            return stats.non_null > 0
        if stats.low is None or stats.high is None:
            return False
        return stats.low <= self.high_f and stats.high >= self.low_f

    def mask(self, start: int, stop: int) -> Any:
        vals, _ = self.column.arrays()  # type: ignore[union-attr]
        window = vals[start:stop]
        return (window >= self.low_f) & (window <= self.high_f)


class _NumIsIn(CompiledPredicate):
    __slots__ = ("targets", "null_match", "_targets_array")

    def __init__(
        self,
        predicate: Predicate,
        position: int,
        column: NumericColumn,
        targets: list[float],
        null_match: bool,
    ) -> None:
        super().__init__(predicate, position, column)
        self.targets = targets
        self.null_match = null_match
        self._targets_array: Any = None

    def admits(self, stats: BlockStats) -> bool:
        if self.null_match and stats.has_null:
            return True
        if not self.targets:
            return False
        if stats.unbounded:
            return stats.non_null > 0
        if stats.low is None or stats.high is None:
            return False
        return any(
            stats.low <= target <= stats.high for target in self.targets
        )

    def mask(self, start: int, stop: int) -> Any:
        vals, valid = self.column.arrays()  # type: ignore[union-attr]
        window = vals[start:stop]
        if self._targets_array is None:
            self._targets_array = _np.asarray(self.targets, dtype=_np.float64)
        if self.targets:
            hit = _np.isin(window, self._targets_array)
        else:
            hit = _np.zeros(stop - start, dtype=bool)
        if self.null_match:
            hit = hit | ~valid[start:stop]
        return hit


# -- compilation ---------------------------------------------------------------


def _is_nan(value: object) -> bool:
    return isinstance(value, float) and math.isnan(value)


def _exact_float(value: int | float) -> float | None:
    """``value`` as float64, or None when the conversion is not exact."""
    try:
        as_float = float(value)
    except OverflowError:
        return None
    if isinstance(value, int) and not isinstance(value, bool):
        if value > MAX_EXACT_INT or value < -MAX_EXACT_INT:
            return None
        if int(as_float) != value:  # pragma: no cover - defensive
            return None
    return as_float


def _plain_value(value: object) -> bool:
    """True for value types whose comparison semantics we can reproduce."""
    return value is None or isinstance(value, (str, int, float))


def _compile_categorical(
    predicate: Predicate, position: int, column: CategoricalColumn
) -> CompiledPredicate | None:
    if isinstance(predicate, Eq):
        value = predicate.value
        if not _plain_value(value):
            return None
        if value is None:
            return _CatEqNull(predicate, position, column)
        code = column.code_for(value)
        if code is None:
            # Unknown string, or a non-str value no str/null cell can
            # equal: nothing matches.
            return _CatNever(predicate, position, column)
        return _CatEqCode(predicate, position, column, code)
    if isinstance(predicate, Ne):
        value = predicate.value
        if not _plain_value(value):
            return None
        code = column.code_for(value)
        if code is None:
            # None / unknown / non-str: every non-null cell differs.
            return _CatNotNull(predicate, position, column)
        return _CatNeCode(predicate, position, column, code)
    if isinstance(predicate, IsIn):
        if not all(_plain_value(v) for v in predicate.values):
            return None
        null_match = None in predicate.values
        lut = [value in predicate.values for value in column.dictionary]
        if not any(lut) and not null_match:
            return _CatNever(predicate, position, column)
        return _CatLut(predicate, position, column, lut, null_match)
    if isinstance(predicate, (Lt, Le, Gt, Ge)):
        if not isinstance(predicate.bound, str):
            # The row path raises TypeError on the first non-null cell;
            # keep that behaviour by refusing to vectorize.
            return None
        lut = [predicate.matches(value) for value in column.dictionary]
        if not any(lut):
            return _CatNever(predicate, position, column)
        return _CatLut(predicate, position, column, lut, False)
    if isinstance(predicate, Between):
        if not (
            isinstance(predicate.low, str) and isinstance(predicate.high, str)
        ):
            return None
        lut = [predicate.matches(value) for value in column.dictionary]
        if not any(lut):
            return _CatNever(predicate, position, column)
        return _CatLut(predicate, position, column, lut, False)
    return None


_COMPARE_KINDS: dict[type, str] = {Lt: "lt", Le: "le", Gt: "gt", Ge: "ge"}


def _compile_numeric(
    predicate: Predicate, position: int, column: NumericColumn
) -> CompiledPredicate | None:
    if not column.exact:
        return None
    if isinstance(predicate, (Eq, Ne)):
        value = predicate.value
        if not _plain_value(value):
            return None
        if value is None:
            if isinstance(predicate, Eq):
                return _NumEqNull(predicate, position, column)
            return _NumNotNull(predicate, position, column)
        if isinstance(value, str):
            # int/float cells never equal a str (and never raise).
            if isinstance(predicate, Eq):
                return _NumNever(predicate, position, column)
            return _NumNotNull(predicate, position, column)
        bound_f = _exact_float(value)
        if bound_f is None:
            # No exact-representable cell can equal this huge int.
            if isinstance(predicate, Eq):
                return _NumNever(predicate, position, column)
            return _NumNotNull(predicate, position, column)
        kind = "eq" if isinstance(predicate, Eq) else "ne"
        return _NumCompare(predicate, position, column, kind, bound_f)
    compare_kind = _COMPARE_KINDS.get(type(predicate))
    if compare_kind is not None:
        bound = predicate.bound  # type: ignore[attr-defined]
        if bound is None or not isinstance(bound, (int, float)):
            return None
        bound_f = _exact_float(bound)
        if bound_f is None:
            return None
        return _NumCompare(predicate, position, column, compare_kind, bound_f)
    if isinstance(predicate, Between):
        low, high = predicate.low, predicate.high
        if not (isinstance(low, (int, float)) and isinstance(high, (int, float))):
            return None
        low_f = _exact_float(low)
        high_f = _exact_float(high)
        if low_f is None or high_f is None:
            return None
        return _NumBetween(predicate, position, column, low_f, high_f)
    if isinstance(predicate, IsIn):
        null_match = None in predicate.values
        targets: list[float] = []
        for value in sorted(predicate.values, key=repr):
            if value is None:
                continue
            if _is_nan(value):
                # frozenset membership checks identity before equality,
                # so a NaN member *can* match the very same NaN cell;
                # only the row path reproduces that.
                return None
            if not _plain_value(value):
                return None
            if isinstance(value, str):
                continue  # numeric cells never equal a str
            target = _exact_float(value)
            if target is None:
                continue  # unrepresentable int: no exact cell equals it
            targets.append(target)
        if not targets and not null_match:
            return _NumNever(predicate, position, column)
        return _NumIsIn(predicate, position, column, targets, null_match)
    return None


def compile_predicate(
    predicate: Predicate, position: int, column: CategoricalColumn | NumericColumn
) -> CompiledPredicate | None:
    """Bind one predicate to one column, or None when not exactly doable."""
    if isinstance(column, CategoricalColumn):
        return _compile_categorical(predicate, position, column)
    return _compile_numeric(predicate, position, column)


class CompiledQuery:
    """A conjunction lowered onto one store's columns."""

    __slots__ = ("store", "predicates")

    def __init__(
        self, store: ColumnStore, predicates: list[CompiledPredicate]
    ) -> None:
        self.store = store
        self.predicates = predicates

    @property
    def vectorizable(self) -> bool:
        """True when the numpy mask path is available."""
        return _np is not None

    def prune_block(self, block: int) -> bool:
        """True when zone maps prove the block holds no match."""
        if not self.store.zone_maps_enabled:
            return False
        for compiled in self.predicates:
            if not compiled.admits(self.store.zone_map(compiled.position, block)):
                return True
        return False

    def matches_at(self, row_id: int) -> bool:
        """Exact scalar conjunction for one row id."""
        return all(compiled.matches_at(row_id) for compiled in self.predicates)

    def block_matches(self, start: int, stop: int) -> list[int]:
        """Matching row ids in ``[start, stop)``, ascending."""
        if not self.predicates:
            return list(range(start, stop))
        if _np is None:
            return [
                row_id
                for row_id in range(start, stop)
                if self.matches_at(row_id)
            ]
        mask = self.predicates[0].mask(start, stop)
        for compiled in self.predicates[1:]:
            mask = mask & compiled.mask(start, stop)
        hits: list[int] = (_np.flatnonzero(mask) + start).tolist()
        return hits

    def block_match_count(self, start: int, stop: int) -> int:
        """Number of matches in ``[start, stop)`` (no ids materialised)."""
        if not self.predicates:
            return stop - start
        if _np is None:
            count = 0
            for row_id in range(start, stop):
                if self.matches_at(row_id):
                    count += 1
            return count
        mask = self.predicates[0].mask(start, stop)
        for compiled in self.predicates[1:]:
            mask = mask & compiled.mask(start, stop)
        return int(_np.count_nonzero(mask))


def compile_query(
    query: SelectionQuery, store: ColumnStore
) -> CompiledQuery | None:
    """Lower ``query`` onto ``store``; None forces the exact row path."""
    compiled: list[CompiledPredicate] = []
    for predicate in query.predicates:
        position = store.schema.position(predicate.attribute)
        strategy = compile_predicate(predicate, position, store.column_at(position))
        if strategy is None:
            return None
        compiled.append(strategy)
    return CompiledQuery(store, compiled)
