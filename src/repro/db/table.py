"""In-memory table: row storage plus eager index maintenance.

Two storage engines share the :class:`Table` interface:

* :class:`Table` stores rows as positional tuples — the seed engine,
  simple and allocation-friendly for 100k-tuple scans;
* :class:`ColumnarTable` decomposes rows into typed per-attribute
  columns (:mod:`repro.db.columns`) with dictionary-encoded
  categoricals, block-level zone maps and optional numpy shadow
  arrays, which the executor's vectorized path evaluates
  block-at-a-time.

Both engines are append-only, resolve attribute names through the
:class:`RelationSchema`, and by default maintain a :class:`HashIndex`
per categorical attribute and a :class:`SortedIndex` per numeric
attribute — the combination the AIMQ probing and relaxation workloads
need.  Every read is served through the small storage-primitive set
(``__len__``/``__iter__``/``row``/``_append_storage``), so results are
bit-identical across engines by construction.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Mapping, Sequence

from repro.db.columns import DEFAULT_BLOCK_ROWS, ColumnStore
from repro.db.errors import UnknownAttributeError
from repro.db.index import HashIndex, SortedIndex
from repro.db.schema import RelationSchema

__all__ = ["Table", "ColumnarTable", "DEFAULT_BLOCK_ROWS"]

Row = tuple


class Table:
    """Mutable (append-only) in-memory relation instance.

    Parameters
    ----------
    schema:
        The typed relation schema.
    auto_index:
        When True (default), maintain a hash index per categorical
        attribute and a sorted index per numeric attribute.
    """

    def __init__(self, schema: RelationSchema, auto_index: bool = True) -> None:
        self.schema = schema
        self._init_storage()
        self._hash_indexes: dict[str, HashIndex] = {}
        self._sorted_indexes: dict[str, SortedIndex] = {}
        if auto_index:
            for attribute in schema:
                if attribute.is_categorical:
                    self.create_hash_index(attribute.name)
                else:
                    self.create_sorted_index(attribute.name)

    # -- storage primitives ----------------------------------------------------
    #
    # Subclasses swap the storage engine by overriding these four plus
    # ``row``/``__len__``/``__iter__``; everything else is written
    # against them.

    def _init_storage(self) -> None:
        self._rows: list[Row] = []

    def _append_storage(self, validated: Row) -> int:
        """Store one already-validated row; return its row id."""
        row_id = len(self._rows)
        self._rows.append(validated)
        return row_id

    def _derive(self) -> "Table":
        """Empty table of the same engine/schema (for sample/filter)."""
        return type(self)(self.schema)

    # -- index management -----------------------------------------------------

    def create_hash_index(self, attribute: str) -> HashIndex:
        """Create (or return the existing) hash index on ``attribute``."""
        position = self.schema.position(attribute)
        if attribute not in self._hash_indexes:
            index = HashIndex(attribute)
            for row_id, row in enumerate(self):
                index.add(row[position], row_id)
            self._hash_indexes[attribute] = index
        return self._hash_indexes[attribute]

    def create_sorted_index(self, attribute: str) -> SortedIndex:
        """Create (or return the existing) sorted index on ``attribute``."""
        position = self.schema.position(attribute)
        if attribute not in self._sorted_indexes:
            index = SortedIndex(attribute)
            for row_id, row in enumerate(self):
                index.add(row[position], row_id)
            self._sorted_indexes[attribute] = index
        return self._sorted_indexes[attribute]

    def hash_index(self, attribute: str) -> HashIndex | None:
        return self._hash_indexes.get(attribute)

    def sorted_index(self, attribute: str) -> SortedIndex | None:
        return self._sorted_indexes.get(attribute)

    # -- writes ---------------------------------------------------------------

    def insert(self, row: Sequence[object]) -> int:
        """Validate and append one row; return its row id."""
        validated = self.schema.validate_row(row)
        row_id = self._append_storage(validated)
        for attribute, index in self._hash_indexes.items():
            index.add(validated[self.schema.position(attribute)], row_id)
        for attribute, sorted_index in self._sorted_indexes.items():
            sorted_index.add(validated[self.schema.position(attribute)], row_id)
        return row_id

    def insert_mapping(self, mapping: Mapping[str, object]) -> int:
        """Append one row given as an ``{attribute: value}`` mapping."""
        return self.insert(self.schema.row_from_mapping(dict(mapping)))

    def extend(self, rows: Iterable[Sequence[object]]) -> int:
        """Bulk append; returns the number of rows inserted."""
        count = 0
        for row in rows:
            self.insert(row)
            count += 1
        return count

    # -- reads ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def row(self, row_id: int) -> Row:
        return self._rows[row_id]

    def rows(self, row_ids: Iterable[int] | None = None) -> list[Row]:
        if row_ids is None:
            return list(self)
        return [self.row(row_id) for row_id in row_ids]

    def column(self, attribute: str) -> list[object]:
        """Materialise one column in row order."""
        position = self.schema.position(attribute)
        return [row[position] for row in self]

    def columns(self, attributes: Sequence[str]) -> list[tuple[object, ...]]:
        """Materialise several columns as a list of value tuples."""
        positions = self.schema.positions(attributes)
        return [tuple(row[p] for p in positions) for row in self]

    def distinct_values(self, attribute: str) -> list[object]:
        """Distinct non-null values of ``attribute``.

        Served from the hash index when one exists, otherwise by a scan.
        """
        index = self._hash_indexes.get(attribute)
        if index is not None:
            return index.distinct_values()
        position = self.schema.position(attribute)
        seen: dict[object, None] = {}
        for row in self:
            value = row[position]
            if value is not None:
                seen.setdefault(value)
        return list(seen)

    def value_counts(self, attribute: str) -> dict[object, int]:
        """Histogram of non-null values of ``attribute``."""
        index = self._hash_indexes.get(attribute)
        if index is not None:
            return index.value_counts()
        position = self.schema.position(attribute)
        counts: dict[object, int] = {}
        for row in self:
            value = row[position]
            if value is not None:
                counts[value] = counts.get(value, 0) + 1
        return counts

    def numeric_extent(self, attribute: str) -> tuple[float, float] | None:
        """(min, max) of a numeric attribute, or None when empty/all-null."""
        if attribute in self._sorted_indexes:
            index = self._sorted_indexes[attribute]
            low, high = index.min_value(), index.max_value()
            if low is None:
                return None
            return (low, high)  # type: ignore[return-value]
        if self.schema.attribute(attribute).is_categorical:
            raise UnknownAttributeError(attribute, self.schema.name)
        values = [v for v in self.column(attribute) if v is not None]
        if not values:
            return None
        return (min(values), max(values))  # type: ignore[arg-type]

    # -- derivation -----------------------------------------------------------

    def sample(self, row_ids: Iterable[int]) -> "Table":
        """New table holding copies of the given rows (same schema)."""
        derived = self._derive()
        for row_id in row_ids:
            derived.insert(self.row(row_id))
        return derived

    def filter(self, keep: Callable[[Row], bool]) -> "Table":
        """New table with rows passing ``keep`` (same schema)."""
        derived = self._derive()
        for row in self:
            if keep(row):
                derived.insert(row)
        return derived

    def to_mappings(self) -> list[dict[str, object]]:
        """All rows rendered as dicts (test/debug convenience)."""
        return [self.schema.row_to_mapping(row) for row in self]


class ColumnarTable(Table):
    """Table backed by a :class:`~repro.db.columns.ColumnStore`.

    Same append-only interface and bit-identical read results; the
    difference is purely physical — typed columns, dictionary-encoded
    categoricals, and block zone maps the executor's vectorized path
    exploits.  ``block_rows``/``zone_maps`` tune that layout.
    """

    def __init__(
        self,
        schema: RelationSchema,
        auto_index: bool = True,
        block_rows: int = DEFAULT_BLOCK_ROWS,
        zone_maps: bool = True,
    ) -> None:
        self._block_rows = block_rows
        self._zone_maps_enabled = zone_maps
        super().__init__(schema, auto_index=auto_index)

    @classmethod
    def from_table(
        cls,
        table: Table,
        auto_index: bool = True,
        block_rows: int = DEFAULT_BLOCK_ROWS,
        zone_maps: bool = True,
    ) -> "ColumnarTable":
        """Re-encode an existing table columnar (same rows, same ids)."""
        derived = cls(
            table.schema,
            auto_index=auto_index,
            block_rows=block_rows,
            zone_maps=zone_maps,
        )
        for row in table:
            derived.insert(row)
        return derived

    # -- storage primitives ----------------------------------------------------

    def _init_storage(self) -> None:
        self._store = ColumnStore(
            self.schema,
            block_rows=self._block_rows,
            zone_maps=self._zone_maps_enabled,
        )

    def _append_storage(self, validated: Row) -> int:
        return self._store.append(validated)

    def _derive(self) -> "Table":
        return ColumnarTable(
            self.schema,
            block_rows=self._block_rows,
            zone_maps=self._zone_maps_enabled,
        )

    @property
    def column_store(self) -> ColumnStore:
        """The underlying columnar storage (the executor's fast path)."""
        return self._store

    # -- reads ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._store)

    def __iter__(self) -> Iterator[Row]:
        return self._store.iter_rows()

    def row(self, row_id: int) -> Row:
        return self._store.row(row_id)

    def column(self, attribute: str) -> list[object]:
        """Materialise one column straight from columnar storage."""
        return self._store.column_values(attribute)

    def distinct_values(self, attribute: str) -> list[object]:
        """Distinct non-null values, dictionary-served for categoricals.

        The dictionary is built in first-appearance order, which is the
        same scan order the base implementation (and the hash index)
        reports — callers observe no difference.
        """
        if self.schema.attribute(attribute).is_categorical:
            return list(self._store.distinct_values(attribute))
        return super().distinct_values(attribute)

    def value_counts(self, attribute: str) -> dict[object, int]:
        """Histogram of non-null values, code-counted for categoricals."""
        if self.schema.attribute(attribute).is_categorical:
            return dict(self._store.value_counts(attribute))
        return super().value_counts(attribute)
