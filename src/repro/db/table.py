"""In-memory table: row storage plus eager index maintenance.

Rows are stored as positional tuples to keep 100k-tuple scans cheap;
attribute names are resolved through the :class:`RelationSchema`.  A
table automatically maintains a :class:`HashIndex` for every categorical
attribute and a :class:`SortedIndex` for every numeric attribute, which
is the combination the AIMQ probing and relaxation workloads need.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Mapping, Sequence

from repro.db.errors import UnknownAttributeError
from repro.db.index import HashIndex, SortedIndex
from repro.db.schema import RelationSchema

__all__ = ["Table"]

Row = tuple


class Table:
    """Mutable (append-only) in-memory relation instance.

    Parameters
    ----------
    schema:
        The typed relation schema.
    auto_index:
        When True (default), maintain a hash index per categorical
        attribute and a sorted index per numeric attribute.
    """

    def __init__(self, schema: RelationSchema, auto_index: bool = True) -> None:
        self.schema = schema
        self._rows: list[Row] = []
        self._hash_indexes: dict[str, HashIndex] = {}
        self._sorted_indexes: dict[str, SortedIndex] = {}
        if auto_index:
            for attribute in schema:
                if attribute.is_categorical:
                    self.create_hash_index(attribute.name)
                else:
                    self.create_sorted_index(attribute.name)

    # -- index management -----------------------------------------------------

    def create_hash_index(self, attribute: str) -> HashIndex:
        """Create (or return the existing) hash index on ``attribute``."""
        position = self.schema.position(attribute)
        if attribute not in self._hash_indexes:
            index = HashIndex(attribute)
            for row_id, row in enumerate(self._rows):
                index.add(row[position], row_id)
            self._hash_indexes[attribute] = index
        return self._hash_indexes[attribute]

    def create_sorted_index(self, attribute: str) -> SortedIndex:
        """Create (or return the existing) sorted index on ``attribute``."""
        position = self.schema.position(attribute)
        if attribute not in self._sorted_indexes:
            index = SortedIndex(attribute)
            for row_id, row in enumerate(self._rows):
                index.add(row[position], row_id)
            self._sorted_indexes[attribute] = index
        return self._sorted_indexes[attribute]

    def hash_index(self, attribute: str) -> HashIndex | None:
        return self._hash_indexes.get(attribute)

    def sorted_index(self, attribute: str) -> SortedIndex | None:
        return self._sorted_indexes.get(attribute)

    # -- writes ---------------------------------------------------------------

    def insert(self, row: Sequence[object]) -> int:
        """Validate and append one row; return its row id."""
        validated = self.schema.validate_row(row)
        row_id = len(self._rows)
        self._rows.append(validated)
        for attribute, index in self._hash_indexes.items():
            index.add(validated[self.schema.position(attribute)], row_id)
        for attribute, sorted_index in self._sorted_indexes.items():
            sorted_index.add(validated[self.schema.position(attribute)], row_id)
        return row_id

    def insert_mapping(self, mapping: Mapping[str, object]) -> int:
        """Append one row given as an ``{attribute: value}`` mapping."""
        return self.insert(self.schema.row_from_mapping(dict(mapping)))

    def extend(self, rows: Iterable[Sequence[object]]) -> int:
        """Bulk append; returns the number of rows inserted."""
        count = 0
        for row in rows:
            self.insert(row)
            count += 1
        return count

    # -- reads ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def row(self, row_id: int) -> Row:
        return self._rows[row_id]

    def rows(self, row_ids: Iterable[int] | None = None) -> list[Row]:
        if row_ids is None:
            return list(self._rows)
        return [self._rows[row_id] for row_id in row_ids]

    def column(self, attribute: str) -> list[object]:
        """Materialise one column in row order."""
        position = self.schema.position(attribute)
        return [row[position] for row in self._rows]

    def columns(self, attributes: Sequence[str]) -> list[tuple[object, ...]]:
        """Materialise several columns as a list of value tuples."""
        positions = self.schema.positions(attributes)
        return [tuple(row[p] for p in positions) for row in self._rows]

    def distinct_values(self, attribute: str) -> list[object]:
        """Distinct non-null values of ``attribute``.

        Served from the hash index when one exists, otherwise by a scan.
        """
        index = self._hash_indexes.get(attribute)
        if index is not None:
            return index.distinct_values()
        position = self.schema.position(attribute)
        seen: dict[object, None] = {}
        for row in self._rows:
            value = row[position]
            if value is not None:
                seen.setdefault(value)
        return list(seen)

    def value_counts(self, attribute: str) -> dict[object, int]:
        """Histogram of non-null values of ``attribute``."""
        index = self._hash_indexes.get(attribute)
        if index is not None:
            return index.value_counts()
        position = self.schema.position(attribute)
        counts: dict[object, int] = {}
        for row in self._rows:
            value = row[position]
            if value is not None:
                counts[value] = counts.get(value, 0) + 1
        return counts

    def numeric_extent(self, attribute: str) -> tuple[float, float] | None:
        """(min, max) of a numeric attribute, or None when empty/all-null."""
        if attribute in self._sorted_indexes:
            index = self._sorted_indexes[attribute]
            low, high = index.min_value(), index.max_value()
            if low is None:
                return None
            return (low, high)  # type: ignore[return-value]
        if self.schema.attribute(attribute).is_categorical:
            raise UnknownAttributeError(attribute, self.schema.name)
        values = [v for v in self.column(attribute) if v is not None]
        if not values:
            return None
        return (min(values), max(values))  # type: ignore[arg-type]

    # -- derivation -----------------------------------------------------------

    def sample(self, row_ids: Iterable[int]) -> "Table":
        """New table holding copies of the given rows (same schema)."""
        derived = Table(self.schema)
        for row_id in row_ids:
            derived.insert(self._rows[row_id])
        return derived

    def filter(self, keep: Callable[[Row], bool]) -> "Table":
        """New table with rows passing ``keep`` (same schema)."""
        derived = Table(self.schema)
        for row in self._rows:
            if keep(row):
                derived.insert(row)
        return derived

    def to_mappings(self) -> list[dict[str, object]]:
        """All rows rendered as dicts (test/debug convenience)."""
        return [self.schema.row_to_mapping(row) for row in self._rows]
