"""Exception hierarchy for the relational substrate.

Every error raised by :mod:`repro.db` derives from :class:`DatabaseError`
so callers can catch substrate failures with a single ``except`` clause
while still being able to distinguish schema problems from query
problems when they need to.
"""

from __future__ import annotations

__all__ = [
    "DatabaseError",
    "SchemaError",
    "UnknownAttributeError",
    "TypeMismatchError",
    "QueryError",
    "UnsupportedPredicateError",
    "ProbeLimitExceededError",
]


class DatabaseError(Exception):
    """Base class for every error raised by the relational substrate."""


class SchemaError(DatabaseError):
    """A relation schema is malformed (duplicate names, empty, ...)."""


class UnknownAttributeError(SchemaError):
    """An attribute name does not exist in the relation schema."""

    def __init__(self, attribute: str, relation: str) -> None:
        self.attribute = attribute
        self.relation = relation
        super().__init__(
            f"attribute {attribute!r} is not part of relation {relation!r}"
        )


class TypeMismatchError(SchemaError):
    """A value's type is incompatible with the attribute's declared kind."""


class QueryError(DatabaseError):
    """A selection query is malformed or cannot be executed."""


class UnsupportedPredicateError(QueryError):
    """The boolean engine was handed a predicate it cannot evaluate.

    The autonomous web database only supports the boolean query model;
    imprecise (``like``) constraints must be rewritten by the AIMQ layer
    before they reach the substrate.
    """


class ProbeLimitExceededError(DatabaseError):
    """The probing budget of an autonomous source has been exhausted."""

    def __init__(self, limit: int) -> None:
        self.limit = limit
        super().__init__(f"probe limit of {limit} queries exceeded")
