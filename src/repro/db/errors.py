"""Exception hierarchy for the relational substrate.

Every error raised by :mod:`repro.db` derives from :class:`DatabaseError`
so callers can catch substrate failures with a single ``except`` clause
while still being able to distinguish schema problems from query
problems when they need to.

The autonomous-source setting adds a second axis: *transience*.  A real
Web source fails in two very different ways —

* **transient** failures (a dropped connection, a timeout, a rate-limit
  rejection, a short outage) where retrying the same probe later may
  succeed; these all derive from :class:`TransientSourceError`, which is
  what the retry machinery in :mod:`repro.resilience` is allowed to
  swallow;
* **permanent** failures (schema errors, malformed queries, an exhausted
  probe budget) where retrying is useless and hides a real problem;
  these stay direct :class:`DatabaseError` subclasses, and reprolint's
  REP006 extension flags retry loops that swallow them.

Errors carry structured fields (``probes_issued``, ``budget``,
``retry_after`` ...) rather than message-only payloads so policies can
act on them without parsing strings.
"""

from __future__ import annotations

__all__ = [
    "DatabaseError",
    "SchemaError",
    "UnknownAttributeError",
    "TypeMismatchError",
    "QueryError",
    "UnsupportedPredicateError",
    "ProbeLimitExceededError",
    "TransientSourceError",
    "TransientProbeError",
    "ProbeTimeoutError",
    "SourceThrottledError",
    "SourceUnavailableError",
]


class DatabaseError(Exception):
    """Base class for every error raised by the relational substrate."""


class SchemaError(DatabaseError):
    """A relation schema is malformed (duplicate names, empty, ...)."""


class UnknownAttributeError(SchemaError):
    """An attribute name does not exist in the relation schema."""

    def __init__(self, attribute: str, relation: str) -> None:
        self.attribute = attribute
        self.relation = relation
        super().__init__(
            f"attribute {attribute!r} is not part of relation {relation!r}"
        )


class TypeMismatchError(SchemaError):
    """A value's type is incompatible with the attribute's declared kind."""


class QueryError(DatabaseError):
    """A selection query is malformed or cannot be executed."""


class UnsupportedPredicateError(QueryError):
    """The boolean engine was handed a predicate it cannot evaluate.

    The autonomous web database only supports the boolean query model;
    imprecise (``like``) constraints must be rewritten by the AIMQ layer
    before they reach the substrate.
    """


class ProbeLimitExceededError(DatabaseError):
    """The probing budget of an autonomous source has been exhausted.

    Not transient: the budget models a hard allocation (the paper's
    rate-limited source), so retrying the same probe can never succeed
    within the same accounting window.  Carries the budget and the
    probes already issued so callers can report exactly how far a run
    got before the source cut it off.
    """

    def __init__(self, budget: int, probes_issued: int | None = None) -> None:
        self.budget = budget
        self.probes_issued = budget if probes_issued is None else probes_issued
        # Kept for callers written against the message-only era.
        self.limit = budget
        super().__init__(
            f"probe limit of {budget} queries exceeded "
            f"({self.probes_issued} probes issued)"
        )


class TransientSourceError(DatabaseError):
    """A probe failed in a way a later retry may cure.

    Base class of the transient taxonomy; everything the resilience
    layer is allowed to retry derives from here.  ``retry_after`` is an
    optional hint (seconds) the source attached to the rejection; None
    means the source gave no guidance.
    """

    def __init__(
        self, message: str, retry_after: float | None = None
    ) -> None:
        self.retry_after = retry_after
        super().__init__(message)


class TransientProbeError(TransientSourceError):
    """A probe failed for an unspecified transient reason.

    The catch-all of the taxonomy: dropped connections, mid-flight
    resets, garbled responses — anything where the source is believed
    healthy and an immediate retry is reasonable.
    """

    def __init__(self, message: str = "transient probe failure") -> None:
        super().__init__(message)


class ProbeTimeoutError(TransientSourceError):
    """A probe exceeded its response deadline.

    ``timeout_seconds`` is the deadline that was blown (None when the
    injector or transport did not record one).
    """

    def __init__(
        self,
        message: str = "probe timed out",
        timeout_seconds: float | None = None,
    ) -> None:
        self.timeout_seconds = timeout_seconds
        super().__init__(message)


class SourceThrottledError(TransientSourceError):
    """The source rejected a probe with a rate-limit response.

    ``retry_after`` is the source's back-off hint in seconds; retry
    policies must wait at least that long before the next attempt.
    """

    def __init__(
        self,
        message: str = "source throttled the probe",
        retry_after: float | None = None,
    ) -> None:
        super().__init__(message, retry_after=retry_after)


class SourceUnavailableError(TransientSourceError):
    """The source is entirely down (a windowed outage).

    Transient in the taxonomy sense — outages end — but typically much
    longer-lived than a throttle, which is why circuit breakers treat a
    run of these as reason to stop probing altogether for a while.
    """

    def __init__(
        self,
        message: str = "source unavailable",
        retry_after: float | None = None,
    ) -> None:
        super().__init__(message, retry_after=retry_after)
