"""CSV round-trip for tables.

Lets experiments persist generated datasets and reload them later so
benchmarks do not need to re-synthesise data on every run.  The format
is a plain CSV with a header row; typing is recovered from the schema
(numeric columns are parsed as int when the text has no decimal point,
float otherwise; empty cells become null).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable

from repro.db.columns import DEFAULT_BLOCK_ROWS
from repro.db.errors import SchemaError
from repro.db.schema import RelationSchema
from repro.db.table import ColumnarTable, Table

__all__ = ["write_csv", "read_csv"]


def write_csv(table: Table, path: str | Path) -> int:
    """Write ``table`` to ``path``; return the number of data rows."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.schema.attribute_names)
        count = 0
        for row in table:
            writer.writerow(["" if v is None else v for v in row])
            count += 1
    return count


def _parse_numeric(text: str) -> object:
    if text == "":
        return None
    try:
        if "." in text or "e" in text or "E" in text:
            return float(text)
        return int(text)
    except ValueError as exc:
        raise SchemaError(f"cannot parse numeric cell {text!r}") from exc


def _parse_categorical(text: str) -> object:
    return None if text == "" else text


def read_csv(
    schema: RelationSchema,
    path: str | Path,
    columnar: bool = False,
    block_rows: int = DEFAULT_BLOCK_ROWS,
) -> Table:
    """Load a table previously written by :func:`write_csv`.

    The header must list exactly the schema's attributes, though column
    order in the file may differ from schema order.  With
    ``columnar=True`` the rows land directly in a
    :class:`ColumnarTable` (same contents, columnar physical layout).
    """
    path = Path(path)
    table: Table = (
        ColumnarTable(schema, block_rows=block_rows) if columnar else Table(schema)
    )
    with path.open("r", newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise SchemaError(
                f"{path} is empty; expected a header row"
            ) from None
        if sorted(header) != sorted(schema.attribute_names):
            raise SchemaError(
                f"{path} header {header!r} does not match schema "
                f"{schema.attribute_names!r}"
            )
        parsers = []
        for name in header:
            if schema.attribute(name).is_numeric:
                parsers.append(_parse_numeric)
            else:
                parsers.append(_parse_categorical)
        reorder = [header.index(name) for name in schema.attribute_names]
        for line_number, cells in enumerate(reader, start=2):
            if len(cells) != len(header):
                raise SchemaError(
                    f"{path}:{line_number}: expected {len(header)} cells, "
                    f"got {len(cells)}"
                )
            parsed = [parsers[i](cells[i]) for i in range(len(cells))]
            table.insert([parsed[i] for i in reorder])
    return table


def write_rows_csv(
    schema: RelationSchema, rows: Iterable[tuple], path: str | Path
) -> int:
    """Write raw rows (already schema-ordered) without building a Table."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(schema.attribute_names)
        count = 0
        for row in rows:
            writer.writerow(["" if v is None else v for v in row])
            count += 1
    return count
