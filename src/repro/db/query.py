"""Conjunctive selection queries.

A :class:`SelectionQuery` is a conjunction of precise predicates over a
single relation — exactly the class of queries a Web form interface can
express and the only class the boolean substrate answers (paper §3.1).
AIMQ's relaxation machinery manipulates these objects heavily: the base
query, every tuple-as-query, and every relaxed query are all
``SelectionQuery`` instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

from repro.db.errors import QueryError
from repro.db.predicates import Eq, Predicate, parse_op
from repro.db.schema import RelationSchema

__all__ = ["SelectionQuery"]


@dataclass(frozen=True)
class SelectionQuery:
    """A conjunction of predicates over one relation.

    Instances are immutable; the relaxation helpers return new queries.

    >>> from repro.db.predicates import Eq, Lt
    >>> q = SelectionQuery((Eq("Model", "Camry"), Lt("Price", 10000)))
    >>> q.bound_attributes
    ('Model', 'Price')
    """

    predicates: tuple[Predicate, ...]
    _by_attribute: dict[str, tuple[Predicate, ...]] = field(
        init=False, repr=False, compare=False, hash=False, default_factory=dict
    )
    # Lazily memoised canonicalisation (instances are immutable, so the
    # first computation is valid forever).  Stored via object.__setattr__
    # like _by_attribute because the dataclass is frozen.
    _canonical_cache: tuple[tuple[object, ...], ...] | None = field(
        init=False, repr=False, compare=False, hash=False, default=None
    )
    _canonical_set_cache: frozenset[tuple[object, ...]] | None = field(
        init=False, repr=False, compare=False, hash=False, default=None
    )

    def __post_init__(self) -> None:
        by_attribute: dict[str, list[Predicate]] = {}
        for predicate in self.predicates:
            by_attribute.setdefault(predicate.attribute, []).append(predicate)
        object.__setattr__(
            self,
            "_by_attribute",
            {name: tuple(preds) for name, preds in by_attribute.items()},
        )

    # -- constructors ---------------------------------------------------------

    @classmethod
    def conjunction(cls, predicates: Iterable[Predicate]) -> "SelectionQuery":
        return cls(tuple(predicates))

    @classmethod
    def from_pairs(
        cls, pairs: Iterable[tuple[str, str, object]]
    ) -> "SelectionQuery":
        """Build from ``(attribute, operator, value)`` triples.

        >>> SelectionQuery.from_pairs([("Model", "=", "Camry")]).describe()
        "Model = 'Camry'"
        """
        return cls(tuple(parse_op(attr, op, value) for attr, op, value in pairs))

    @classmethod
    def equalities(cls, bindings: Mapping[str, object]) -> "SelectionQuery":
        """Build a fully bound equality query (a tuple-as-query)."""
        return cls(tuple(Eq(attr, value) for attr, value in bindings.items()))

    @classmethod
    def match_all(cls) -> "SelectionQuery":
        """The empty conjunction: matches every tuple."""
        return cls(())

    # -- inspection -----------------------------------------------------------

    def __iter__(self) -> Iterator[Predicate]:
        return iter(self.predicates)

    def __len__(self) -> int:
        return len(self.predicates)

    @property
    def bound_attributes(self) -> tuple[str, ...]:
        """Attribute names constrained by this query (first-seen order)."""
        seen: dict[str, None] = {}
        for predicate in self.predicates:
            seen.setdefault(predicate.attribute)
        return tuple(seen)

    def predicates_on(self, attribute: str) -> tuple[Predicate, ...]:
        return self._by_attribute.get(attribute, ())

    def equality_binding(self, attribute: str) -> object | None:
        """Return the value an ``Eq`` predicate pins ``attribute`` to."""
        for predicate in self.predicates_on(attribute):
            if isinstance(predicate, Eq):
                return predicate.value
        return None

    def validate_against(self, schema: RelationSchema) -> None:
        """Raise if any predicate references an unknown attribute."""
        for predicate in self.predicates:
            schema.attribute(predicate.attribute)

    # -- canonicalisation & containment ---------------------------------------

    def canonical_predicates(self) -> tuple[tuple[object, ...], ...]:
        """Sorted canonical forms of every conjunct (memoised).

        Sorting by ``repr`` keeps mixed value types comparable and makes
        the tuple insensitive to conjunct order, so two queries that
        describe the same form submission share one canonical rendering.
        The result is cached on the instance: relaxation re-canonicalises
        the same queries across every base-set tuple, and the probe cache
        plus the semantic planner both key on this value.
        """
        cached = self._canonical_cache
        if cached is None:
            cached = tuple(
                sorted((p.canonical_form() for p in self.predicates), key=repr)
            )
            object.__setattr__(self, "_canonical_cache", cached)
        return cached

    def canonical_form_set(self) -> frozenset[tuple[object, ...]]:
        """The canonical conjunct forms as a set (memoised).

        Set inclusion over these forms is the planner's containment
        test; see :meth:`subsumes`.
        """
        cached = self._canonical_set_cache
        if cached is None:
            cached = frozenset(self.canonical_predicates())
            object.__setattr__(self, "_canonical_set_cache", cached)
        return cached

    def subsumes(self, other: "SelectionQuery") -> bool:
        """True when every row matching ``other`` also matches this query.

        A conjunction Q1 subsumes Q2 exactly when Q1's conjuncts are a
        subset of Q2's: Q2 enforces everything Q1 does and possibly
        more, so ``rows(Q2) ⊆ rows(Q1)``.  The test is *syntactic* —
        conjuncts are compared by canonical form, never by implied
        ranges — which keeps it trivially sound for every operator the
        facade supports at the cost of missing some semantic
        containments (e.g. ``Price < 5`` vs ``Price < 10``).
        """
        return self.canonical_form_set() <= other.canonical_form_set()

    def residual_against(self, container: "SelectionQuery") -> tuple[Predicate, ...]:
        """Conjuncts of this query not already enforced by ``container``.

        Only meaningful when ``container.subsumes(self)``: filtering the
        container's answer set by the returned predicates then yields
        exactly this query's answer set (in the container's row order).
        """
        covered = container.canonical_form_set()
        return tuple(
            p for p in self.predicates if p.canonical_form() not in covered
        )

    # -- evaluation -----------------------------------------------------------

    def matches(self, row: Sequence[object], schema: RelationSchema) -> bool:
        """Boolean query model: full conjunction over one row."""
        for predicate in self.predicates:
            if not predicate.matches(row[schema.position(predicate.attribute)]):
                return False
        return True

    # -- rewriting (used by the relaxation layer) -----------------------------

    def without_attributes(self, attributes: Iterable[str]) -> "SelectionQuery":
        """Drop every predicate on the given attributes.

        This is the primitive behind query relaxation: removing the
        binding of the least-important attribute(s) from a tuple-as-query.
        """
        dropped = set(attributes)
        return SelectionQuery(
            tuple(p for p in self.predicates if p.attribute not in dropped)
        )

    def replacing(self, attribute: str, new_predicates: Iterable[Predicate]) -> "SelectionQuery":
        """Swap the predicates on ``attribute`` for new ones."""
        replacement = tuple(new_predicates)
        for predicate in replacement:
            if predicate.attribute != attribute:
                raise QueryError(
                    f"replacement predicate targets {predicate.attribute!r}, "
                    f"expected {attribute!r}"
                )
        kept = tuple(p for p in self.predicates if p.attribute != attribute)
        return SelectionQuery(kept + replacement)

    def and_also(self, *predicates: Predicate) -> "SelectionQuery":
        """Return this query with extra conjuncts appended."""
        return SelectionQuery(self.predicates + tuple(predicates))

    # -- rendering ------------------------------------------------------------

    def describe(self) -> str:
        if not self.predicates:
            return "<match-all>"
        return " AND ".join(p.describe() for p in self.predicates)

    def __str__(self) -> str:  # pragma: no cover - delegation
        return self.describe()
