"""Bounded LRU cache over selection probes (opt-in).

Relaxation floods the source with near-duplicate probes: GuidedRelax
turns every base-set tuple into a fully bound query and then drops
attribute subsets, and sibling base tuples — which by construction
share most attribute values — end up issuing *identical* relaxed
queries.  Against a static snapshot of an autonomous source those
repeats are pure waste, so the facade can optionally remember recent
results.

Design constraints, in order:

* **Equivalence.**  A cache hit returns the same :class:`QueryResult`
  payload the source returned for the original probe (flagged
  ``from_cache=True``), so answer sets are identical with the cache on
  or off; only the probe accounting differs.
* **Honest accounting.**  The paper's efficiency experiments (Figs
  6–7) count *issued* probes, so the cache is off by default and, when
  enabled, hits are logged separately (``ProbeLog.cache_hits``,
  ``RelaxationTrace.probes_cached``) and never charge the probe
  budget — no form was submitted.
* **Canonical keys.**  Two conjunctions that differ only in predicate
  order (or in ``IsIn`` value order) describe the same form submission
  and share one cache entry.

The cache assumes the source is static between probes, which is how
every experiment in this reproduction treats it; see
``docs/PERFORMANCE.md`` for the discussion.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable

from repro.db.executor import QueryResult
from repro.db.query import SelectionQuery

__all__ = ["ProbeCache", "canonical_probe_key"]


def canonical_probe_key(
    query: SelectionQuery, limit: int | None, offset: int
) -> Hashable:
    """Cache key for one probe: canonical conjunction + result window.

    Canonicalisation is delegated to (and memoised on) the query via
    :meth:`SelectionQuery.canonical_predicates`, so repeated lookups of
    the same query object — the relaxation hot path — pay for sorting
    once.  The *effective* limit must be passed in — the facade folds
    its ``result_cap`` into it before looking up.
    """
    return (query.canonical_predicates(), limit, offset)


class ProbeCache:
    """A bounded LRU map from canonical probe keys to results.

    ``capacity`` bounds the number of cached probes; inserting past it
    evicts the least recently used entry.  Both row probes and count
    probes share the bound (count entries are keyed with a distinct
    marker so the two kinds never collide).
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError("probe cache capacity must be at least 1")
        self.capacity = capacity
        self._entries: OrderedDict[Hashable, object] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get_result(
        self, query: SelectionQuery, limit: int | None, offset: int
    ) -> QueryResult | None:
        entry = self._get(("q", canonical_probe_key(query, limit, offset)))
        return entry if isinstance(entry, QueryResult) else None

    def put_result(
        self,
        query: SelectionQuery,
        limit: int | None,
        offset: int,
        result: QueryResult,
    ) -> bool:
        """Cache one row-probe result; True when an entry was evicted."""
        return self._put(("q", canonical_probe_key(query, limit, offset)), result)

    def get_count(self, query: SelectionQuery) -> int | None:
        entry = self._get(("c", canonical_probe_key(query, None, 0)))
        return entry if isinstance(entry, int) else None

    def put_count(self, query: SelectionQuery, matches: int) -> bool:
        """Cache one count-probe result; True when an entry was evicted."""
        return self._put(("c", canonical_probe_key(query, None, 0)), matches)

    def clear(self) -> None:
        """Drop every entry (keeps the hit/miss/eviction counters)."""
        self._entries.clear()

    # -- internals ---------------------------------------------------------

    def _get(self, key: Hashable) -> object | None:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def _put(self, key: Hashable, entry: object) -> bool:
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = entry
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
            return True
        return False
