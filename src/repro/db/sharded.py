"""Sharded autonomous source: scatter-gather over N web databases.

Real mediator deployments rarely face one monolithic source: listings
live behind many partial endpoints.  :class:`ShardedWebDatabase`
models that — rows are hash-partitioned across N independent
:class:`AutonomousWebDatabase` shards and every ``query``/``count``
probe is scattered to all of them, with results gathered back into the
exact answer the unsharded facade would have produced.

Bit-identity contract
---------------------

With all shards healthy, the sharded facade is indistinguishable from
an unsharded one over the same rows:

* each shard keeps its rows in global-row-id order, so a per-shard
  result page is already sorted by global id once mapped through the
  shard's id table; a k-way merge (``heapq.merge``) restores the
  canonical ascending-id order;
* a window of ``offset``/``limit`` is satisfied by asking every shard
  for its first ``offset + limit`` matches (offset 0): the global
  window is a subset of the union of those pages, so the merge can
  page exactly like the single executor does;
* the merged result is ``truncated`` iff some shard's page was cut or
  matches were left over beyond the gathered window — exactly when the
  unsharded executor would have set the flag.

Probe accounting rolls up as documented in docs/PERFORMANCE.md §8: the
facade's :class:`ProbeLog` records one entry per *logical* probe (the
number Figures 6–7 count), while each shard's own log records the
fan-out traffic; ``execution_stats`` is the sum over shard engines.

Degradation
-----------

Shards fail independently (per-shard fault policies) and may be
guarded by injected per-shard *guards* — circuit breakers in practice,
but this module only knows the :class:`ShardGuard` protocol because
``repro.db`` must not depend on ``repro.resilience`` (layering, and
REP003 enforces it).  With ``partial_results=True`` a failing shard is
skipped, the gathered answer covers the healthy shards only, and the
failure is reported through the failure listener (the resilience
wiring routes it into a ``DegradationReport``); with the default
``partial_results=False`` the shard's error propagates unchanged.
Permanent :class:`DatabaseError`\\ s always propagate — degradation is
for source trouble, not for caller bugs.
"""

from __future__ import annotations

import heapq
import threading
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Callable, Iterator, Protocol, Sequence

from repro.db.columns import DEFAULT_BLOCK_ROWS
from repro.db.errors import (
    DatabaseError,
    ProbeLimitExceededError,
    TransientSourceError,
)
from repro.db.executor import ExecutionStats, QueryResult
from repro.db.faults import FaultPolicy
from repro.db.probe_cache import ProbeCache
from repro.db.query import SelectionQuery
from repro.db.schema import RelationSchema
from repro.db.table import ColumnarTable, Table
from repro.db.webdb import (
    AccountingWindow,
    AutonomousWebDatabase,
    ProbeLog,
    _emit_probe_event,
    _record_cache_metrics,
    _record_probe_metrics,
)
from repro.obs.runtime import OBS

__all__ = ["ShardGuard", "ShardFailure", "ShardedWebDatabase", "shard_of"]


class ShardGuard(Protocol):
    """Admission control for one shard (a circuit breaker, in practice).

    ``before_call`` may raise to refuse the call (the exception is
    treated as a shard failure); ``record_success``/``record_failure``
    feed the outcome back.  The protocol keeps ``repro.db`` free of any
    ``repro.resilience`` import — guards are injected from above.
    """

    def before_call(self) -> None: ...

    def record_success(self) -> None: ...

    def record_failure(self, error: BaseException) -> None: ...


@dataclass(frozen=True)
class ShardFailure:
    """One shard dropping out of one scatter (reported to the listener)."""

    shard: int
    stage: str
    error: BaseException


def shard_of(row: tuple, n_shards: int) -> int:
    """Deterministic home shard of a row.

    CRC32 over the row's repr — *not* ``hash()``, whose per-process
    salting would partition differently on every run.
    """
    return zlib.crc32(repr(row).encode("utf-8")) % n_shards


class ShardedWebDatabase:
    """Form-interface facade over hash-partitioned shard sources.

    Construct via :meth:`partition`.  Result caps, probe budgets and
    the probe cache live at this facade (the logical source); the
    shards underneath must be uncapped and unbudgeted, or gathered
    pages could not reproduce the unsharded answer.

    Thread-safe the same way :class:`AutonomousWebDatabase` is: one
    re-entrant lock serialises each logical probe end to end (scatter,
    gather, accounting), so concurrent planner workers observe
    consistent counters.
    """

    def __init__(
        self,
        shards: Sequence[AutonomousWebDatabase],
        global_ids: Sequence[Sequence[int]],
        result_cap: int | None = None,
        probe_budget: int | None = None,
        probe_cache_capacity: int | None = None,
        partial_results: bool = False,
    ) -> None:
        if not shards:
            raise ValueError("a sharded database needs at least one shard")
        if len(shards) != len(global_ids):
            raise ValueError("one global-id table per shard is required")
        for shard in shards:
            if shard.result_cap is not None or shard.probe_budget is not None:
                raise ValueError(
                    "shards must be uncapped/unbudgeted; caps and budgets "
                    "belong to the sharded facade"
                )
        self._shards = tuple(shards)
        self._global_ids = tuple(tuple(ids) for ids in global_ids)
        self.result_cap = result_cap
        self.probe_budget = probe_budget
        self.partial_results = partial_results
        self.log = ProbeLog()
        self._accounting_lock = threading.RLock()
        self._guards: list[ShardGuard | None] = [None for _ in self._shards]
        self._failure_listener: Callable[[ShardFailure], None] | None = None
        self._probe_cache: ProbeCache | None = (
            ProbeCache(probe_cache_capacity)
            if probe_cache_capacity is not None
            else None
        )

    @classmethod
    def partition(
        cls,
        table: Table,
        n_shards: int,
        columnar: bool = True,
        auto_index: bool = True,
        block_rows: int = DEFAULT_BLOCK_ROWS,
        result_cap: int | None = None,
        probe_budget: int | None = None,
        probe_cache_capacity: int | None = None,
        partial_results: bool = False,
    ) -> "ShardedWebDatabase":
        """Hash-partition ``table`` into ``n_shards`` shard sources.

        Row ``r`` goes to shard :func:`shard_of`\\ ``(r, n_shards)``;
        each shard remembers the global row ids it holds, in order, so
        gathered results can be mapped back.  Shards default to the
        columnar engine (``columnar=False`` keeps row tuples).
        """
        if n_shards < 1:
            raise ValueError("n_shards must be at least 1")
        shard_tables: list[Table] = [
            ColumnarTable(table.schema, auto_index=auto_index, block_rows=block_rows)
            if columnar
            else Table(table.schema, auto_index=auto_index)
            for _ in range(n_shards)
        ]
        global_ids: list[list[int]] = [[] for _ in range(n_shards)]
        for row_id, row in enumerate(table):
            home = shard_of(row, n_shards)
            shard_tables[home].insert(row)
            global_ids[home].append(row_id)
        shards = [AutonomousWebDatabase(shard) for shard in shard_tables]
        return cls(
            shards,
            global_ids,
            result_cap=result_cap,
            probe_budget=probe_budget,
            probe_cache_capacity=probe_cache_capacity,
            partial_results=partial_results,
        )

    # -- topology / metadata ---------------------------------------------------

    @property
    def n_shards(self) -> int:
        return len(self._shards)

    @property
    def schema(self) -> RelationSchema:
        return self._shards[0].schema

    @property
    def name(self) -> str:
        return self._shards[0].name

    def form_options(self, attribute: str) -> list[object]:
        """Union of the shards' drop-down options (sorted, like a form)."""
        seen: dict[object, None] = {}
        for shard in self._shards:
            for option in shard.form_options(attribute):
                seen.setdefault(option)
        return sorted(seen, key=str)

    def cardinality_hint(self) -> int:
        """Sum of the shards' advertised totals."""
        return sum(shard.cardinality_hint() for shard in self._shards)

    # -- guards, faults, failure reporting -------------------------------------

    def attach_guards(self, guards: Sequence[ShardGuard]) -> None:
        """Install one admission guard per shard (index-aligned)."""
        if len(guards) != len(self._shards):
            raise ValueError("need exactly one guard per shard")
        with self._accounting_lock:
            self._guards = list(guards)

    def set_failure_listener(
        self, listener: Callable[[ShardFailure], None] | None
    ) -> None:
        """Observe shard dropouts (the resilience wiring's hook)."""
        with self._accounting_lock:
            self._failure_listener = listener

    def set_shard_fault_policy(self, shard: int, policy: FaultPolicy | None) -> None:
        """Attach a seeded fault schedule to one shard source."""
        self._shards[shard].set_fault_policy(policy)

    # -- the boolean query interface -------------------------------------------

    def query(
        self,
        query: SelectionQuery,
        limit: int | None = None,
        offset: int = 0,
    ) -> QueryResult:
        """Scatter one selection probe, gather the canonical answer.

        Same window semantics as the unsharded facade: ``limit`` may
        reduce (never exceed) ``result_cap``, ``offset`` pages forward,
        and the gathered rows arrive in ascending global row-id order.
        One logical probe moves the facade's :class:`ProbeLog` once,
        however many shards were contacted.
        """
        with self._accounting_lock:
            return self._query_locked(query, limit, offset)

    def _query_locked(
        self,
        query: SelectionQuery,
        limit: int | None,
        offset: int,
    ) -> QueryResult:
        if offset < 0:
            raise ValueError("offset cannot be negative")
        effective_limit = self.result_cap
        if limit is not None:
            effective_limit = (
                limit if effective_limit is None else min(limit, effective_limit)
            )
        cache = self._probe_cache
        if cache is not None:
            cached = cache.get_result(query, effective_limit, offset)
            if cached is not None:
                self.log.record_cache_hit()
                _record_cache_metrics(hit=True)
                _emit_probe_event(
                    query, kind="query", rows=len(cached), from_cache=True
                )
                return replace(cached, from_cache=True)
        self._check_budget()
        per_shard_limit = (
            None if effective_limit is None else offset + effective_limit
        )
        pages: list[list[tuple[int, tuple]]] = []
        shard_truncated = False
        degraded = False
        for index, shard in enumerate(self._shards):
            if not self._admit(index, "query"):
                degraded = True
                continue
            try:
                # The facade lock IS the admission gate: shard sub-probes
                # are one logical probe, serialised by design (PR 7).
                sub = shard.query(  # reprolint: disable=REP009
                    query, limit=per_shard_limit, offset=0
                )
            except TransientSourceError as error:
                self._shard_failed(index, "query", error)
                degraded = True
                continue
            self._shard_succeeded(index)
            shard_truncated = shard_truncated or sub.truncated
            ids = self._global_ids[index]
            pages.append(
                [(ids[local], row) for local, row in zip(sub.row_ids, sub.rows)]
            )
        matched_ids: list[int] = []
        rows: list[tuple] = []
        skipped = 0
        leftover = False
        for global_id, row in heapq.merge(*pages):
            if skipped < offset:
                skipped += 1
                continue
            if (
                effective_limit is not None
                and len(matched_ids) >= effective_limit
            ):
                leftover = True
                break
            matched_ids.append(global_id)
            rows.append(row)
        result = QueryResult(
            query=query,
            row_ids=tuple(matched_ids),
            rows=tuple(rows),
            truncated=shard_truncated or leftover,
        )
        self.log.record(result)
        if cache is not None and not degraded:
            # A degraded gather is not the logical source's real answer;
            # caching it would replay the dropout after recovery.
            evicted = cache.put_result(query, effective_limit, offset, result)
            _record_cache_metrics(hit=False, evicted=evicted)
        if OBS.enabled:
            _record_probe_metrics(query, kind="query", empty=not result)
            if result.truncated and self.result_cap is not None:
                OBS.registry.counter(
                    "repro_db_result_cap_truncations_total",
                    "Probes whose result page was cut by the facade's cap.",
                ).inc()
        _emit_probe_event(
            query,
            kind="query",
            rows=len(result),
            from_cache=False,
            truncated=result.truncated,
        )
        return result

    def count(self, query: SelectionQuery) -> int:
        """Scatter one count probe; the gathered count is the shard sum."""
        with self._accounting_lock:
            return self._count_locked(query)

    def _count_locked(self, query: SelectionQuery) -> int:
        cache = self._probe_cache
        if cache is not None:
            cached = cache.get_count(query)
            if cached is not None:
                self.log.record_cache_hit()
                _record_cache_metrics(hit=True)
                _emit_probe_event(
                    query, kind="count", rows=cached, from_cache=True
                )
                return cached
        self._check_budget()
        matches = 0
        degraded = False
        for index, shard in enumerate(self._shards):
            if not self._admit(index, "count"):
                degraded = True
                continue
            try:
                # Same rationale as the query path: sub-counts are one
                # logical probe under the admission-gate lock.
                matches += shard.count(query)  # reprolint: disable=REP009
            except TransientSourceError as error:
                self._shard_failed(index, "count", error)
                degraded = True
                continue
            self._shard_succeeded(index)
        self.log.record_count(matches)
        if cache is not None and not degraded:
            evicted = cache.put_count(query, matches)
            _record_cache_metrics(hit=False, evicted=evicted)
        if OBS.enabled:
            _record_probe_metrics(query, kind="count", empty=matches == 0)
        _emit_probe_event(query, kind="count", rows=matches, from_cache=False)
        return matches

    # -- scatter plumbing ------------------------------------------------------

    def _admit(self, index: int, stage: str) -> bool:
        """Ask shard ``index``'s guard for admission.

        A guard refusal (e.g. an open circuit breaker) is a shard
        failure like any other — reported, and fatal unless partial
        results are enabled.  Database errors from a guard are caller
        bugs and propagate.
        """
        guard = self._guards[index]
        if guard is None:
            return True
        try:
            guard.before_call()
        except DatabaseError:
            raise
        except Exception as error:
            self._report_failure(ShardFailure(index, stage, error))
            return False
        return True

    def _shard_failed(
        self, index: int, stage: str, error: BaseException
    ) -> None:
        guard = self._guards[index]
        if guard is not None:
            guard.record_failure(error)
        self._report_failure(ShardFailure(index, stage, error))

    def _shard_succeeded(self, index: int) -> None:
        guard = self._guards[index]
        if guard is not None:
            guard.record_success()

    def _report_failure(self, failure: ShardFailure) -> None:
        if OBS.enabled:
            OBS.registry.counter(
                "repro_db_shard_failures_total",
                "Shards dropped from a scatter, by stage.",
                labels=("stage",),
            ).labels(stage=failure.stage).inc()
        listener = self._failure_listener
        if listener is not None:
            listener(failure)
        if not self.partial_results:
            raise failure.error

    # -- bookkeeping -----------------------------------------------------------

    @property
    def probe_cache(self) -> ProbeCache | None:
        return self._probe_cache

    def enable_probe_cache(self, capacity: int = 1024) -> ProbeCache:
        with self._accounting_lock:
            self._probe_cache = ProbeCache(capacity)
            return self._probe_cache

    def disable_probe_cache(self) -> None:
        with self._accounting_lock:
            self._probe_cache = None

    @property
    def execution_stats(self) -> ExecutionStats:
        """Engine-side work rolled up across every shard."""
        merged = ExecutionStats()
        for shard in self._shards:
            merged.merge(shard.execution_stats)
        return merged

    def shard_probe_logs(self) -> tuple[ProbeLog, ...]:
        """Per-shard fan-out traffic (snapshots, index-aligned).

        Roll-up rule: the facade's own :attr:`log` counts *logical*
        probes; each shard log counts the physical fan-out, so a fully
        healthy scatter moves every shard's ``probes_issued`` once per
        logical probe.
        """
        return tuple(shard.log.snapshot() for shard in self._shards)

    def reset_accounting(self) -> None:
        """Zero the facade log and every shard's accounting."""
        self.log.reset()
        for shard in self._shards:
            shard.reset_accounting()

    @contextmanager
    def accounting_scope(self) -> Iterator[AccountingWindow]:
        """Nestable accounting window (same semantics as the unsharded one)."""
        window = AccountingWindow(
            self, self.log.snapshot(), self.execution_stats.snapshot()
        )
        try:
            yield window
        finally:
            window.close()

    def _check_budget(self) -> None:
        if (
            self.probe_budget is not None
            and self.log.probes_issued >= self.probe_budget
        ):
            if OBS.enabled:
                OBS.registry.counter(
                    "repro_db_probe_budget_exhausted_total",
                    "Probes refused because the source's budget ran out.",
                ).inc()
            raise ProbeLimitExceededError(
                self.probe_budget, probes_issued=self.log.probes_issued
            )
