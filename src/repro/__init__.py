"""AIMQ — Answering Imprecise Queries over Autonomous Web Databases.

A full reproduction of Nambiar & Kambhampati (ICDE 2006): a domain- and
user-independent system that answers imprecise ("like") queries over a
boolean-model Web database by

1. mining approximate functional dependencies and keys (TANE, g3) to
   derive an attribute-importance ordering that guides query
   relaxation, and
2. mining categorical value similarities from AV-pair supertuples with
   an importance-weighted bag-Jaccard measure.

Quick start::

    from repro import AIMQSettings, ImpreciseQuery, build_model
    from repro.datasets import cardb_webdb

    webdb = cardb_webdb(10_000)
    model = build_model(webdb, sample_size=2_500)
    engine = model.engine(webdb)
    answers = engine.answer(
        ImpreciseQuery.like("CarDB", Model="Camry", Price=10_000), k=10
    )
    print(answers.describe(webdb.schema))

Subpackages: :mod:`repro.db` (relational substrate), :mod:`repro.afd`
(dependency miner), :mod:`repro.sampling` (data collector),
:mod:`repro.simmining` (similarity miner), :mod:`repro.core` (AIMQ
itself), :mod:`repro.rock` (the ROCK comparator), :mod:`repro.datasets`
(synthetic CarDB/CensusDB) and :mod:`repro.evalx` (experiments).
"""

from repro.core import (
    AIMQEngine,
    AIMQModel,
    AIMQSettings,
    AnswerSet,
    AttributeOrdering,
    GuidedRelax,
    ImpreciseQuery,
    RandomRelax,
    RankedAnswer,
    build_model,
    build_model_from_sample,
    compute_attribute_ordering,
)
from repro.db import (
    AttributeKind,
    AutonomousWebDatabase,
    RelationSchema,
    SelectionQuery,
    Table,
)

__version__ = "1.0.0"

__all__ = [
    "AIMQEngine",
    "AIMQModel",
    "AIMQSettings",
    "AnswerSet",
    "AttributeKind",
    "AttributeOrdering",
    "AutonomousWebDatabase",
    "GuidedRelax",
    "ImpreciseQuery",
    "RandomRelax",
    "RankedAnswer",
    "RelationSchema",
    "SelectionQuery",
    "Table",
    "__version__",
    "build_model",
    "build_model_from_sample",
    "compute_attribute_ordering",
]
