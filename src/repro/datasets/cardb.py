"""Synthetic CarDB: the Yahoo Autos stand-in.

Projects the paper's relation ``CarDB(Make, Model, Year, Price,
Mileage, Location, Color)`` with the paper's typing: Make, Model, Year,
Location and Color categorical; Price and Mileage numeric (§6.1).

The generator reproduces the statistical structure AIMQ mines:

* ``Model → Make`` holds exactly (the catalogue is a function);
* Price falls with age through exponential depreciation plus noise and
  a mileage-wear discount, so Year/Price/Mileage co-vary;
* Mileage grows with age at a segment-dependent rate;
* Location and Color have mildly make-/segment-skewed distributions —
  enough signal for supertuples, not enough to dominate;
* Price is quoted to $100 and Mileage to 500 miles, like real listings,
  which keeps equality probing and key mining meaningful.

Determinism: one ``seed`` fixes the whole dataset.
"""

from __future__ import annotations

import math
import random

from repro.datasets.catalog import CATALOG, COLORS, LOCATIONS, SEGMENTS, ModelSpec
from repro.db.schema import RelationSchema
from repro.db.table import DEFAULT_BLOCK_ROWS, ColumnarTable, Table
from repro.db.webdb import AutonomousWebDatabase

__all__ = ["CARDB_SCHEMA", "generate_cardb", "cardb_webdb", "YEAR_RANGE"]


CARDB_SCHEMA = RelationSchema.build(
    "CarDB",
    categorical=("Make", "Model", "Year", "Location", "Color"),
    numeric=("Price", "Mileage"),
    order=("Make", "Model", "Year", "Price", "Mileage", "Location", "Color"),
)

YEAR_RANGE = (1984, 2005)

# Annual depreciation by segment: luxury and sports cars shed value
# faster, trucks hold it.
_DEPRECIATION = {
    "economy": 0.13,
    "midsize": 0.13,
    "fullsize": 0.14,
    "luxury": 0.17,
    "sports": 0.15,
    "suv": 0.12,
    "truck": 0.10,
    "van": 0.14,
}

# Mild regional skew: domestic makes list more in the heartland,
# imports on the coasts.  Index into LOCATIONS.
_DOMESTIC = {"Ford", "Chevrolet", "Dodge", "Mercury"}
_COASTAL_LOCATIONS = ("Los Angeles", "San Diego", "Seattle", "Miami")
_HEARTLAND_LOCATIONS = ("Dallas", "Houston", "Chicago", "Detroit", "Denver")

# Color taste varies by segment; sports skew red/black, trucks white.
_COLOR_TILT = {
    "sports": {"Red": 3.0, "Black": 2.0},
    "truck": {"White": 3.0, "Silver": 1.5},
    "luxury": {"Black": 2.5, "Silver": 2.0},
    "van": {"White": 2.0, "Gold": 1.3},
}


def _pick_weighted(rng: random.Random, items: tuple, weights: list[float]):
    return rng.choices(items, weights=weights, k=1)[0]


def _pick_model(rng: random.Random) -> ModelSpec:
    weights = [spec.popularity for spec in CATALOG]
    return _pick_weighted(rng, CATALOG, weights)


def _pick_year(rng: random.Random, reference_year: int) -> int:
    """Listing years skew recent: age is geometric-ish, capped."""
    low, high = YEAR_RANGE
    age = min(int(rng.expovariate(1 / 6.0)), reference_year - low)
    return max(low, reference_year - age)


def _pick_location(rng: random.Random, make: str) -> str:
    weights = []
    for location in LOCATIONS:
        weight = 1.0
        if make in _DOMESTIC and location in _HEARTLAND_LOCATIONS:
            weight = 1.8
        elif make not in _DOMESTIC and location in _COASTAL_LOCATIONS:
            weight = 1.6
        weights.append(weight)
    return _pick_weighted(rng, LOCATIONS, weights)


def _pick_color(rng: random.Random, segment: str) -> str:
    tilt = _COLOR_TILT.get(segment, {})
    weights = [tilt.get(color, 1.0) for color in COLORS]
    return _pick_weighted(rng, COLORS, weights)


def _price_and_mileage(
    rng: random.Random, spec: ModelSpec, year: int, reference_year: int
) -> tuple[int, int]:
    age = reference_year - year
    segment = SEGMENTS[spec.segment]
    miles = age * rng.gauss(segment.miles_per_year, segment.miles_per_year * 0.25)
    miles = max(0.0, miles) + rng.uniform(0, 4000)
    mileage = int(round(miles / 500.0) * 500)

    depreciation = _DEPRECIATION[spec.segment]
    value = spec.base_price * math.exp(-depreciation * age)
    # Wear discount: every 10k miles beyond the age-expected mileage
    # knocks ~3% off; being under-driven adds a little.
    expected = age * segment.miles_per_year
    wear = (miles - expected) / 10000.0
    value *= max(0.4, 1.0 - 0.03 * wear)
    value *= rng.gauss(1.0, 0.08)
    price = max(500, int(round(value / 100.0) * 100))
    return price, mileage


def generate_cardb(
    n_rows: int,
    seed: int = 7,
    reference_year: int = 2005,
    auto_index: bool = True,
    columnar: bool = False,
    block_rows: int = DEFAULT_BLOCK_ROWS,
) -> Table:
    """Generate a CarDB instance with ``n_rows`` listings.

    ``columnar=True`` stores the listings in the columnar engine
    (:class:`~repro.db.table.ColumnarTable`) instead of row tuples —
    same rows, same ids, same answers.

    >>> table = generate_cardb(100)
    >>> len(table)
    100
    """
    if n_rows < 0:
        raise ValueError("n_rows cannot be negative")
    rng = random.Random(seed)
    table: Table = (
        ColumnarTable(CARDB_SCHEMA, auto_index=auto_index, block_rows=block_rows)
        if columnar
        else Table(CARDB_SCHEMA, auto_index=auto_index)
    )
    for _ in range(n_rows):
        spec = _pick_model(rng)
        year = _pick_year(rng, reference_year)
        price, mileage = _price_and_mileage(rng, spec, year, reference_year)
        table.insert(
            (
                spec.make,
                spec.model,
                str(year),
                price,
                mileage,
                _pick_location(rng, spec.make),
                _pick_color(rng, spec.segment),
            )
        )
    return table


def cardb_webdb(
    n_rows: int,
    seed: int = 7,
    result_cap: int | None = None,
    auto_index: bool = True,
    columnar: bool = False,
    block_rows: int = DEFAULT_BLOCK_ROWS,
) -> AutonomousWebDatabase:
    """A CarDB instance wrapped as an autonomous Web source."""
    return AutonomousWebDatabase(
        generate_cardb(
            n_rows,
            seed=seed,
            auto_index=auto_index,
            columnar=columnar,
            block_rows=block_rows,
        ),
        result_cap=result_cap,
    )
