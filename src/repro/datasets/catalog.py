"""The used-car catalogue behind the synthetic CarDB.

Yahoo Autos is long gone, so the generator draws from a hand-built
catalogue of makes, models, segments and era-appropriate new prices.
The catalogue deliberately contains the values the paper's tables and
figures mention — Camry/Accord, Ford's Bronco/Aerostar/F-350/Econoline
Van/ZX2/Focus/F-150, the Kia/Hyundai/Isuzu/Subaru economy cluster, and
the Figure 5 makes (Ford, Chevrolet, Toyota, Honda, Dodge, Nissan, BMW)
— so the reproduced experiments can be read side by side with the
paper's.

The catalogue also serves as the *hidden ground truth* for the simulated
user study: users judge cars similar when their models share segment and
market tier, which is information AIMQ never sees (it only mines
co-occurrence statistics), keeping the evaluation non-circular.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Segment",
    "ModelSpec",
    "CATALOG",
    "MAKES",
    "MODELS_BY_MAKE",
    "model_spec",
    "LOCATIONS",
    "COLORS",
    "ground_truth_model_affinity",
]


@dataclass(frozen=True)
class Segment:
    """A market segment with its price band and usage profile."""

    name: str
    miles_per_year: int


SEGMENTS = {
    "economy": Segment("economy", 13000),
    "midsize": Segment("midsize", 12000),
    "fullsize": Segment("fullsize", 12000),
    "luxury": Segment("luxury", 9000),
    "sports": Segment("sports", 8000),
    "suv": Segment("suv", 14000),
    "truck": Segment("truck", 15000),
    "van": Segment("van", 15000),
}


@dataclass(frozen=True)
class ModelSpec:
    """One model line: who makes it, what it is, what it cost new."""

    make: str
    model: str
    segment: str
    base_price: int
    # Relative sales volume: popular models dominate a used-car site.
    popularity: float = 1.0

    @property
    def tier(self) -> str:
        """Market tier implied by the new price (ground-truth feature)."""
        if self.base_price >= 35000:
            return "premium"
        if self.base_price >= 22000:
            return "mid"
        return "budget"


CATALOG: tuple[ModelSpec, ...] = (
    # Toyota
    ModelSpec("Toyota", "Camry", "midsize", 21000, 3.0),
    ModelSpec("Toyota", "Corolla", "economy", 15000, 2.6),
    ModelSpec("Toyota", "Celica", "sports", 22000, 0.8),
    ModelSpec("Toyota", "Sienna", "van", 24000, 1.0),
    ModelSpec("Toyota", "Tacoma", "truck", 19000, 1.4),
    ModelSpec("Toyota", "4Runner", "suv", 27000, 1.2),
    # Honda
    ModelSpec("Honda", "Accord", "midsize", 21500, 2.9),
    ModelSpec("Honda", "Civic", "economy", 15500, 2.7),
    ModelSpec("Honda", "Odyssey", "van", 25000, 1.0),
    ModelSpec("Honda", "CR-V", "suv", 21000, 1.3),
    ModelSpec("Honda", "Prelude", "sports", 24000, 0.6),
    # Ford
    ModelSpec("Ford", "Focus", "economy", 14500, 2.2),
    ModelSpec("Ford", "Escort", "economy", 12500, 1.8),
    ModelSpec("Ford", "ZX2", "economy", 13500, 0.9),
    ModelSpec("Ford", "Taurus", "midsize", 19500, 2.4),
    ModelSpec("Ford", "Mustang", "sports", 23000, 1.5),
    ModelSpec("Ford", "Explorer", "suv", 26000, 1.9),
    ModelSpec("Ford", "Bronco", "suv", 24000, 0.9),
    ModelSpec("Ford", "F-150", "truck", 21000, 2.5),
    ModelSpec("Ford", "F-350", "truck", 28000, 0.8),
    ModelSpec("Ford", "Ranger", "truck", 16000, 1.4),
    ModelSpec("Ford", "Aerostar", "van", 20000, 0.8),
    ModelSpec("Ford", "Econoline Van", "van", 23000, 0.9),
    # Chevrolet — deliberately mirrors Ford's segment mix (Figure 5's
    # strongest edge is Ford–Chevrolet).
    ModelSpec("Chevrolet", "Cavalier", "economy", 13500, 2.0),
    ModelSpec("Chevrolet", "Malibu", "midsize", 18500, 1.9),
    ModelSpec("Chevrolet", "Impala", "fullsize", 22000, 1.5),
    ModelSpec("Chevrolet", "Camaro", "sports", 23500, 1.2),
    ModelSpec("Chevrolet", "Blazer", "suv", 24500, 1.3),
    ModelSpec("Chevrolet", "Suburban", "suv", 32000, 1.0),
    ModelSpec("Chevrolet", "Silverado", "truck", 21500, 2.3),
    ModelSpec("Chevrolet", "Astro", "van", 21000, 0.9),
    # Dodge
    ModelSpec("Dodge", "Neon", "economy", 13000, 1.6),
    ModelSpec("Dodge", "Intrepid", "fullsize", 20500, 1.2),
    ModelSpec("Dodge", "Ram", "truck", 21500, 1.9),
    ModelSpec("Dodge", "Dakota", "truck", 17500, 1.1),
    ModelSpec("Dodge", "Caravan", "van", 21000, 1.7),
    # Nissan
    ModelSpec("Nissan", "Sentra", "economy", 14500, 1.7),
    ModelSpec("Nissan", "Altima", "midsize", 19500, 1.8),
    ModelSpec("Nissan", "Maxima", "fullsize", 24500, 1.1),
    ModelSpec("Nissan", "Frontier", "truck", 17000, 1.0),
    ModelSpec("Nissan", "Quest", "van", 23500, 0.7),
    # BMW — luxury-only profile, so it shares almost no feature mass
    # with the volume makes (disconnected from Ford in Figure 5).
    ModelSpec("BMW", "325i", "luxury", 35000, 1.0),
    ModelSpec("BMW", "328i", "luxury", 37000, 0.8),
    ModelSpec("BMW", "530i", "luxury", 45000, 0.7),
    ModelSpec("BMW", "540i", "luxury", 52000, 0.5),
    ModelSpec("BMW", "M3", "sports", 48000, 0.4),
    ModelSpec("BMW", "X5", "suv", 50000, 0.6),
    # The Kia / Hyundai / Isuzu / Subaru cluster (Table 3's
    # Make=Kia row) — overlapping budget profiles.
    ModelSpec("Kia", "Sephia", "economy", 11500, 0.9),
    ModelSpec("Kia", "Rio", "economy", 10500, 1.0),
    ModelSpec("Kia", "Optima", "midsize", 16500, 0.7),
    ModelSpec("Kia", "Sportage", "suv", 16000, 0.8),
    ModelSpec("Hyundai", "Accent", "economy", 10500, 1.1),
    ModelSpec("Hyundai", "Elantra", "economy", 12500, 1.2),
    ModelSpec("Hyundai", "Sonata", "midsize", 16500, 0.9),
    ModelSpec("Hyundai", "Tiburon", "sports", 17500, 0.5),
    ModelSpec("Isuzu", "Rodeo", "suv", 19500, 0.8),
    ModelSpec("Isuzu", "Trooper", "suv", 23500, 0.6),
    ModelSpec("Isuzu", "Amigo", "suv", 16500, 0.4),
    ModelSpec("Isuzu", "Hombre", "truck", 15000, 0.3),
    ModelSpec("Subaru", "Impreza", "economy", 16500, 1.0),
    ModelSpec("Subaru", "Legacy", "midsize", 19000, 1.0),
    ModelSpec("Subaru", "Outback", "suv", 22500, 1.1),
    ModelSpec("Subaru", "Forester", "suv", 20500, 0.9),
    # Volkswagen & Mercury broaden the mid-market
    ModelSpec("Volkswagen", "Jetta", "economy", 17000, 1.4),
    ModelSpec("Volkswagen", "Passat", "midsize", 22500, 1.0),
    ModelSpec("Volkswagen", "Golf", "economy", 15500, 0.9),
    ModelSpec("Mercury", "Sable", "midsize", 19500, 0.8),
    ModelSpec("Mercury", "Grand Marquis", "fullsize", 23500, 0.7),
    ModelSpec("Mercury", "Villager", "van", 22000, 0.5),
)

MAKES: tuple[str, ...] = tuple(
    dict.fromkeys(spec.make for spec in CATALOG)
)

MODELS_BY_MAKE: dict[str, tuple[ModelSpec, ...]] = {
    make: tuple(spec for spec in CATALOG if spec.make == make)
    for make in MAKES
}

_SPEC_BY_MODEL: dict[str, ModelSpec] = {spec.model: spec for spec in CATALOG}


def model_spec(model: str) -> ModelSpec:
    """Catalogue entry for a model name (raises KeyError if unknown)."""
    return _SPEC_BY_MODEL[model]


LOCATIONS: tuple[str, ...] = (
    "Phoenix",
    "Tucson",
    "Los Angeles",
    "San Diego",
    "Dallas",
    "Houston",
    "Chicago",
    "Detroit",
    "Atlanta",
    "Miami",
    "Seattle",
    "Denver",
)

COLORS: tuple[str, ...] = (
    "White",
    "Black",
    "Silver",
    "Blue",
    "Red",
    "Green",
    "Gold",
    "Grey",
)


def ground_truth_model_affinity(model_a: str, model_b: str) -> float:
    """Hidden, catalogue-derived similarity between two models.

    Used only by the simulated user panel (never by AIMQ).  Two model
    lines are alike when they compete in the same segment and market
    tier, and brand loyalty adds real affinity between siblings of one
    make (shoppers who like a Camry consider the Corolla):

    * same model → 1.0
    * same segment: 0.8 same tier / 0.6 otherwise, +0.1 if same make
    * different segment: same make 0.45, same tier 0.35, else 0.1

    Unknown models score 0.
    """
    if model_a == model_b:
        return 1.0
    spec_a = _SPEC_BY_MODEL.get(model_a)
    spec_b = _SPEC_BY_MODEL.get(model_b)
    if spec_a is None or spec_b is None:
        return 0.0
    same_make_bonus = 0.1 if spec_a.make == spec_b.make else 0.0
    if spec_a.segment == spec_b.segment:
        base = 0.8 if spec_a.tier == spec_b.tier else 0.6
        return min(1.0, base + same_make_bonus)
    if spec_a.make == spec_b.make:
        return 0.45
    return 0.35 if spec_a.tier == spec_b.tier else 0.1
