"""Synthetic CensusDB: the UCI Adult/Census stand-in.

Projects the paper's relation ``CensusDB(Age, Workclass,
Demographic-weight, Education, Marital-Status, Occupation, Relationship,
Race, Sex, Capital-gain, Capital-loss, Hours-per-week, Native-Country)``
with the paper's typing (§6.1): Age, Demographic-weight, Capital-gain,
Capital-loss and Hours-per-week numeric, the rest categorical.

Each generated tuple carries a hidden income class (``>50K`` /
``<=50K``) derived from a noisy monotone score over education, age,
hours, occupation and capital gain — mirroring how the real Adult
labels correlate with those attributes.  §6.5's evaluation assumes
"tuples belonging to the same class are more similar"; the generator
enforces that by making the class-relevant attributes mutually
correlated (education drives occupation and hours; age drives marital
status; marital status and sex drive relationship).

The class is *not* part of the relation — it is returned as a parallel
label list, exactly like the paper's "pre-classified" tuples.
"""

from __future__ import annotations

import random

from repro.db.schema import RelationSchema
from repro.db.table import Table
from repro.db.webdb import AutonomousWebDatabase

__all__ = [
    "CENSUS_SCHEMA",
    "INCOME_HIGH",
    "INCOME_LOW",
    "generate_censusdb",
    "census_webdb",
]


CENSUS_SCHEMA = RelationSchema.build(
    "CensusDB",
    categorical=(
        "Workclass",
        "Education",
        "Marital-Status",
        "Occupation",
        "Relationship",
        "Race",
        "Sex",
        "Native-Country",
    ),
    numeric=(
        "Age",
        "Demographic-weight",
        "Capital-gain",
        "Capital-loss",
        "Hours-per-week",
    ),
    order=(
        "Age",
        "Workclass",
        "Demographic-weight",
        "Education",
        "Marital-Status",
        "Occupation",
        "Relationship",
        "Race",
        "Sex",
        "Capital-gain",
        "Capital-loss",
        "Hours-per-week",
        "Native-Country",
    ),
)

INCOME_HIGH = ">50K"
INCOME_LOW = "<=50K"

# Education levels in increasing order; the index is the ordinal score.
_EDUCATION = (
    "HS-grad",
    "Some-college",
    "Assoc-voc",
    "Bachelors",
    "Masters",
    "Prof-school",
    "Doctorate",
)
_EDUCATION_WEIGHTS = (0.34, 0.24, 0.10, 0.20, 0.08, 0.02, 0.02)

_WORKCLASS = (
    "Private",
    "Self-emp-not-inc",
    "Self-emp-inc",
    "Federal-gov",
    "State-gov",
    "Local-gov",
)

# Occupations with a skill score and education affinity; higher skill
# occupations demand more education and pay more.
_OCCUPATIONS = (
    ("Exec-managerial", 3),
    ("Prof-specialty", 3),
    ("Tech-support", 2),
    ("Sales", 2),
    ("Craft-repair", 1),
    ("Adm-clerical", 1),
    ("Machine-op-inspct", 0),
    ("Transport-moving", 0),
    ("Handlers-cleaners", 0),
    ("Other-service", 0),
)

_MARITAL = (
    "Never-married",
    "Married-civ-spouse",
    "Divorced",
    "Widowed",
    "Separated",
)

_RACES = ("White", "Black", "Asian-Pac-Islander", "Amer-Indian-Eskimo", "Other")
_RACE_WEIGHTS = (0.80, 0.10, 0.06, 0.02, 0.02)

_COUNTRIES = (
    "United-States",
    "Mexico",
    "Philippines",
    "Germany",
    "Canada",
    "India",
    "England",
    "Cuba",
)
_COUNTRY_WEIGHTS = (0.88, 0.04, 0.02, 0.015, 0.015, 0.015, 0.008, 0.007)


def _pick(rng: random.Random, items: tuple, weights: tuple | list):
    return rng.choices(items, weights=weights, k=1)[0]


def _pick_occupation(rng: random.Random, education_level: int) -> tuple[str, int]:
    """Higher education strongly tilts toward higher-skill occupations.

    The coupling is deliberately sharp: in the real Adult data the
    education/occupation contingency is strong enough for approximate
    dependencies to surface, and the reproduction relies on mining that
    same structure (see DESIGN.md's substitution notes).
    """
    target_skill = min(3, education_level // 2 + (1 if education_level >= 3 else 0))
    weights = []
    for _, skill in _OCCUPATIONS:
        gap = abs(skill - target_skill)
        weights.append(10.0 ** (1.5 - gap))
    return _pick(rng, _OCCUPATIONS, weights)


def _pick_workclass(rng: random.Random, skill: int) -> str:
    """Work sector follows occupation skill (managers rarely labour)."""
    if skill >= 3:
        weights = (0.55, 0.08, 0.14, 0.08, 0.06, 0.09)
    elif skill >= 1:
        weights = (0.72, 0.08, 0.03, 0.04, 0.05, 0.08)
    else:
        weights = (0.82, 0.07, 0.01, 0.02, 0.03, 0.05)
    return _pick(rng, _WORKCLASS, weights)


def _pick_marital(rng: random.Random, age: int) -> str:
    if age < 25:
        weights = (0.75, 0.15, 0.04, 0.0, 0.06)
    elif age < 40:
        weights = (0.30, 0.50, 0.13, 0.01, 0.06)
    else:
        weights = (0.10, 0.55, 0.20, 0.10, 0.05)
    return _pick(rng, _MARITAL, weights)


def _pick_relationship(rng: random.Random, marital: str, sex: str) -> str:
    if marital == "Married-civ-spouse":
        return "Husband" if sex == "Male" else "Wife"
    return _pick(
        rng,
        ("Not-in-family", "Own-child", "Unmarried", "Other-relative"),
        (0.5, 0.2, 0.2, 0.1),
    )


def _income_score(
    education_level: int,
    age: int,
    hours: int,
    occupation_skill: int,
    capital_gain: int,
    marital: str,
) -> float:
    """Monotone log-odds-style score the label thresholds against.

    Coefficients mirror the real Adult data's structure, where marital
    status (married-civ-spouse) is by far the strongest single
    predictor of the >50K class, followed by education, occupation
    skill, hours and age.
    """
    score = 0.0
    score += 0.45 * education_level
    score += 0.05 * min(age, 55)
    score += 0.04 * (hours - 40)
    score += 0.35 * occupation_skill
    score += 0.0004 * capital_gain
    if marital == "Married-civ-spouse":
        score += 2.2
    return score


def generate_censusdb(
    n_rows: int, seed: int = 11
) -> tuple[Table, list[str]]:
    """Generate a CensusDB instance plus its hidden income labels.

    Returns ``(table, labels)`` with ``labels[row_id]`` being ``>50K``
    or ``<=50K``; roughly a quarter of tuples land in the high class,
    matching the real Adult data's skew.
    """
    if n_rows < 0:
        raise ValueError("n_rows cannot be negative")
    rng = random.Random(seed)
    table = Table(CENSUS_SCHEMA)
    labels: list[str] = []
    for _ in range(n_rows):
        education = _pick(rng, _EDUCATION, _EDUCATION_WEIGHTS)
        education_level = _EDUCATION.index(education)
        age = min(90, max(17, int(rng.gauss(38, 13))))
        occupation, skill = _pick_occupation(rng, education_level)
        hours = min(
            99,
            max(5, int(rng.gauss(34 + 4.0 * skill + 1.2 * education_level, 6))),
        )
        marital = _pick_marital(rng, age)
        sex = _pick(rng, ("Male", "Female"), (0.67, 0.33))
        relationship = _pick_relationship(rng, marital, sex)
        capital_gain = 0
        if rng.random() < 0.06 + 0.02 * education_level:
            capital_gain = int(rng.expovariate(1 / 6000.0))
        capital_loss = int(rng.expovariate(1 / 900.0)) if rng.random() < 0.04 else 0
        weight = int(rng.gauss(190000, 60000))
        weight = max(20000, (weight // 20) * 20)

        table.insert(
            (
                age,
                _pick_workclass(rng, skill),
                weight,
                education,
                marital,
                occupation,
                relationship,
                _pick(rng, _RACES, _RACE_WEIGHTS),
                sex,
                capital_gain,
                capital_loss,
                hours,
                _pick(rng, _COUNTRIES, _COUNTRY_WEIGHTS),
            )
        )
        score = _income_score(
            education_level, age, hours, skill, capital_gain, marital
        )
        score += rng.gauss(0, 0.9)
        labels.append(INCOME_HIGH if score > 5.3 else INCOME_LOW)
    return table, labels


def census_webdb(
    n_rows: int, seed: int = 11
) -> tuple[AutonomousWebDatabase, list[str]]:
    """A CensusDB instance wrapped as an autonomous Web source."""
    table, labels = generate_censusdb(n_rows, seed=seed)
    return AutonomousWebDatabase(table), labels
