"""Synthetic datasets standing in for Yahoo Autos and UCI Census.

See DESIGN.md for why each substitution preserves the behaviour the
paper's experiments measure.
"""

from repro.datasets.cardb import (
    CARDB_SCHEMA,
    YEAR_RANGE,
    cardb_webdb,
    generate_cardb,
)
from repro.datasets.catalog import (
    CATALOG,
    COLORS,
    LOCATIONS,
    MAKES,
    MODELS_BY_MAKE,
    ModelSpec,
    ground_truth_model_affinity,
    model_spec,
)
from repro.datasets.census import (
    CENSUS_SCHEMA,
    INCOME_HIGH,
    INCOME_LOW,
    census_webdb,
    generate_censusdb,
)

__all__ = [
    "CARDB_SCHEMA",
    "CATALOG",
    "CENSUS_SCHEMA",
    "COLORS",
    "INCOME_HIGH",
    "INCOME_LOW",
    "LOCATIONS",
    "MAKES",
    "MODELS_BY_MAKE",
    "ModelSpec",
    "YEAR_RANGE",
    "cardb_webdb",
    "census_webdb",
    "generate_cardb",
    "generate_censusdb",
    "ground_truth_model_affinity",
    "model_spec",
]
