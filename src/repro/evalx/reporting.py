"""Plain-text rendering of experiment results in the paper's layouts.

Benchmarks print these tables so a run can be read side by side with
the paper's Tables 2–3 and Figures 3–9.  When observability is on,
:func:`format_metrics_appendix` turns the registry snapshot into a
report appendix so every experiment artefact carries its own work
accounting.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.evalx.experiments import (
    EfficiencyResult,
    Fig3Result,
    Fig4Result,
    Fig5Result,
    Fig9Result,
    Table2Result,
    Table3Result,
)
from repro.core.results import AnswerSet
from repro.evalx.userstudy import StudyOutcome
from repro.obs.runtime import OBS

__all__ = [
    "format_table2",
    "format_table3",
    "format_fig3",
    "format_fig4",
    "format_fig5",
    "format_efficiency",
    "format_fig8",
    "format_fig9",
    "format_degradation",
    "format_metrics_appendix",
]


def _seconds(value: float) -> str:
    if value < 1:
        return f"{value * 1000:.0f} ms"
    if value < 120:
        return f"{value:.2f} s"
    return f"{value / 60:.1f} min"


def format_table2(result: Table2Result) -> str:
    datasets = list(result.dataset_sizes)
    header = "".join(
        f"{name} ({result.dataset_sizes[name]}) ".rjust(22) for name in datasets
    )
    lines = [
        "Table 2 — Offline Computation Time",
        f"{'':32}{header}",
        "AIMQ",
    ]
    rows = [
        ("  SuperTuple Generation", result.aimq_supertuple),
        ("  Similarity Estimation", result.aimq_estimation),
    ]
    for label, series in rows:
        cells = "".join(_seconds(series[name]).rjust(22) for name in datasets)
        lines.append(f"{label:<32}{cells}")
    lines.append(
        "ROCK (sample "
        + ", ".join(str(result.rock_sample_sizes[name]) for name in datasets)
        + ")"
    )
    rows = [
        ("  Link Computation", result.rock_links),
        ("  Initial Clustering", result.rock_clustering),
        ("  Data Labeling", result.rock_labeling),
    ]
    for label, series in rows:
        cells = "".join(_seconds(series[name]).rjust(22) for name in datasets)
        lines.append(f"{label:<32}{cells}")
    for name in datasets:
        lines.append(
            f"  total {name}: AIMQ {_seconds(result.aimq_total(name))}"
            f" vs ROCK {_seconds(result.rock_total(name))}"
        )
    return "\n".join(lines)


def format_table3(result: Table3Result) -> str:
    lines = [
        "Table 3 — Robust Similarity Estimation "
        f"({result.small_size} vs {result.large_size} tuples)",
        f"{'Value':<18}{'Similar Values':<20}{result.small_size:>10}"
        f"{result.large_size:>10}",
    ]
    for attribute, value in result.probes:
        first = True
        for other, sim_small, sim_large in result.rows[(attribute, value)]:
            label = f"{attribute}={value}" if first else ""
            lines.append(
                f"{label:<18}{other:<20}{sim_small:>10.3f}{sim_large:>10.3f}"
            )
            first = False
    return "\n".join(lines)


def format_fig3(result: Fig3Result) -> str:
    lines = ["Figure 3 — Robustness of Attribute Ordering (Wt_depends)"]
    names = result.dependent_attributes
    header = "".join(f"{size:>10}" for size in result.sizes)
    lines.append(f"{'Attribute':<14}{header}")
    for name in names:
        cells = "".join(
            f"{result.weights[size][name]:>10.3f}" for size in result.sizes
        )
        lines.append(f"{name:<14}{cells}")
    lines.append(
        "relative ordering consistent across samples: "
        + ("YES" if result.orderings_consistent() else "NO")
    )
    return "\n".join(lines)


def format_fig4(result: Fig4Result, top: int = 8) -> str:
    lines = ["Figure 4 — Robustness in Mining Keys (quality = support/size)"]
    for size in result.sizes:
        ranked = result.key_quality[size]
        best = ranked[-1] if ranked else ((), 0.0)
        lines.append(
            f"  sample {size}: {len(ranked)} keys; best "
            f"{{{', '.join(best[0])}}} quality={best[1]:.3f}"
        )
    lines.append(
        "highest-quality key stable across samples: "
        + ("YES" if result.best_key_stable() else "NO")
    )
    return "\n".join(lines)


def format_fig5(result: Fig5Result) -> str:
    lines = [
        f"Figure 5 — Similarity Graph for Make (threshold {result.threshold})",
        "Ford's neighbourhood:",
    ]
    for name, weight in result.ford_neighbors:
        lines.append(f"  Ford -- {name:<12} {weight:.3f}")
    lines.append(
        "not connected to Ford: " + ", ".join(result.disconnected_from_ford)
    )
    return "\n".join(lines)


def format_efficiency(result: EfficiencyResult) -> str:
    lines = [
        f"Figure {'6' if result.strategy == 'guided' else '7'} — Efficiency of "
        f"{'GuidedRelax' if result.strategy == 'guided' else 'RandomRelax'}",
        f"{'T_sim':>8}{'mean Work/Relevant':>22}{'median':>12}",
    ]
    for threshold in result.thresholds:
        median = result.median_work.get(threshold, result.work[threshold])
        lines.append(
            f"{threshold:>8.2f}{result.work[threshold]:>22.2f}{median:>12.2f}"
        )
    return "\n".join(lines)


def format_fig8(outcome: StudyOutcome) -> str:
    lines = ["Figure 8 — Average MRR over CarDB (simulated user panel)"]
    for name in sorted(
        outcome.system_mrr, key=lambda n: -outcome.system_mrr[n]
    ):
        lines.append(f"  {name:<14}{outcome.system_mrr[name]:.3f}")
    return "\n".join(lines)


def format_degradation(answers: AnswerSet) -> str:
    """Degradation appendix for one answered query.

    Returns ``""`` for a complete answer with no resilience activity,
    so callers can append the result unconditionally — the same
    contract as :func:`format_metrics_appendix`.
    """
    report = answers.degradation
    if not (report.degraded or report.retries_used or report.breaker_opens):
        return ""
    lines = ["Degradation appendix"]
    lines.extend("  " + line for line in report.summary().splitlines())
    return "\n".join(lines)


def format_metrics_appendix(snapshot: Mapping[str, Any] | None = None) -> str:
    """Metrics appendix embedded in experiment reports.

    Renders a registry snapshot (the global one unless given) as an
    indented family/series listing.  Returns ``""`` when observability
    is disabled and no snapshot was supplied, so callers can append the
    result unconditionally.
    """
    if snapshot is None:
        if not OBS.enabled:
            return ""
        snapshot = OBS.registry.snapshot()
    metrics = snapshot.get("metrics", [])
    if not metrics:
        return ""
    lines = ["Metrics appendix (observability snapshot)"]
    for family in metrics:
        lines.append(f"  {family['name']} ({family['kind']})")
        for series in family["series"]:
            labels = series.get("labels") or {}
            label_text = ", ".join(
                f"{key}={value}" for key, value in sorted(labels.items())
            )
            if family["kind"] == "histogram":
                cell = f"count={series['count']} sum={series['sum']:.6g}"
            else:
                cell = f"{series['value']:.6g}"
            lines.append(f"    {{{label_text}}} {cell}")
    return "\n".join(lines)


def format_fig9(result: Fig9Result) -> str:
    lines = [
        f"Figure 9 — Classification Accuracy over CensusDB "
        f"({result.n_queries} queries)",
        f"{'k':>4}{'AIMQ':>10}{'ROCK':>10}",
    ]
    for k in result.ks:
        lines.append(
            f"{k:>4}{result.aimq_accuracy[k]:>10.3f}{result.rock_accuracy[k]:>10.3f}"
        )
    return "\n".join(lines)
