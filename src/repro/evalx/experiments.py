"""Experiment runners: one per table/figure of the paper's §6.

Every runner is a pure function taking explicit scale parameters, so
tests can run them tiny and benchmarks can run them at (or near) paper
scale.  Each returns a structured result object that the reporting
module renders in the paper's layout; EXPERIMENTS.md records the
paper-vs-measured comparison.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from repro.afd.tane import TaneConfig, TaneMiner
from repro.core.attribute_order import compute_attribute_ordering, uniform_ordering
from repro.core.config import AIMQSettings
from repro.core.engine import AIMQEngine
from repro.core.pipeline import AIMQModel, build_model_from_sample
from repro.core.relaxation import GuidedRelax, RandomRelax
from repro.datasets.cardb import generate_cardb
from repro.datasets.census import generate_censusdb
from repro.db.table import Table
from repro.db.webdb import AutonomousWebDatabase
from repro.evalx.metrics import top_k_accuracy
from repro.evalx.userstudy import SimulatedUserPanel, StudyOutcome
from repro.rock.answering import RockQueryAnswerer
from repro.rock.clustering import RockConfig
from repro.sampling.collector import nested_samples
from repro.simmining.avpair import AVPair
from repro.simmining.estimator import ValueSimilarityMiner
from repro.simmining.graph import neighbors_above, similarity_graph
from repro.simmining.supertuple import build_binners, build_supertuple

__all__ = [
    "Table2Result",
    "Table3Result",
    "Fig3Result",
    "Fig4Result",
    "Fig5Result",
    "EfficiencyResult",
    "Fig9Result",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_fig3",
    "run_fig4",
    "run_fig5",
    "run_relaxation_efficiency",
    "run_retrieval_recall",
    "RecallResult",
    "run_fig8",
    "run_fig8_multi",
    "run_fig9",
    "census_settings",
]


def census_settings(
    error_threshold: float = 0.1,
    max_lhs_size: int = 2,
    max_key_size: int = 3,
    numeric_bins: int = 8,
    max_relaxation_level: int = 6,
) -> AIMQSettings:
    """AIMQ settings tuned for the wider Census schema.

    CensusDB has 13 attributes: bounding the mining lattice keeps the
    offline phase near-paper-fast without changing which orderings win,
    while the *online* relaxation must be allowed to go deep — a
    13-attribute tuple-as-query that may only shed two bindings almost
    never matches anything else.
    """
    return AIMQSettings(
        max_relaxation_level=max_relaxation_level,
        max_extracted_per_base_tuple=20000,
        tane=TaneConfig(
            error_threshold=error_threshold,
            key_error_threshold=0.45,
            max_lhs_size=max_lhs_size,
            max_key_size=max_key_size,
            numeric_bins=numeric_bins,
        ),
    )


# ---------------------------------------------------------------------------
# Table 1 — the supertuple for Make=Ford
# ---------------------------------------------------------------------------


def run_table1(car_rows: int = 5000, seed: int = 7, top: int = 5) -> str:
    """Render the Make=Ford supertuple in the paper's 2-column layout."""
    table = generate_cardb(car_rows, seed=seed)
    binners = build_binners(table, n_bins=10)
    index = table.hash_index("Make")
    assert index is not None
    rows = table.rows(index.lookup("Ford"))
    supertuple = build_supertuple(AVPair("Make", "Ford"), rows, table.schema, binners)
    return supertuple.describe(top=top)


# ---------------------------------------------------------------------------
# Table 2 — offline computation time, AIMQ vs ROCK
# ---------------------------------------------------------------------------


@dataclass
class Table2Result:
    """Seconds per offline phase, per dataset (the paper reports minutes)."""

    dataset_sizes: dict[str, int] = field(default_factory=dict)
    aimq_supertuple: dict[str, float] = field(default_factory=dict)
    aimq_estimation: dict[str, float] = field(default_factory=dict)
    rock_links: dict[str, float] = field(default_factory=dict)
    rock_clustering: dict[str, float] = field(default_factory=dict)
    rock_labeling: dict[str, float] = field(default_factory=dict)
    rock_sample_sizes: dict[str, int] = field(default_factory=dict)

    def aimq_total(self, dataset: str) -> float:
        return self.aimq_supertuple[dataset] + self.aimq_estimation[dataset]

    def rock_total(self, dataset: str) -> float:
        return (
            self.rock_links[dataset]
            + self.rock_clustering[dataset]
            + self.rock_labeling[dataset]
        )


def _time_aimq_offline(table: Table, result: Table2Result, dataset: str) -> None:
    miner = ValueSimilarityMiner()
    miner.mine(table)
    result.aimq_supertuple[dataset] = miner.timings.supertuple_seconds
    result.aimq_estimation[dataset] = miner.timings.estimation_seconds


def _time_rock_offline(
    table: Table,
    result: Table2Result,
    dataset: str,
    sample_size: int,
    theta: float,
    n_clusters: int,
) -> None:
    answerer = RockQueryAnswerer(
        table,
        config=RockConfig(theta=theta, n_clusters=n_clusters),
        sample_size=sample_size,
        seed=1,
    )
    answerer.fit()
    result.rock_links[dataset] = answerer.timings.link_seconds
    result.rock_clustering[dataset] = answerer.timings.clustering_seconds
    result.rock_labeling[dataset] = answerer.timings.labeling_seconds
    result.rock_sample_sizes[dataset] = min(sample_size, len(table))


def run_table2(
    car_rows: int = 2500,
    census_rows: int = 4500,
    rock_sample: int = 200,
    theta: float = 0.5,
    n_clusters: int = 12,
    seed: int = 7,
) -> Table2Result:
    """Offline cost of AIMQ vs ROCK on CarDB and CensusDB.

    Defaults are a 10x-scaled-down version of the paper's setup
    (CarDB 25k / CensusDB 45k / ROCK sample 2k); pass the paper's sizes
    for a full-scale run.
    """
    result = Table2Result()
    car = generate_cardb(car_rows, seed=seed)
    census, _ = generate_censusdb(census_rows, seed=seed + 4)
    result.dataset_sizes = {"CarDB": car_rows, "CensusDB": census_rows}

    _time_aimq_offline(car, result, "CarDB")
    _time_aimq_offline(census, result, "CensusDB")
    _time_rock_offline(car, result, "CarDB", rock_sample, theta, n_clusters)
    _time_rock_offline(census, result, "CensusDB", rock_sample, theta, n_clusters)
    return result


# ---------------------------------------------------------------------------
# Table 3 — robustness of similarity estimation across sample sizes
# ---------------------------------------------------------------------------


@dataclass
class Table3Result:
    """Top-similar values at small vs large sample, per probe AV-pair."""

    probes: list[tuple[str, str]]
    small_size: int
    large_size: int
    # probe -> ranked [(value, sim_small, sim_large)]
    rows: dict[tuple[str, str], list[tuple[str, float, float]]] = field(
        default_factory=dict
    )

    def order_preserved(
        self, probe: tuple[str, str], tolerance: float = 0.0
    ) -> bool:
        """True when the large-sample ranking is also descending under
        the small-sample scores (the paper's claim).

        ``tolerance`` forgives inversions between values whose
        small-sample scores are within that margin — near-ties carry no
        ordering information on a quarter-size sample.
        """
        small_scores = [row[1] for row in self.rows[probe]]
        return all(
            earlier >= later - tolerance - 1e-9
            for earlier, later in zip(small_scores, small_scores[1:])
        )


def run_table3(
    car_rows: int = 10000,
    small_fraction: float = 0.25,
    top: int = 3,
    seed: int = 7,
    probes: tuple[tuple[str, str], ...] = (
        ("Make", "Kia"),
        ("Model", "Bronco"),
        ("Year", "1985"),
    ),
) -> Table3Result:
    """Compare top similar values mined from a 25% sample vs the full set."""
    full = generate_cardb(car_rows, seed=seed)
    samples = nested_samples(
        full, [int(car_rows * small_fraction)], random.Random(seed + 1)
    )
    small = samples[int(car_rows * small_fraction)]

    small_model = ValueSimilarityMiner().mine(small)
    large_model = ValueSimilarityMiner().mine(full)

    result = Table3Result(
        probes=list(probes), small_size=len(small), large_size=len(full)
    )
    for attribute, value in probes:
        ranked_large = large_model.top_similar(attribute, value, n=top)
        result.rows[(attribute, value)] = [
            (other, small_model.similarity(attribute, value, other), sim_large)
            for other, sim_large in ranked_large
        ]
    return result


# ---------------------------------------------------------------------------
# Figure 3 — robustness of attribute ordering across sample sizes
# ---------------------------------------------------------------------------


@dataclass
class Fig3Result:
    """Wt_depends per attribute at each sample size."""

    sizes: list[int]
    # size -> attribute -> dependence weight
    weights: dict[int, dict[str, float]] = field(default_factory=dict)
    dependent_attributes: tuple[str, ...] = ()

    def ordering_at(self, size: int) -> list[str]:
        """Dependent attributes by ascending weight at ``size``."""
        weights = self.weights[size]
        return sorted(
            self.dependent_attributes, key=lambda name: (weights[name], name)
        )

    def orderings_consistent(self, tolerance: float = 0.05) -> bool:
        """The paper's claim: sample size shifts magnitudes, not order.

        Two attributes whose weights sit within ``tolerance`` of each
        other are treated as tied — an ordering only counts as flipped
        when some sample separates a pair one way and another sample
        separates it the other way by more than the tolerance.
        """
        names = self.dependent_attributes
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                a_smaller = any(
                    self.weights[s][a] < self.weights[s][b] - tolerance
                    for s in self.sizes
                )
                b_smaller = any(
                    self.weights[s][b] < self.weights[s][a] - tolerance
                    for s in self.sizes
                )
                if a_smaller and b_smaller:
                    return False
        return True


def run_fig3(
    car_rows: int = 10000,
    fractions: tuple[float, ...] = (0.15, 0.25, 0.5, 1.0),
    seed: int = 7,
    tane: TaneConfig | None = None,
) -> Fig3Result:
    """Mine Wt_depends per attribute over nested samples of CarDB."""
    tane = tane or TaneConfig(numeric_bins=8, key_error_threshold=0.45)
    full = generate_cardb(car_rows, seed=seed)
    sizes = sorted({max(1, int(car_rows * f)) for f in fractions})
    samples = nested_samples(full, sizes, random.Random(seed + 1))

    result = Fig3Result(sizes=sizes)
    dependent: tuple[str, ...] | None = None
    for size in sizes:
        sample = samples[size]
        model = TaneMiner(tane).mine(sample)
        ordering = compute_attribute_ordering(sample.schema, model)
        if dependent is None:
            dependent = ordering.dependent
        result.weights[size] = {
            name: model.dependence_weight(name)
            for name in sample.schema.attribute_names
        }
    result.dependent_attributes = dependent or ()
    return result


# ---------------------------------------------------------------------------
# Figure 4 — robustness of approximate-key mining
# ---------------------------------------------------------------------------


@dataclass
class Fig4Result:
    """Key qualities per sample size, paper-style ascending order."""

    sizes: list[int]
    # size -> [(key attribute tuple, quality)] ascending by quality
    key_quality: dict[int, list[tuple[tuple[str, ...], float]]] = field(
        default_factory=dict
    )
    best_key: dict[int, tuple[str, ...]] = field(default_factory=dict)

    def best_key_stable(self) -> bool:
        """The highest-quality key is the same in every sample."""
        keys = list(self.best_key.values())
        return all(key == keys[0] for key in keys)


def run_fig4(
    car_rows: int = 10000,
    fractions: tuple[float, ...] = (0.15, 0.25, 0.5, 1.0),
    seed: int = 7,
    tane: TaneConfig | None = None,
) -> Fig4Result:
    """Mine approximate keys over nested samples and compare qualities."""
    tane = tane or TaneConfig(numeric_bins=8, key_error_threshold=0.45)
    full = generate_cardb(car_rows, seed=seed)
    sizes = sorted({max(1, int(car_rows * f)) for f in fractions})
    samples = nested_samples(full, sizes, random.Random(seed + 1))

    result = Fig4Result(sizes=sizes)
    for size in sizes:
        model = TaneMiner(tane).mine(samples[size])
        ascending = model.keys_sorted_by_quality()
        result.key_quality[size] = [
            (key.attributes, key.quality) for key in ascending
        ]
        best = model.best_key(by="quality")
        result.best_key[size] = best.attributes if best else ()
    return result


# ---------------------------------------------------------------------------
# Figure 5 — similarity graph for Make
# ---------------------------------------------------------------------------


@dataclass
class Fig5Result:
    """The mined Make similarity graph around Ford."""

    threshold: float
    ford_neighbors: list[tuple[str, float]]
    edges: list[tuple[str, str, float]]
    disconnected_from_ford: list[str]


def run_fig5(
    car_rows: int = 10000,
    threshold: float = 0.1,
    seed: int = 7,
    focus: str = "Ford",
) -> Fig5Result:
    """Build the Figure 5 graph and report Ford's neighbourhood."""
    table = generate_cardb(car_rows, seed=seed)
    model = ValueSimilarityMiner().mine(table, attributes=("Make",))
    graph = similarity_graph(model, "Make", threshold=threshold)
    neighbors = neighbors_above(graph, focus)
    connected = {name for name, _ in neighbors} | {focus}
    disconnected = sorted(set(graph.nodes) - connected)
    edges = sorted(
        ((min(a, b), max(a, b), data["weight"]) for a, b, data in graph.edges(data=True)),
        key=lambda edge: -edge[2],
    )
    return Fig5Result(
        threshold=threshold,
        ford_neighbors=neighbors,
        edges=edges,
        disconnected_from_ford=disconnected,
    )


# ---------------------------------------------------------------------------
# Figures 6 & 7 — relaxation efficiency (Work/RelevantTuple vs T_sim)
# ---------------------------------------------------------------------------


@dataclass
class EfficiencyResult:
    """Work/RelevantTuple per threshold for one strategy.

    ``work`` is the mean over the query set (the paper's measure);
    ``median_work`` is reported alongside because at sub-paper data
    density a single query tuple with no T_sim-similar neighbours
    forces an exhaustive scan for *any* strategy and dominates the
    mean.
    """

    strategy: str
    thresholds: list[float]
    # threshold -> average work per relevant tuple over the query set
    work: dict[float, float] = field(default_factory=dict)
    # threshold -> median work per relevant tuple over the query set
    median_work: dict[float, float] = field(default_factory=dict)
    # threshold -> per-query work values
    per_query: dict[float, list[float]] = field(default_factory=dict)
    elapsed_seconds: float = 0.0


def _prepare_cardb_model(
    car_rows: int,
    sample_rows: int,
    seed: int,
    settings: AIMQSettings,
) -> tuple[AutonomousWebDatabase, AIMQModel, Table]:
    table = generate_cardb(car_rows, seed=seed)
    webdb = AutonomousWebDatabase(table)
    sample = nested_samples(table, [sample_rows], random.Random(seed + 1))[
        sample_rows
    ]
    model = build_model_from_sample(sample, settings=settings)
    return webdb, model, table


def run_relaxation_efficiency(
    strategy: str,
    car_rows: int = 10000,
    sample_rows: int = 2500,
    n_queries: int = 10,
    target: int = 20,
    thresholds: tuple[float, ...] = (0.5, 0.6, 0.7, 0.8, 0.9),
    seed: int = 7,
    settings: AIMQSettings | None = None,
) -> EfficiencyResult:
    """The §6.3 experiment for ``strategy`` in {"guided", "random"}.

    Ten random tuples act as queries; for each we extract ``target``
    tuples above each T_sim and record extracted/relevant.
    """
    if strategy not in ("guided", "random"):
        raise ValueError("strategy must be 'guided' or 'random'")
    # All relaxation depths are permitted: GuidedRelax rarely needs to
    # go past narrow relaxations before its quota fills, while the
    # undisciplined baseline pays for the broad queries it stumbles
    # into — the asymmetry Figures 6–7 exist to show.
    settings = settings or AIMQSettings(
        max_relaxation_level=6, max_extracted_per_base_tuple=50000
    )
    webdb, model, table = _prepare_cardb_model(
        car_rows, sample_rows, seed, settings
    )
    rng = random.Random(seed + 2)
    query_ids = rng.sample(range(len(table)), min(n_queries, len(table)))

    result = EfficiencyResult(strategy=strategy, thresholds=list(thresholds))
    started = time.perf_counter()
    for threshold in thresholds:
        works: list[float] = []
        for query_id in query_ids:
            if strategy == "guided":
                engine = model.engine(webdb, strategy=GuidedRelax(model.ordering))
            else:
                engine = model.engine(
                    webdb, strategy=RandomRelax(seed=seed + query_id)
                )
            _, trace = engine.gather_similar(
                table.row(query_id),
                similarity_threshold=threshold,
                target=target,
                row_id=query_id,
            )
            if trace.tuples_relevant > 0:
                works.append(trace.tuples_extracted / trace.tuples_relevant)
            else:
                works.append(float(trace.tuples_extracted))
        result.per_query[threshold] = works
        result.work[threshold] = sum(works) / len(works) if works else 0.0
        if works:
            ordered = sorted(works)
            middle = len(ordered) // 2
            if len(ordered) % 2:
                result.median_work[threshold] = ordered[middle]
            else:
                result.median_work[threshold] = (
                    ordered[middle - 1] + ordered[middle]
                ) / 2
        else:
            result.median_work[threshold] = 0.0
    result.elapsed_seconds = time.perf_counter() - started
    return result


# ---------------------------------------------------------------------------
# Figure 8 — simulated user study (MRR of Guided vs Random vs ROCK)
# ---------------------------------------------------------------------------


def run_fig8(
    car_rows: int = 10000,
    sample_rows: int = 2500,
    n_queries: int = 14,
    k: int = 10,
    n_users: int = 8,
    seed: int = 7,
    settings: AIMQSettings | None = None,
    rock_sample: int = 400,
    rock_theta: float = 0.5,
    rock_clusters: int = 12,
) -> StudyOutcome:
    """Run the §6.4 study with the simulated panel.

    14 random tuple queries; each system returns its top-10; the panel
    re-ranks and the redefined MRR is averaged per system.
    """
    settings = settings or AIMQSettings(max_relaxation_level=3)
    webdb, model, table = _prepare_cardb_model(
        car_rows, sample_rows, seed, settings
    )
    rng = random.Random(seed + 3)
    query_ids = rng.sample(range(len(table)), min(n_queries, len(table)))
    schema = table.schema

    # §6.4: "both RandomRelax and ROCK give equal importance to all the
    # attributes" — the strawman system pairs arbitrary relaxation with
    # uniform importance weights and a uniformly weighted VSim model.
    flat_ordering = uniform_ordering(schema)
    flat_similarity = ValueSimilarityMiner(config=settings.simmining).mine(
        model.sample
    )

    rock = RockQueryAnswerer(
        table,
        config=RockConfig(theta=rock_theta, n_clusters=rock_clusters),
        sample_size=rock_sample,
        seed=seed,
    ).fit()

    guided_answers: list[list[tuple]] = []
    random_answers: list[list[tuple]] = []
    rock_answers: list[list[tuple]] = []
    threshold = 0.35  # permissive: the panel judges relevance, not AIMQ

    for query_id in query_ids:
        row = table.row(query_id)
        guided_engine = model.engine(webdb, strategy=GuidedRelax(model.ordering))
        answers, _ = guided_engine.gather_similar(
            row, similarity_threshold=threshold, target=4 * k, row_id=query_id
        )
        guided_answers.append([a.row for a in answers[:k]])

        random_engine = AIMQEngine(
            webdb=webdb,
            ordering=flat_ordering,
            value_similarity=flat_similarity,
            settings=settings,
            strategy=RandomRelax(seed=seed + query_id),
        )
        answers, _ = random_engine.gather_similar(
            row, similarity_threshold=threshold, target=4 * k, row_id=query_id
        )
        random_answers.append([a.row for a in answers[:k]])

        rock_answers.append(
            [a.row for a in rock.answer_row_id(query_id, k=k)]
        )

    queries = [schema.row_to_mapping(table.row(qid)) for qid in query_ids]
    panel = SimulatedUserPanel(schema, n_users=n_users, seed=seed + 5)
    return panel.run_study(
        queries,
        {
            "GuidedRelax": guided_answers,
            "RandomRelax": random_answers,
            "ROCK": rock_answers,
        },
    )


@dataclass
class RecallResult:
    """Relaxation retrieval vs an exhaustive scan under the same Sim."""

    k: int
    n_queries: int
    recall_at_k: float = 0.0
    mean_probes: float = 0.0
    mean_extracted: float = 0.0
    scan_rows: int = 0


def run_retrieval_recall(
    car_rows: int = 8000,
    sample_rows: int = 2000,
    n_queries: int = 20,
    k: int = 10,
    threshold: float = 0.4,
    seed: int = 7,
    settings: AIMQSettings | None = None,
) -> RecallResult:
    """How much of the *true* top-k does probing-based retrieval find?

    The paper never measures this, but it is the natural effectiveness
    question for the architecture: AIMQ could in principle scan the
    whole relation and rank every tuple with its mined Sim, yet the
    autonomous setting forbids scans — relaxation probing is the
    workaround.  Ground truth here is the full-scan top-k under the
    *same* mined similarity; recall@k measures what the probing search
    loses in exchange for touching only a sliver of the source.
    """
    settings = settings or AIMQSettings(max_relaxation_level=4)
    webdb, model, table = _prepare_cardb_model(
        car_rows, sample_rows, seed, settings
    )
    rng = random.Random(seed + 9)
    query_ids = rng.sample(range(len(table)), min(n_queries, len(table)))

    engine = model.engine(webdb)
    result = RecallResult(k=k, n_queries=len(query_ids), scan_rows=len(table))
    recalls: list[float] = []
    probes: list[int] = []
    extracted: list[int] = []
    for query_id in query_ids:
        row = table.row(query_id)
        # Exhaustive ground truth under the identical similarity model.
        scored = sorted(
            (
                (engine.similarity.sim_between_rows(row, table.row(i)), i)
                for i in range(len(table))
                if i != query_id
            ),
            key=lambda pair: (-pair[0], pair[1]),
        )
        truth = {i for _, i in scored[:k]}

        webdb.reset_accounting()
        answers, trace = engine.gather_similar(
            row, similarity_threshold=threshold, target=4 * k, row_id=query_id
        )
        found = {answer.row_id for answer in answers[:k]}
        recalls.append(len(found & truth) / k)
        probes.append(webdb.log.probes_issued)
        extracted.append(trace.tuples_extracted)

    result.recall_at_k = sum(recalls) / len(recalls)
    result.mean_probes = sum(probes) / len(probes)
    result.mean_extracted = sum(extracted) / len(extracted)
    return result


def run_fig8_multi(
    seeds: tuple[int, ...] = (7, 17, 27),
    **kwargs,
) -> StudyOutcome:
    """Average the §6.4 study over several dataset/query seeds.

    The paper itself cautions that RandomRelax "is not [a strawman]
    here" — with 14 queries a single draw is noisy, so the benchmark
    aggregates a few independent panels before comparing systems.
    """
    per_query: dict[str, list[float]] = {}
    for seed in seeds:
        outcome = run_fig8(seed=seed, **kwargs)
        for name, values in outcome.per_query.items():
            per_query.setdefault(name, []).extend(values)
    return StudyOutcome(
        system_mrr={
            name: sum(values) / len(values)
            for name, values in per_query.items()
        },
        per_query=per_query,
    )


# ---------------------------------------------------------------------------
# Figure 9 — domain independence: classification accuracy on CensusDB
# ---------------------------------------------------------------------------


@dataclass
class Fig9Result:
    """Top-k label-match accuracy of AIMQ vs ROCK on CensusDB."""

    ks: list[int]
    aimq_accuracy: dict[int, float] = field(default_factory=dict)
    rock_accuracy: dict[int, float] = field(default_factory=dict)
    n_queries: int = 0

    def aimq_beats_rock(self) -> bool:
        return all(
            self.aimq_accuracy[k] > self.rock_accuracy[k] for k in self.ks
        )


def run_fig9(
    census_rows: int = 6000,
    sample_rows: int = 2000,
    n_queries: int = 100,
    ks: tuple[int, ...] = (10, 5, 3, 1),
    threshold: float = 0.4,
    seed: int = 11,
    settings: AIMQSettings | None = None,
    rock_sample: int = 400,
    rock_theta: float = 0.4,
    rock_clusters: int = 16,
) -> Fig9Result:
    """The §6.5 experiment: same-class accuracy of top-k answers.

    Query tuples are drawn outside the learning sample, balanced across
    the two income classes.
    """
    settings = settings or census_settings()
    table, labels = generate_censusdb(census_rows, seed=seed)
    webdb = AutonomousWebDatabase(table)

    rng = random.Random(seed + 1)
    ordering = list(range(len(table)))
    rng.shuffle(ordering)
    sample_ids = sorted(ordering[:sample_rows])
    outside_ids = ordering[sample_rows:]
    sample = table.sample(sample_ids)
    model = build_model_from_sample(sample, settings=settings)

    # Balance queries over classes.
    by_class: dict[str, list[int]] = {}
    for row_id in outside_ids:
        by_class.setdefault(labels[row_id], []).append(row_id)
    per_class = max(1, n_queries // max(1, len(by_class)))
    query_ids: list[int] = []
    for class_ids in by_class.values():
        query_ids.extend(class_ids[:per_class])

    rock = RockQueryAnswerer(
        table,
        config=RockConfig(theta=rock_theta, n_clusters=rock_clusters),
        sample_size=rock_sample,
        seed=seed,
    ).fit()

    max_k = max(ks)
    result = Fig9Result(ks=list(ks), n_queries=len(query_ids))
    aimq_scores: dict[int, list[float]] = {k: [] for k in ks}
    rock_scores: dict[int, list[float]] = {k: [] for k in ks}

    for query_id in query_ids:
        row = table.row(query_id)
        query_label = labels[query_id]

        engine = model.engine(webdb, strategy=GuidedRelax(model.ordering))
        answers, _ = engine.gather_similar(
            row, similarity_threshold=threshold, target=max_k, row_id=query_id
        )
        aimq_labels = [labels[a.row_id] for a in answers[:max_k]]

        rock_result = rock.answer_row_id(query_id, k=max_k)
        rock_labels = [labels[a.row_id] for a in rock_result]

        for k in ks:
            aimq_scores[k].append(top_k_accuracy(aimq_labels, query_label, k))
            rock_scores[k].append(top_k_accuracy(rock_labels, query_label, k))

    for k in ks:
        result.aimq_accuracy[k] = sum(aimq_scores[k]) / len(aimq_scores[k])
        result.rock_accuracy[k] = sum(rock_scores[k]) / len(rock_scores[k])
    return result
