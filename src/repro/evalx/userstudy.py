"""Simulated user study (stand-in for the paper's 8 graduate students).

§6.4 had human volunteers re-rank each system's top-10 answers by their
own notion of similarity to the query, with irrelevant tuples ranked
zero.  We replace the humans with a panel of noisy oracles:

* each simulated user scores an answer against the query with a
  *hidden ground-truth* similarity derived from the car catalogue
  (segment/tier affinities, price/year/mileage closeness) — information
  AIMQ never observes, so the comparison is not circular;
* each user perturbs scores with personal Gaussian noise and applies a
  relevance floor below which a tuple is "completely irrelevant"
  (rank 0);
* users then rank the remaining answers 1..n by noisy score.

The panel reports the paper's redefined MRR per system.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.datasets.catalog import ground_truth_model_affinity
from repro.db.schema import RelationSchema
from repro.evalx.metrics import average_mrr, paper_mrr

__all__ = [
    "CarGroundTruth",
    "SimulatedUser",
    "SimulatedUserPanel",
    "StudyOutcome",
]


class CarGroundTruth:
    """Hidden query–tuple similarity for CarDB (the users' taste).

    Weights are fixed a priori and deliberately different from anything
    AIMQ mines: users care most about what the car *is* (model), then
    what it costs, then its age and wear, and barely about where it is
    or its colour.
    """

    WEIGHTS: Mapping[str, float] = {
        "Model": 0.30,
        "Make": 0.12,
        "Price": 0.18,
        "Year": 0.20,
        "Mileage": 0.10,
        "Location": 0.05,
        "Color": 0.05,
    }

    def __init__(self, schema: RelationSchema) -> None:
        self.schema = schema

    def score(
        self, reference: Mapping[str, object], row: Sequence[object]
    ) -> float:
        """Similarity in [0, 1] between reference bindings and a row."""
        total_weight = 0.0
        total = 0.0
        for attribute, weight in self.WEIGHTS.items():
            if attribute not in reference or attribute not in self.schema:
                continue
            expected = reference[attribute]
            actual = row[self.schema.position(attribute)]
            if expected is None or actual is None:
                continue
            total_weight += weight
            total += weight * self._attribute_score(attribute, expected, actual)
        if total_weight == 0.0:
            return 0.0
        return total / total_weight

    def _attribute_score(
        self, attribute: str, expected: object, actual: object
    ) -> float:
        if attribute == "Model":
            return ground_truth_model_affinity(str(expected), str(actual))
        if attribute == "Make":
            return 1.0 if expected == actual else 0.0
        if attribute == "Year":
            gap = abs(int(expected) - int(actual))
            return max(0.0, 1.0 - gap / 6.0)
        if attribute in ("Price", "Mileage"):
            reference_value = float(expected)  # type: ignore[arg-type]
            if reference_value == 0:
                return 1.0 if float(actual) == 0 else 0.0  # type: ignore[arg-type]
            gap = abs(reference_value - float(actual)) / abs(reference_value)  # type: ignore[arg-type]
            return max(0.0, 1.0 - gap)
        return 1.0 if expected == actual else 0.0


@dataclass
class SimulatedUser:
    """One panel member: personal noise and an irrelevance floor.

    The noise a user applies to a tuple is a *fixed function* of
    (user, tuple): a human's opinion of a specific car does not change
    between the answer lists of competing systems.  This pairs the
    comparison — two systems returning the same tuple are judged on the
    same perturbed score — which is both more realistic and far lower
    variance than redrawing noise per evaluation.
    """

    seed: int
    noise_sigma: float = 0.08
    relevance_floor: float = 0.25

    def _noise(self, row: Sequence[object]) -> float:
        if self.noise_sigma == 0.0:
            return 0.0
        digest = zlib.crc32(repr((self.seed, tuple(row))).encode("utf-8"))
        return random.Random(digest).gauss(0.0, self.noise_sigma)

    def rank_answers(
        self,
        ground_truth: CarGroundTruth,
        reference: Mapping[str, object],
        rows: Sequence[Sequence[object]],
    ) -> list[int]:
        """User ranks (1-based; 0 = irrelevant) in the given row order."""
        noisy: list[tuple[int, float]] = []
        for index, row in enumerate(rows):
            score = ground_truth.score(reference, row) + self._noise(row)
            noisy.append((index, score))

        ranks = [0] * len(rows)
        relevant = [
            (index, score)
            for index, score in noisy
            if score >= self.relevance_floor
        ]
        relevant.sort(key=lambda pair: -pair[1])
        for rank, (index, _) in enumerate(relevant, start=1):
            ranks[index] = rank
        return ranks


@dataclass
class StudyOutcome:
    """Average MRR per system plus the per-query breakdown."""

    system_mrr: dict[str, float]
    per_query: dict[str, list[float]]

    def best_system(self) -> str:
        return max(self.system_mrr, key=lambda name: self.system_mrr[name])


class SimulatedUserPanel:
    """A fixed panel of simulated users evaluating competing systems."""

    def __init__(
        self,
        schema: RelationSchema,
        n_users: int = 8,
        seed: int = 42,
        noise_sigma: float = 0.08,
        relevance_floor: float = 0.25,
    ) -> None:
        if n_users < 1:
            raise ValueError("panel needs at least one user")
        self.ground_truth = CarGroundTruth(schema)
        master = random.Random(seed)
        self.users = [
            SimulatedUser(
                seed=master.randrange(2**31),
                noise_sigma=noise_sigma,
                relevance_floor=relevance_floor,
            )
            for _ in range(n_users)
        ]

    def mrr_for_answers(
        self,
        reference: Mapping[str, object],
        rows: Sequence[Sequence[object]],
    ) -> float:
        """Panel-average MRR for one system's answer list to one query."""
        if not rows:
            return 0.0
        per_user = [
            paper_mrr(user.rank_answers(self.ground_truth, reference, rows))
            for user in self.users
        ]
        return sum(per_user) / len(per_user)

    def run_study(
        self,
        queries: Sequence[Mapping[str, object]],
        system_answers: Mapping[str, Sequence[Sequence[Sequence[object]]]],
    ) -> StudyOutcome:
        """Evaluate several systems over a shared query set.

        ``system_answers[name][q]`` is the list of answer rows that
        system ``name`` returned for query ``q``.
        """
        per_query: dict[str, list[float]] = {name: [] for name in system_answers}
        for query_index, reference in enumerate(queries):
            for name, answers in system_answers.items():
                per_query[name].append(
                    self.mrr_for_answers(reference, answers[query_index])
                )
        return StudyOutcome(
            system_mrr={
                name: average_mrr(values) for name, values in per_query.items()
            },
            per_query=per_query,
        )
