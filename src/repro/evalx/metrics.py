"""Evaluation metrics used by the paper's experiments.

* **Work/RelevantTuple** (§6.3): average tuples a user must look at per
  relevant tuple, ``|T_extracted| / |T_relevant|``.
* **MRR as redefined in §6.4**: TREC's reciprocal rank assumes one
  correct answer; the paper instead treats each of the top-10 answers
  as having its own correct position and scores rank agreement:

      MRR(Q) = Avg_i ( 1 / (|UserRank(t_i) − SystemRank(t_i)| + 1) )

  with completely irrelevant tuples given user rank zero.
* **Top-k classification accuracy** (§6.5): fraction of the k best
  answers sharing the query tuple's class label.
"""

from __future__ import annotations

from typing import Sequence

__all__ = [
    "rank_agreement",
    "paper_mrr",
    "average_mrr",
    "top_k_accuracy",
    "work_per_relevant",
]


def rank_agreement(user_rank: int, system_rank: int) -> float:
    """1 / (|UserRank − SystemRank| + 1), the per-answer MRR term."""
    if system_rank < 1:
        raise ValueError("system ranks are 1-based")
    if user_rank < 0:
        raise ValueError("user rank cannot be negative (0 = irrelevant)")
    return 1.0 / (abs(user_rank - system_rank) + 1)


def paper_mrr(user_ranks: Sequence[int]) -> float:
    """MRR of one query given user ranks in system order.

    ``user_ranks[i]`` is the rank the user gave to the system's
    ``(i+1)``-th answer; zero marks an irrelevant tuple (the paper's
    instruction to its study subjects) and, per the formula, drags the
    agreement down the higher the system placed that tuple.
    """
    if not user_ranks:
        return 0.0
    total = sum(
        rank_agreement(user_rank, system_rank)
        for system_rank, user_rank in enumerate(user_ranks, start=1)
    )
    return total / len(user_ranks)


def average_mrr(per_query_mrrs: Sequence[float]) -> float:
    """Mean MRR over a query set (the Figure 8 bar heights)."""
    if not per_query_mrrs:
        return 0.0
    return sum(per_query_mrrs) / len(per_query_mrrs)


def top_k_accuracy(
    answer_labels: Sequence[str], query_label: str, k: int
) -> float:
    """Fraction of the first ``k`` answers whose label matches the query.

    Fewer than ``k`` answers is scored against ``k`` — an empty slot is
    a miss, matching how the paper's accuracy would punish a system
    that cannot fill its top-k.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    matches = sum(
        1 for label in list(answer_labels)[:k] if label == query_label
    )
    return matches / k


def work_per_relevant(extracted: int, relevant: int) -> float:
    """§6.3's efficiency measure; infinite when nothing relevant."""
    if extracted < 0 or relevant < 0:
        raise ValueError("counts cannot be negative")
    if relevant == 0:
        return float("inf")
    return extracted / relevant
