"""Command-line interface: ``python -m repro <command>``.

Four commands cover the life cycle a downstream user walks through:

* ``generate`` — synthesise a CarDB/CensusDB instance to CSV;
* ``mine``     — run the offline pipeline and (optionally) persist the
  mined model as JSON;
* ``query``    — answer an imprecise query, optionally from a stored
  model;
* ``experiment`` — rerun one of the paper's tables/figures;
* ``stats``    — exercise the full pipeline once with observability on
  and dump the metrics snapshot;
* ``trace``    — answer one query with tracing + wide events on and
  summarise the recorded spans (or summarise an existing JSONL event
  log via ``--from-events``);
* ``bench``    — time every fast path against its reference path and
  emit a ``BENCH_perf.json`` report (see ``docs/PERFORMANCE.md``).

Every command also accepts the observability flags, before **or**
after the subcommand: ``--trace`` (print the recorded span trees
afterwards), ``--metrics-out PATH`` (metrics snapshot, JSON or
Prometheus text per ``--metrics-format``), ``--events-out PATH``
(wide-event log as JSONL), ``--events-probe`` (additionally one event
per issued probe), and ``--chrome-out PATH`` (Chrome/Perfetto trace
JSON for ``chrome://tracing`` or https://ui.perfetto.dev).

Examples::

    python -m repro generate cardb --rows 10000 --out /tmp/cars.csv
    python -m repro mine cardb --rows 8000 --sample 2000 --save /tmp/model.json
    python -m repro query cardb --rows 8000 --sample 2000 -k 5 \\
        Model=Camry Price=10000
    python -m repro query cardb --batched --batch-workers 4 --trace \\
        --events-out events.jsonl --chrome-out trace.json Make=Ford
    python -m repro trace cardb --batched --batch-workers 4 Make=Ford
    python -m repro experiment fig5
    python -m repro stats cardb --rows 2000 --sample 500 --format prom
    python -m repro bench --scale smoke --check --out BENCH_perf.json
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import random
import sys
from typing import Sequence

from repro.core.config import AIMQSettings
from repro.core.pipeline import AIMQModel, build_model
from repro.core.parser import parse_query
from repro.core.plan import FRONTIER_MODES, PlannerConfig
from repro.core.query import ImpreciseQuery
from repro.core.store import StoreError, load_model, save_model
from repro.datasets.cardb import cardb_webdb, generate_cardb
from repro.datasets.census import census_webdb, generate_censusdb
from repro.analysis.cli import add_lint_arguments, run_lint
from repro.db.csvio import write_csv
from repro.db.errors import DatabaseError
from repro.db.faults import FaultPolicy, FaultSpec
from repro.db.webdb import AutonomousWebDatabase
from repro.evalx import (
    census_settings,
    format_efficiency,
    format_fig3,
    format_fig4,
    format_fig5,
    format_fig8,
    format_fig9,
    format_metrics_appendix,
    format_table2,
    format_table3,
    run_fig3,
    run_fig4,
    run_fig5,
    run_fig8_multi,
    run_fig9,
    run_relaxation_efficiency,
    run_table1,
    run_table2,
    run_table3,
)
from repro.obs import (
    OBS,
    render_span_tree,
    span_summary,
    to_json,
    to_prometheus,
    write_chrome_trace,
)
from repro.perf.bench import (
    SCALES,
    SCENARIOS,
    append_history,
    check_baseline,
    check_regressions,
    load_report,
    run_bench,
)
from repro.resilience import ResilienceError, ResiliencePolicy, ResilientWebDatabase
from repro.serve import AIMQServer, ServeConfig, preregister_serve_metrics
from repro.simmining.index import preregister_index_metrics

__all__ = ["main", "build_parser"]


def _dataset_webdb(name: str, rows: int, seed: int) -> AutonomousWebDatabase:
    if name == "cardb":
        return cardb_webdb(rows, seed=seed)
    if name == "censusdb":
        return census_webdb(rows, seed=seed)[0]
    raise ValueError(f"unknown dataset {name!r}")


def _dataset_settings(name: str, sim_index: bool = False) -> AIMQSettings:
    if name == "censusdb":
        settings = census_settings(error_threshold=0.3)
    else:
        settings = AIMQSettings(max_relaxation_level=3)
    if sim_index:
        # Inverted-index retrieval end to end: candidate generation
        # during mining, the neighbour index behind top_similar, and
        # bound-based early termination while ranking.  Answers are
        # bit-identical either way (docs/PERFORMANCE.md §9).
        settings = dataclasses.replace(
            settings,
            indexed_ranking=True,
            simmining=dataclasses.replace(
                settings.simmining, use_index=True, index_topk=True
            ),
        )
    return settings


def _parse_binding(text: str) -> tuple[str, object]:
    if "=" not in text:
        raise argparse.ArgumentTypeError(
            f"constraint {text!r} must look like Attribute=Value"
        )
    attribute, _, raw = text.partition("=")
    value: object = raw
    try:
        value = int(raw)
    except ValueError:
        try:
            value = float(raw)
        except ValueError:
            pass
    return attribute, value


# -- commands ---------------------------------------------------------------


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.dataset == "cardb":
        table = generate_cardb(args.rows, seed=args.seed)
        labels = None
    else:
        table, labels = generate_censusdb(args.rows, seed=args.seed)
    written = write_csv(table, args.out)
    print(f"wrote {written} rows to {args.out}")
    if labels is not None and args.labels_out:
        with open(args.labels_out, "w", encoding="utf-8") as handle:
            handle.write("\n".join(labels) + "\n")
        print(f"wrote {len(labels)} labels to {args.labels_out}")
    return 0


def _mine_model(args: argparse.Namespace) -> tuple[AutonomousWebDatabase, AIMQModel]:
    webdb = _dataset_webdb(args.dataset, args.rows, args.seed)
    if getattr(args, "model", None):
        return webdb, load_model(args.model, webdb.schema)
    model = build_model(
        webdb,
        sample_size=args.sample,
        rng=random.Random(args.seed + 1),
        settings=_dataset_settings(
            args.dataset, sim_index=getattr(args, "sim_index", False)
        ),
    )
    return webdb, model


def _cmd_mine(args: argparse.Namespace) -> int:
    webdb, model = _mine_model(args)
    print(model.ordering.describe())
    print()
    print(model.dependencies.summary())
    print()
    for attribute in webdb.schema.categorical_names[:3]:
        values = sorted(model.value_similarity.known_values(attribute))
        if not values:
            continue
        probe = values[0]
        ranked = model.value_similarity.top_similar(attribute, probe, n=3)
        rendered = ", ".join(f"{v} ({s:.2f})" for v, s in ranked)
        print(f"{attribute}={probe} ~ {rendered}")
    if args.save:
        path = save_model(model, args.save)
        print(f"\nmodel saved to {path}")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    webdb, model = _mine_model(args)
    if args.text:
        if args.constraints:
            raise ValueError("use either --text or Attr=Value pairs, not both")
        query = parse_query(args.text, relation=webdb.schema.name)
    elif args.constraints:
        bindings = dict(_parse_binding(text) for text in args.constraints)
        query = ImpreciseQuery.like(webdb.schema.name, **bindings)
    else:
        raise ValueError("provide --text or at least one Attr=Value pair")
    if args.fault_rate > 0.0:
        webdb.set_fault_policy(
            FaultPolicy(
                FaultSpec(transient_rate=args.fault_rate),
                seed=args.fault_seed,
            )
        )
    resilience = (
        ResiliencePolicy() if (args.resilient or args.fault_rate > 0.0) else None
    )
    planner = (
        PlannerConfig(frontier=args.frontier, workers=args.batch_workers)
        if args.batched
        else None
    )
    engine = model.engine(webdb, resilience=resilience, planner=planner)
    answers = engine.answer(query, k=args.k)
    print(answers.describe(webdb.schema))
    trace = answers.trace
    print(
        f"\n{trace.queries_issued} probes, {trace.tuples_extracted} extracted, "
        f"{trace.tuples_relevant} relevant"
    )
    if planner is not None:
        print(
            f"planner: {trace.probes_subsumed} subsumed, "
            f"{trace.probes_speculative} speculative, "
            f"{trace.frontier_batches} frontier batches, "
            f"{trace.logical_probes} logical probes"
        )
    if answers.degraded:
        print()
        print(answers.degradation.summary())
    if isinstance(engine.webdb, ResilientWebDatabase):
        stats = engine.webdb.stats()
        rendered = ", ".join(f"{key}={value}" for key, value in stats.items())
        print(f"resilience: {rendered}")
    return 0


_EXPERIMENTS = {
    "table1": lambda: print(run_table1()),
    "table2": lambda: print(format_table2(run_table2())),
    "table3": lambda: print(format_table3(run_table3())),
    "fig3": lambda: print(format_fig3(run_fig3())),
    "fig4": lambda: print(format_fig4(run_fig4())),
    "fig5": lambda: print(format_fig5(run_fig5())),
    "fig6": lambda: print(
        format_efficiency(run_relaxation_efficiency("guided"))
    ),
    "fig7": lambda: print(
        format_efficiency(run_relaxation_efficiency("random"))
    ),
    "fig8": lambda: print(format_fig8(run_fig8_multi())),
    "fig9": lambda: print(format_fig9(run_fig9())),
}


def _cmd_experiment(args: argparse.Namespace) -> int:
    _EXPERIMENTS[args.name]()
    appendix = format_metrics_appendix()
    if appendix:
        print()
        print(appendix)
    return 0


def _demo_query(
    webdb: AutonomousWebDatabase, model: AIMQModel
) -> ImpreciseQuery:
    """A small likeness query built from the sample's first row."""
    schema = webdb.schema
    row = model.sample.row(0)
    bindings: dict[str, object] = {}
    for name in schema.categorical_names + schema.numeric_names:
        value = row[schema.position(name)]
        if value is None:
            continue
        bindings[name] = value
        if len(bindings) >= 3:
            break
    if not bindings:
        raise ValueError("sample row has no usable bindings for a demo query")
    return ImpreciseQuery.like(schema.name, **bindings)


def _preregister_stats_families() -> None:
    """Zero-init the resilience metric families for ``repro stats``.

    A healthy run never trips a retry or opens the breaker, so those
    families would be absent from the dump exactly when a reader most
    wants to confirm they are quiet.  Register one concrete zero
    series per family (a bare family with no series would violate the
    snapshot schema).
    """
    registry = OBS.registry
    registry.counter(
        "repro_resilience_attempts_total",
        "Guarded probe attempts, by outcome.",
        labels=("outcome",),
    ).labels(outcome="ok").inc(0)
    registry.counter(
        "repro_resilience_retries_total",
        "Retry sleeps performed, by transient error kind.",
        labels=("error",),
    ).labels(error="TransientSourceError").inc(0)
    registry.counter(
        "repro_resilience_retry_exhaustions_total",
        "Guarded calls whose transient failures "
        "outlasted the retry allowance.",
    ).inc(0)
    registry.counter(
        "repro_resilience_deadline_refusals_total",
        "Backoff sleeps refused by a deadline budget, by scope.",
        labels=("scope",),
    ).labels(scope="probe").inc(0)
    registry.histogram(
        "repro_resilience_backoff_seconds",
        "Backoff sleep durations before retrying a probe.",
        buckets=(0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 5.0),
    ).unlabelled()
    registry.counter(
        "repro_resilience_breaker_rejections_total",
        "Guarded calls refused because the circuit was open.",
    ).inc(0)
    registry.counter(
        "repro_resilience_breaker_transitions_total",
        "Circuit-breaker state transitions.",
        labels=("from_state", "to_state"),
    ).labels(from_state="closed", to_state="open").inc(0)
    registry.counter(
        "repro_resilience_skipped_steps_total",
        "Relaxation work abandoned after resilience gave up, "
        "by stage and error kind.",
        labels=("stage", "error"),
    ).labels(stage="relaxation", error="TransientSourceError").inc(0)
    # The serving families too: a stats dump should show the server-side
    # metric shapes even when no server ran in this process.
    preregister_serve_metrics(registry)
    # And the inverted-index families: a run without --sim-index keeps
    # them at zero, which is exactly the "quiet, not absent" signal the
    # dump exists to provide.
    preregister_index_metrics(registry)


def _cmd_stats(args: argparse.Namespace) -> int:
    """Run build + one query with observability on; dump the snapshot."""
    OBS.reset()
    OBS.enable()
    _preregister_stats_families()
    webdb, model = _mine_model(args)
    # Answer through the resilience wrapper and the semantic planner so
    # every layer's metric families (attempt outcomes, retries, breaker
    # state, probe subsumption, frontier batches) appear in the dump.
    engine = model.engine(
        webdb,
        resilience=ResiliencePolicy(),
        planner=PlannerConfig(frontier="tuple", workers=1),
    )
    engine.answer(_demo_query(webdb, model), k=args.k)
    snapshot = OBS.registry.snapshot()
    sections = []
    if args.format in ("json", "both"):
        sections.append(to_json(snapshot))
    if args.format in ("prom", "both"):
        sections.append(to_prometheus(snapshot).rstrip("\n"))
    output = "\n\n".join(sections)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(output + "\n")
        print(f"metrics snapshot written to {args.out}")
    else:
        print(output)
    return 0


def _summarise_events(path: str) -> int:
    """Summarise an existing JSONL wide-event log without running."""
    counts: dict[str, int] = {}
    last_answer = None
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            name = str(record.get("event", "?"))
            counts[name] = counts.get(name, 0) + 1
            if name.startswith("engine."):
                last_answer = record
    if not counts:
        print(f"no events in {path}")
        return 0
    for name in sorted(counts):
        print(f"{counts[name]:>6}  {name}")
    if last_answer is not None:
        print()
        print(json.dumps(last_answer, indent=2, sort_keys=True))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Answer one query with tracing + events on; summarise the trace."""
    if args.from_events:
        return _summarise_events(args.from_events)
    OBS.reset()
    OBS.enable()
    OBS.events.enabled = True
    webdb, model = _mine_model(args)
    if args.constraints:
        bindings = dict(_parse_binding(text) for text in args.constraints)
        query = ImpreciseQuery.like(webdb.schema.name, **bindings)
    else:
        query = _demo_query(webdb, model)
    resilience = ResiliencePolicy() if args.resilient else None
    planner = (
        PlannerConfig(frontier=args.frontier, workers=args.batch_workers)
        if args.batched
        else None
    )
    engine = model.engine(webdb, resilience=resilience, planner=planner)
    engine.answer(query, k=args.k)
    root = None
    for candidate in reversed(OBS.tracer.traces()):
        if candidate.name == "engine.answer":
            root = candidate
            break
    if root is None:
        print("no engine.answer trace recorded", file=sys.stderr)
        return 1
    if args.tree:
        print(render_span_tree(root))
    else:
        print(
            f"{'span':<28} {'count':>6} {'total_s':>9} "
            f"{'max_s':>9} {'errors':>6}"
        )
        for row in span_summary([root]):
            print(
                f"{row['name']:<28} {row['count']:>6} "
                f"{row['total_seconds']:>9.4f} {row['max_seconds']:>9.4f} "
                f"{row['errors']:>6}"
            )
    event = OBS.events.last()
    if event is not None:
        print()
        print(json.dumps(event, indent=2, sort_keys=True))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    """Run the static invariant checks over the source tree."""
    return run_lint(args)


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the long-lived answering server until SIGTERM/SIGINT."""
    config = ServeConfig(
        host=args.host,
        port=args.port,
        dataset=args.dataset,
        rows=args.rows,
        sample=args.sample,
        seed=args.seed,
        model_path=args.model,
        sim_index=getattr(args, "sim_index", False),
        default_k=args.k,
        max_inflight=args.max_inflight,
        max_queue=args.max_queue,
        queue_wait_seconds=args.queue_wait,
        rate=args.rate,
        burst=args.burst,
        pressure_threshold=args.pressure_threshold,
        query_deadline_seconds=args.deadline,
        pressured_deadline_seconds=args.pressured_deadline,
        pressured_probe_cap=args.pressured_probe_cap,
        drain_seconds=args.drain_seconds,
    )
    # A server always runs with metrics and wide events on — /metrics
    # and the per-request audit trail are part of its contract.
    OBS.enable()
    OBS.events.enabled = True
    print(f"loading {config.dataset} model ...", flush=True)
    server = AIMQServer(config)
    print(f"serving {config.dataset} on {server.url}", flush=True)
    drained = server.serve_forever()
    print(f"shut down ({'drained' if drained else 'drain deadline hit'})")
    return 0 if drained else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    """Run the fast-path micro-benchmarks and report/check the results."""
    # Read the baseline before the run: --out may legitimately point at
    # the same file the baseline is read from.
    baseline = load_report(args.baseline) if args.baseline else None
    report = run_bench(args.scale, only=args.only)
    rendered = json.dumps(report, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
        print(f"benchmark report written to {args.out}")
    else:
        print(rendered)
    for name, entry in report["scenarios"].items():
        print(
            f"{name}: {entry['speedup']}x "
            f"({entry['slow_seconds']:.3f}s -> {entry['fast_seconds']:.3f}s, "
            f"equivalent={entry['equivalent']})"
        )
    if args.history:
        append_history(report, args.history)
        print(f"trajectory line appended to {args.history}")
    failures: list[str] = []
    if args.check:
        failures.extend(
            check_regressions(report, max_regression=args.max_regression)
        )
    if baseline is not None:
        failures.extend(
            check_baseline(report, baseline, max_regression=args.max_regression)
        )
    if failures:
        for failure in failures:
            print(f"FAIL {failure}", file=sys.stderr)
        return 1
    if args.check or baseline is not None:
        print("all fast paths within tolerance")
    return 0


# -- parser -------------------------------------------------------------------


def _add_obs_args(
    target: argparse.ArgumentParser, suppress: bool = False
) -> None:
    """Register the observability flags on ``target``.

    The same flags are registered on the root parser (real defaults)
    and on every subparser (``SUPPRESS`` defaults), so
    ``repro --trace query ...`` and ``repro query --trace ...`` both
    work: a suppressed subparser flag never overwrites the root value.
    """
    extra: dict[str, object] = (
        {"default": argparse.SUPPRESS} if suppress else {}
    )
    target.add_argument(
        "--trace",
        action="store_true",
        help="enable observability and print the recorded span trees",
        **extra,  # type: ignore[arg-type]
    )
    target.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="enable observability and write a metrics snapshot to PATH",
        **extra,  # type: ignore[arg-type]
    )
    metrics_format: dict[str, object] = (
        {"default": argparse.SUPPRESS} if suppress else {"default": "json"}
    )
    target.add_argument(
        "--metrics-format",
        choices=("json", "prom"),
        help="format for --metrics-out (default: json)",
        **metrics_format,  # type: ignore[arg-type]
    )
    target.add_argument(
        "--events-out",
        metavar="PATH",
        help="enable the wide-event log and write it to PATH as JSONL",
        **extra,  # type: ignore[arg-type]
    )
    target.add_argument(
        "--events-probe",
        action="store_true",
        help="additionally emit one wide event per issued probe",
        **extra,  # type: ignore[arg-type]
    )
    target.add_argument(
        "--chrome-out",
        metavar="PATH",
        help="enable observability and write a Chrome/Perfetto trace "
        "(chrome://tracing, ui.perfetto.dev) to PATH",
        **extra,  # type: ignore[arg-type]
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AIMQ (ICDE 2006) reproduction command line",
    )
    _add_obs_args(parser)
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser(
        "generate", help="synthesise a dataset to CSV"
    )
    generate.add_argument("dataset", choices=("cardb", "censusdb"))
    generate.add_argument("--rows", type=int, default=10_000)
    generate.add_argument("--seed", type=int, default=7)
    generate.add_argument("--out", required=True)
    generate.add_argument(
        "--labels-out", help="censusdb only: income labels output path"
    )
    _add_obs_args(generate, suppress=True)
    generate.set_defaults(handler=_cmd_generate)

    def add_mining_args(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("dataset", choices=("cardb", "censusdb"))
        sub.add_argument("--rows", type=int, default=8_000)
        sub.add_argument("--sample", type=int, default=2_000)
        sub.add_argument("--seed", type=int, default=7)
        sub.add_argument(
            "--model", help="load a stored model instead of mining"
        )
        sub.add_argument(
            "--sim-index",
            action="store_true",
            help="mine and answer through the inverted similarity "
            "index (identical answers, sublinear retrieval)",
        )

    mine = subparsers.add_parser(
        "mine", help="probe + mine and print the learned artifacts"
    )
    add_mining_args(mine)
    mine.add_argument("--save", help="persist the mined model as JSON")
    _add_obs_args(mine, suppress=True)
    mine.set_defaults(handler=_cmd_mine)

    query = subparsers.add_parser("query", help="answer an imprecise query")
    add_mining_args(query)
    query.add_argument("-k", type=int, default=10)
    query.add_argument(
        "--text",
        help="paper-style query text, e.g. "
        "\"Model like Camry AND Price < 10000\"",
    )
    query.add_argument(
        "--resilient",
        action="store_true",
        help="guard every probe with retries, a circuit breaker and "
        "deadline budgets",
    )
    query.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        metavar="P",
        help="inject seeded transient probe failures with probability P "
        "(implies --resilient)",
    )
    query.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed for the deterministic fault schedule (default: 0)",
    )
    query.add_argument(
        "--batched",
        action="store_true",
        help="answer through the semantic probe planner (batched "
        "frontiers + containment-based probe reuse; bit-identical "
        "answers)",
    )
    query.add_argument(
        "--frontier",
        choices=FRONTIER_MODES,
        default="tuple",
        help="planner frontier mode for --batched (default: tuple)",
    )
    query.add_argument(
        "--batch-workers",
        type=int,
        default=1,
        metavar="N",
        help="bounded thread pool size for batch dispatch (default: 1)",
    )
    _add_obs_args(query, suppress=True)
    query.add_argument(
        "constraints",
        nargs="*",
        metavar="Attr=Value",
        help="likeness constraints, e.g. Model=Camry Price=10000",
    )
    query.set_defaults(handler=_cmd_query)

    experiment = subparsers.add_parser(
        "experiment", help="rerun one of the paper's tables/figures"
    )
    experiment.add_argument("name", choices=sorted(_EXPERIMENTS))
    _add_obs_args(experiment, suppress=True)
    experiment.set_defaults(handler=_cmd_experiment)

    stats = subparsers.add_parser(
        "stats",
        help="run the pipeline once with observability on and dump metrics",
    )
    add_mining_args(stats)
    stats.add_argument("-k", type=int, default=10)
    stats.add_argument(
        "--format",
        choices=("json", "prom", "both"),
        default="both",
        help="snapshot rendering(s) to emit (default: both)",
    )
    stats.add_argument("--out", help="write the snapshot here, not stdout")
    _add_obs_args(stats, suppress=True)
    stats.set_defaults(handler=_cmd_stats)

    trace = subparsers.add_parser(
        "trace",
        help="answer one query with tracing + wide events on and "
        "summarise the recorded spans",
    )
    trace.add_argument(
        "dataset", nargs="?", choices=("cardb", "censusdb"), default="cardb"
    )
    trace.add_argument("--rows", type=int, default=2_000)
    trace.add_argument("--sample", type=int, default=500)
    trace.add_argument("--seed", type=int, default=7)
    trace.add_argument("--model", help="load a stored model instead of mining")
    trace.add_argument("-k", type=int, default=5)
    trace.add_argument(
        "--batched",
        action="store_true",
        help="answer through the semantic probe planner",
    )
    trace.add_argument(
        "--frontier",
        choices=FRONTIER_MODES,
        default="tuple",
        help="planner frontier mode for --batched (default: tuple)",
    )
    trace.add_argument(
        "--batch-workers",
        type=int,
        default=1,
        metavar="N",
        help="bounded thread pool size for batch dispatch (default: 1)",
    )
    trace.add_argument(
        "--resilient",
        action="store_true",
        help="answer through the resilience wrapper",
    )
    trace.add_argument(
        "--tree",
        action="store_true",
        help="print the full span tree instead of the per-span summary",
    )
    trace.add_argument(
        "--from-events",
        metavar="PATH",
        help="summarise an existing JSONL event log instead of running",
    )
    _add_obs_args(trace, suppress=True)
    trace.add_argument(
        "constraints",
        nargs="*",
        metavar="Attr=Value",
        help="likeness constraints (default: a demo query from the sample)",
    )
    trace.set_defaults(handler=_cmd_trace)

    bench = subparsers.add_parser(
        "bench",
        help="time the fast paths against their reference implementations",
    )
    bench.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default="default",
        help="problem sizes to benchmark at (default: default)",
    )
    bench.add_argument(
        "--only",
        action="append",
        choices=sorted(SCENARIOS),
        help="run only this scenario (repeatable)",
    )
    bench.add_argument(
        "--out", help="write the JSON report here instead of stdout"
    )
    bench.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero if a fast path regresses or is not equivalent",
    )
    bench.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="tolerated fast-path slowdown for --check (default: 0.25)",
    )
    bench.add_argument(
        "--baseline",
        metavar="PATH",
        help="compare speedups against this committed report and exit "
        "non-zero on decay beyond --max-regression",
    )
    bench.add_argument(
        "--history",
        metavar="PATH",
        help="append one trajectory line for this run (JSONL)",
    )
    _add_obs_args(bench, suppress=True)
    bench.set_defaults(handler=_cmd_bench)

    lint = subparsers.add_parser(
        "lint",
        help="run the reprolint invariant checks (REP001-REP010)",
    )
    add_lint_arguments(lint)
    _add_obs_args(lint, suppress=True)
    lint.set_defaults(handler=_cmd_lint)

    serve = subparsers.add_parser(
        "serve",
        help="run the long-lived answering server (HTTP, stdlib only)",
    )
    add_mining_args(serve)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=8080,
        help="listen port; 0 binds an ephemeral port (default: 8080)",
    )
    serve.add_argument(
        "-k", type=int, default=10, help="default top-k per request"
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=8,
        help="concurrently answering requests before queueing (default: 8)",
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=16,
        help="bounded wait-queue depth; beyond it requests are shed "
        "with 429 (default: 16)",
    )
    serve.add_argument(
        "--queue-wait",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="how long a queued request may wait for a slot (default: 2)",
    )
    serve.add_argument(
        "--rate",
        type=float,
        default=0.0,
        help="token-bucket admission rate in requests/second "
        "(0 disables throttling)",
    )
    serve.add_argument(
        "--burst",
        type=int,
        default=1,
        help="token-bucket burst size (default: 1)",
    )
    serve.add_argument(
        "--pressure-threshold",
        type=float,
        default=0.75,
        help="in-flight utilisation at which per-request budgets "
        "shrink (default: 0.75)",
    )
    serve.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-query deadline budget under normal load "
        "(default: none)",
    )
    serve.add_argument(
        "--pressured-deadline",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="per-query deadline once pressured (default: 2)",
    )
    serve.add_argument(
        "--pressured-probe-cap",
        type=int,
        default=64,
        help="per-request source-probe cap once pressured (default: 64)",
    )
    serve.add_argument(
        "--drain-seconds",
        type=float,
        default=5.0,
        help="how long SIGTERM waits for in-flight requests (default: 5)",
    )
    _add_obs_args(serve, suppress=True)
    serve.set_defaults(handler=_cmd_serve)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    # argparse's single-pass positional matching cannot see trailing
    # Attr=Value pairs behind optionals; collect them as extras.
    args, extras = parser.parse_known_args(argv)
    if extras:
        if getattr(args, "command", None) not in ("query", "trace"):
            print(f"error: unrecognized arguments: {extras}", file=sys.stderr)
            return 2
        malformed = [text for text in extras if "=" not in text]
        if malformed:
            print(
                f"error: constraints must look like Attr=Value: {malformed}",
                file=sys.stderr,
            )
            return 2
        args.constraints = list(args.constraints) + extras
    trace_flag = getattr(args, "trace", False)
    metrics_out = getattr(args, "metrics_out", None)
    chrome_out = getattr(args, "chrome_out", None)
    events_out = getattr(args, "events_out", None)
    events_probe = getattr(args, "events_probe", False)
    saved_events = (OBS.events.enabled, OBS.events.probe_events)
    if trace_flag or metrics_out or chrome_out:
        OBS.enable()
    if events_out or events_probe:
        OBS.events.enabled = True
    if events_probe:
        OBS.events.probe_events = True
    try:
        code = args.handler(args)
        if trace_flag:
            for root in OBS.tracer.traces():
                print(render_span_tree(root))
        if metrics_out:
            render = (
                to_json
                if getattr(args, "metrics_format", "json") == "json"
                else to_prometheus
            )
            rendered = render(OBS.registry.snapshot())
            if not rendered.endswith("\n"):
                rendered += "\n"
            with open(metrics_out, "w", encoding="utf-8") as handle:
                handle.write(rendered)
            print(f"metrics snapshot written to {metrics_out}")
        if events_out:
            written = OBS.events.write_jsonl(events_out)
            print(f"{written} events written to {events_out}")
        if chrome_out:
            written = write_chrome_trace(OBS.tracer.traces(), chrome_out)
            print(f"{written} trace events written to {chrome_out}")
        return code
    except (ValueError, OSError, DatabaseError, StoreError, ResilienceError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        OBS.events.enabled, OBS.events.probe_events = saved_events


if __name__ == "__main__":  # pragma: no cover - module execution path
    sys.exit(main())
