"""REP002 — float discipline: no exact ``==``/``!=`` on float values.

Similarity scores and g3 errors are accumulated floats; exact equality
on them is representation-dependent and breaks the bit-for-bit
fast-path contract.  Comparisons must go through the tolerance helpers
in :mod:`repro.floats` (``close`` for tolerant, ``exact_eq`` for the
rare deliberate bitwise check).

Two IEEE-exact patterns stay legal: comparing against a literal ``0``/
``0.0`` (sentinel guards — zero is exactly representable and these
values are assigned, not computed) and the bodies of the tolerance
helpers themselves.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.finding import Finding
from repro.analysis.rulebase import Rule, attribute_chain, register
from repro.analysis.source import ProjectContext, SourceModule

TOLERANCE_HELPER_NAMES = {
    "close",
    "exact_eq",
    "isclose",
    "floats_equal",
    "approx_equal",
}

_FLOAT_CALLS = {"float", "fsum"}
_ARITH_OPS = (ast.Add, ast.Sub, ast.Mult, ast.Pow, ast.Mod)


@register
class FloatDisciplineRule(Rule):
    rule_id = "REP002"
    title = "float discipline: no exact equality on computed floats"
    hint = (
        "use repro.floats.close(a, b) for tolerant comparison or "
        "repro.floats.exact_eq(a, b) when bitwise identity is the point"
    )

    def check_module(
        self, module: SourceModule, project: ProjectContext
    ) -> Iterable[Finding]:
        checker = _Checker(self, module)
        checker.visit(module.tree)
        return checker.findings


class _Checker(ast.NodeVisitor):
    def __init__(self, rule: Rule, module: SourceModule) -> None:
        self.rule = rule
        self.module = module
        self.findings: list[Finding] = []
        self._float_names: list[set[str]] = [set()]

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if node.name in TOLERANCE_HELPER_NAMES:
            return  # the helpers themselves may compare exactly
        frame: set[str] = set()
        args = node.args
        for arg in [
            *args.posonlyargs,
            *args.args,
            *args.kwonlyargs,
            args.vararg,
            args.kwarg,
        ]:
            if arg is not None and _annotation_is_float(arg.annotation):
                frame.add(arg.arg)
        self._float_names.append(frame)
        self.generic_visit(node)
        self._float_names.pop()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name) and _annotation_is_float(
            node.annotation
        ):
            self._float_names[-1].add(node.target.id)
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            name = node.targets[0].id
            if self._is_float_expr(node.value):
                self._float_names[-1].add(name)
            else:
                self._float_names[-1].discard(name)
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if _is_literal_zero(left) or _is_literal_zero(right):
                continue
            if self._is_float_expr(left) or self._is_float_expr(right):
                symbol = "==" if isinstance(op, ast.Eq) else "!="
                self.findings.append(
                    self.rule.finding(
                        self.module,
                        node,
                        f"exact {symbol} on a float expression; computed "
                        "floats are not exactly comparable",
                    )
                )
        self.generic_visit(node)

    def _is_float_expr(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Constant):
            return isinstance(node.value, float)
        if isinstance(node, ast.Name):
            return any(node.id in frame for frame in self._float_names)
        if isinstance(node, ast.UnaryOp):
            return self._is_float_expr(node.operand)
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, ast.Div):
                return True
            if isinstance(node.op, _ARITH_OPS):
                return self._is_float_expr(node.left) or self._is_float_expr(
                    node.right
                )
            return False
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name):
                return node.func.id in _FLOAT_CALLS
            chain = attribute_chain(node.func)
            return len(chain) == 2 and chain[0] == "math"
        return False


def _annotation_is_float(annotation: ast.expr | None) -> bool:
    if annotation is None:
        return False
    if isinstance(annotation, ast.Name):
        return annotation.id == "float"
    if isinstance(annotation, ast.Constant):  # string annotation
        return annotation.value == "float"
    return False


def _is_literal_zero(node: ast.expr) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        node = node.operand
    return isinstance(node, ast.Constant) and not isinstance(
        node.value, bool
    ) and node.value in (0, 0.0)
