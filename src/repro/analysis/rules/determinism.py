"""REP001 — determinism in mining and scoring paths.

The paper's artifacts (AFD sets, supertuples, similarity matrices,
ranked answers) must be byte-identical across runs.  Three things break
that silently:

* iterating a ``set`` (hash-randomised order for strings) into an
  order-sensitive result;
* the process-global ``random`` module instead of a seeded
  ``random.Random(seed)`` instance;
* wall-clock reads feeding mined/scored values.

The set-iteration and wall-clock checks apply to the ordered-path
packages (mining, clustering, scoring, data generation) and to
standalone files; the unseeded-randomness check applies everywhere.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.finding import Finding
from repro.analysis.rulebase import Rule, attribute_chain, register
from repro.analysis.source import ProjectContext, SourceModule

# Packages whose outputs are ranked, serialized, or mined — iteration
# order and clocks are part of their contract.
ORDERED_PACKAGES = (
    "repro.afd",
    "repro.simmining",
    "repro.rock",
    "repro.core",
    "repro.datasets",
    "repro.sampling",
    "repro.resilience",
)

_SET_BUILTINS = {"set", "frozenset"}
_SET_METHODS = {
    "union",
    "intersection",
    "difference",
    "symmetric_difference",
    "copy",
}
_SET_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
_WALL_CLOCK_HEADS = {"datetime", "date"}
_WALL_CLOCK_TAILS = {"now", "utcnow", "today"}


def _module_in_ordered_scope(module: SourceModule) -> bool:
    name = module.module
    if not name.startswith("repro"):
        return True  # standalone file (fixtures, scripts): full checks
    return any(
        name == pkg or name.startswith(pkg + ".") for pkg in ORDERED_PACKAGES
    )


@register
class DeterminismRule(Rule):
    rule_id = "REP001"
    title = "determinism: ordered iteration, seeded randomness, no wall clock"
    hint = (
        "wrap set iteration in sorted(...), use random.Random(seed), and "
        "keep wall-clock reads out of mining/scoring paths"
    )

    def check_module(
        self, module: SourceModule, project: ProjectContext
    ) -> Iterable[Finding]:
        checker = _Checker(self, module, _module_in_ordered_scope(module))
        checker.visit(module.tree)
        return checker.findings


class _Checker(ast.NodeVisitor):
    """Single-pass walker tracking which local names hold sets."""

    def __init__(self, rule: Rule, module: SourceModule, ordered: bool) -> None:
        self.rule = rule
        self.module = module
        self.ordered = ordered
        self.findings: list[Finding] = []
        self._set_names: list[set[str]] = [set()]

    # -- scope bookkeeping -------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._set_names.append(set())
        self.generic_visit(node)
        self._set_names.pop()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Assign(self, node: ast.Assign) -> None:
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            name = node.targets[0].id
            if self._is_set_expr(node.value):
                self._set_names[-1].add(name)
            else:
                self._set_names[-1].discard(name)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name) and node.value is not None:
            if self._is_set_expr(node.value):
                self._set_names[-1].add(node.target.id)
            else:
                self._set_names[-1].discard(node.target.id)
        self.generic_visit(node)

    # -- set iteration -----------------------------------------------------

    def visit_For(self, node: ast.For) -> None:
        if self.ordered and self._is_set_expr(node.iter):
            self.findings.append(
                self.rule.finding(
                    self.module,
                    node,
                    "iterating a set in an ordered path: iteration order is "
                    "hash-randomised and will vary across runs",
                )
            )
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._check_comprehension(node)
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._check_comprehension(node)
        self.generic_visit(node)

    def _check_comprehension(
        self, node: ast.ListComp | ast.GeneratorExp
    ) -> None:
        # Set/dict comprehensions over sets rebuild an unordered result,
        # so only order-preserving comprehensions are flagged.
        if not self.ordered:
            return
        for generator in node.generators:
            if self._is_set_expr(generator.iter):
                self.findings.append(
                    self.rule.finding(
                        self.module,
                        node,
                        "building an ordered sequence from a set: the element "
                        "order is hash-randomised",
                    )
                )

    def _is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return any(node.id in frame for frame in self._set_names)
        if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
            return self._is_set_expr(node.left) or self._is_set_expr(node.right)
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id in _SET_BUILTINS:
                return True
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _SET_METHODS
                and self._is_set_expr(node.func.value)
            ):
                return True
        return False

    # -- randomness and clocks ---------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        chain = attribute_chain(node.func)
        if chain[:1] == ["random"] and len(chain) == 2:
            if chain[1] == "Random":
                if not node.args and not node.keywords:
                    self.findings.append(
                        self.rule.finding(
                            self.module,
                            node,
                            "random.Random() without a seed is "
                            "nondeterministic; pass an explicit seed",
                        )
                    )
            else:
                self.findings.append(
                    self.rule.finding(
                        self.module,
                        node,
                        f"module-level random.{chain[1]}() uses the shared "
                        "unseeded RNG; use a random.Random(seed) instance",
                    )
                )
        if self.ordered and self._is_wall_clock(chain):
            self.findings.append(
                self.rule.finding(
                    self.module,
                    node,
                    f"wall-clock read {'.'.join(chain)}() in an ordered path "
                    "makes outputs time-dependent",
                )
            )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random" and node.level == 0:
            bare = [a.name for a in node.names if a.name != "Random"]
            if bare:
                self.findings.append(
                    self.rule.finding(
                        self.module,
                        node,
                        f"importing {', '.join(bare)} from random binds the "
                        "shared unseeded RNG; import Random and seed it",
                    )
                )
        self.generic_visit(node)

    @staticmethod
    def _is_wall_clock(chain: list[str]) -> bool:
        if chain == ["time", "time"]:
            return True
        return (
            len(chain) >= 2
            and chain[-1] in _WALL_CLOCK_TAILS
            and chain[0] in _WALL_CLOCK_HEADS
        )
