"""The rule set.  Importing this package registers every rule."""

from repro.analysis.rules import (  # noqa: F401
    blocking,
    determinism,
    exceptions,
    floats,
    layering,
    lock_order,
    obs,
    probes,
    shared_state,
    thread_boundary,
)

__all__ = [
    "blocking",
    "determinism",
    "exceptions",
    "floats",
    "layering",
    "lock_order",
    "obs",
    "probes",
    "shared_state",
    "thread_boundary",
]
