"""The rule set.  Importing this package registers every rule."""

from repro.analysis.rules import (  # noqa: F401
    determinism,
    exceptions,
    floats,
    layering,
    obs,
    probes,
)

__all__ = [
    "determinism",
    "exceptions",
    "floats",
    "layering",
    "obs",
    "probes",
]
