"""REP009: no blocking operations while a lock is held.

A lock held across a slow operation turns every other thread that
needs the lock into a convoy — and the accounting locks here guard
*bookkeeping*, not probe execution, so nothing slow belongs inside
them.  Flagged while any declared lock is held (lexically, guaranteed
at entry, or on a known call path into the function):

* probe dispatch — ``<webdb>.query(...)`` / ``<webdb>.count(...)`` on
  a bare-name receiver (``self``-rooted internals are the database's
  own storage, not an outbound probe);
* executor traffic — ``.submit(...)`` and future ``.result(...)``;
* ``time.sleep``;
* file/network I/O — ``open``, ``Path.read_text``-family calls, and
  anything rooted in ``socket``/``subprocess``/``urllib``/``http``.

The sharded facade intentionally serialises shard sub-probes under its
accounting lock (the lock *is* the admission gate); those two sites
carry inline suppressions with that rationale rather than weakening
the rule.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.concurrency import ConcurrencyContext
from repro.analysis.finding import Finding
from repro.analysis.rulebase import Rule, register
from repro.analysis.source import ProjectContext

_PROBE_METHODS = frozenset({"query", "count"})
_EXECUTOR_METHODS = frozenset({"submit", "result"})
_PATH_IO_METHODS = frozenset(
    {"read_text", "write_text", "read_bytes", "write_bytes"}
)
_IO_MODULES = frozenset({"socket", "subprocess", "urllib", "http"})


@register
class BlockingUnderLockRule(Rule):
    rule_id = "REP009"
    title = "blocking operation while a lock is held"
    hint = (
        "move the slow call outside the `with` block: snapshot state "
        "under the lock, block after releasing it"
    )

    def run(self, project: ProjectContext) -> Iterator[Finding]:
        ctx = ConcurrencyContext.of(project)
        modules = {m.module or m.relpath: m for m in project.modules}
        results: list[tuple[str, int, Finding]] = []
        for site in ctx.graph.call_sites:
            fn = ctx.graph.function(site.caller)
            if fn is None:
                continue
            held = (
                ctx.locks.held_at(site.node, site.caller)
                | ctx.locks.reachable_held(site.caller)
            )
            if not held:
                continue
            label = self._blocking_label(site.chain, fn.module, ctx)
            if label is None:
                continue
            module = modules.get(fn.module)
            if module is None:
                continue
            lock_names = ", ".join(
                sorted(lock.rpartition(".")[2] or lock for lock in held)
            )
            results.append(
                (
                    fn.relpath,
                    site.node.lineno,
                    self.finding(
                        module,
                        site.node,
                        f"{label} while holding {lock_names}",
                    ),
                )
            )
        for _, _, finding in sorted(
            results, key=lambda item: (item[0], item[1], item[2].message)
        ):
            yield finding

    def _blocking_label(
        self,
        chain: tuple[str, ...],
        module_key: str,
        ctx: ConcurrencyContext,
    ) -> str | None:
        if not chain:
            return None
        name = chain[-1]
        imports = ctx.graph.import_table(module_key)
        if name == "sleep":
            if (len(chain) == 2 and chain[0] == "time") or (
                len(chain) == 1 and imports.get("sleep", "") == "time.sleep"
            ):
                return "time.sleep() blocks"
            return None
        if name in _EXECUTOR_METHODS and len(chain) >= 2:
            return f"executor '.{name}()' blocks"
        if (
            name in _PROBE_METHODS
            and len(chain) == 2
            and chain[0] not in ("self", "cls")
        ):
            return f"probe dispatch '{chain[0]}.{name}()' blocks"
        if name == "open" and len(chain) == 1 and "open" not in imports:
            return "file I/O 'open()' blocks"
        if name in _PATH_IO_METHODS and len(chain) >= 2:
            return f"file I/O '.{name}()' blocks"
        head = imports.get(chain[0], chain[0]).split(".")[0]
        if head in _IO_MODULES and len(chain) >= 2:
            return f"'{head}' I/O blocks"
        return None
