"""REP010: non-thread-safe objects must not cross executor boundaries.

ProbeLog, RelaxationTrace, the EventLog ring and the ColumnStore
builders are single-writer by design — the documented pattern for
moving their contents across threads is *capture*: take an immutable
``snapshot()``/``delta()`` under the owner, hand the copy across, and
let the owning facade merge results back.  Handing the live object to
``Executor.submit`` / ``pool.map`` / ``threading.Thread`` (either as
the callable's receiver or inside its argument payload) silently
shares an unsynchronised structure between threads.

Detection is type-approximate: a name counts as one of the unsafe
types when it is assigned that constructor in the same function, or
when it is a ``self.<attr>`` the class assigns that constructor.
Calls in the payload (``log.snapshot()``) are fine — a call result is
a fresh object, which is exactly the capture pattern.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.concurrency import ConcurrencyContext, FunctionInfo
from repro.analysis.finding import Finding
from repro.analysis.rulebase import Rule, attribute_chain, register
from repro.analysis.source import ProjectContext

#: Classes whose instances are single-writer / not thread-safe.
UNSAFE_TYPES = frozenset(
    {
        "ProbeLog",
        "RelaxationTrace",
        "EventLog",
        "ColumnStore",
        "CategoricalColumn",
        "NumericColumn",
    }
)


@register
class ThreadBoundaryRule(Rule):
    rule_id = "REP010"
    title = "non-thread-safe object crosses an executor boundary"
    hint = (
        "pass a snapshot()/delta() capture across the boundary, or "
        "route the mutation through the owning facade"
    )

    def run(self, project: ProjectContext) -> Iterator[Finding]:
        ctx = ConcurrencyContext.of(project)
        modules = {m.module or m.relpath: m for m in project.modules}
        results: list[tuple[str, int, Finding]] = []
        for boundary in ctx.escape.boundary_calls:
            fn = ctx.graph.function(boundary.fn)
            module = modules.get(fn.module) if fn is not None else None
            if fn is None or module is None:
                continue
            types = _TypeEnv.of(fn, ctx)
            crossings: list[tuple[ast.expr, str, str]] = []
            if boundary.target is not None:
                # Bound method of an unsafe instance: `log.record`.
                chain = attribute_chain(boundary.target)
                if len(chain) >= 2:
                    unsafe = types.lookup(tuple(chain[:-1]))
                    if unsafe is not None:
                        crossings.append(
                            (boundary.target, unsafe, "as the callable")
                        )
            for expr in _payload_exprs(boundary.payload):
                chain = attribute_chain(expr)
                if not chain:
                    continue
                unsafe = types.lookup(tuple(chain))
                if unsafe is not None:
                    crossings.append((expr, unsafe, "in the argument payload"))
            for expr, unsafe, how in crossings:
                results.append(
                    (
                        fn.relpath,
                        expr.lineno,
                        self.finding(
                            module,
                            expr,
                            f"live {unsafe} crosses a '{boundary.kind}' "
                            f"boundary {how} with no capture",
                        ),
                    )
                )
        for _, _, finding in sorted(
            results, key=lambda item: (item[0], item[1], item[2].message)
        ):
            yield finding


class _TypeEnv:
    """Name/attribute -> unsafe type name, for one function's scope."""

    def __init__(self) -> None:
        self._types: dict[tuple[str, ...], str] = {}

    @classmethod
    def of(cls, fn: FunctionInfo, ctx: ConcurrencyContext) -> "_TypeEnv":
        env = cls()
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                env._learn(node.targets[0], node.value)
        if fn.cls is not None:
            for method in ctx.graph.methods_of(fn.module, fn.cls):
                for node in ast.walk(method.node):
                    if isinstance(node, ast.Assign) and len(node.targets) == 1:
                        env._learn(node.targets[0], node.value)
        return env

    def _learn(self, target: ast.expr, value: ast.expr) -> None:
        type_name = _unsafe_ctor(value)
        if type_name is None:
            return
        if isinstance(target, ast.Name):
            self._types[(target.id,)] = type_name
        elif (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            self._types[("self", target.attr)] = type_name

    def lookup(self, chain: tuple[str, ...]) -> str | None:
        return self._types.get(chain)


def _unsafe_ctor(value: ast.expr) -> str | None:
    if not isinstance(value, ast.Call):
        return None
    chain = attribute_chain(value.func)
    if chain and chain[-1] in UNSAFE_TYPES:
        return chain[-1]
    return None


def _payload_exprs(payload: tuple[ast.expr, ...]) -> Iterator[ast.expr]:
    for expr in payload:
        if isinstance(expr, (ast.Tuple, ast.List)):
            yield from expr.elts
        else:
            yield expr
