"""REP008: nested lock acquisition must use one global order.

If one code path takes lock A then lock B while another takes B then
A, two threads can each hold one lock and wait forever on the other.
The rule collects every ordered pair (held -> acquired) from

* lexically nested ``with`` blocks,
* acquisitions made while a lock is guaranteed held at function entry
  (the ``_locked``-helper convention), and
* calls into functions that transitively acquire locks
  (``acquires_within`` closure),

then reports each pair that also occurs reversed.  Re-entrant
acquisition of the *same* lock is not a pair — that is what RLock is
for and the facade/shard design relies on it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from repro.analysis.concurrency import ConcurrencyContext
from repro.analysis.finding import Finding
from repro.analysis.rulebase import Rule, register
from repro.analysis.source import ProjectContext


@dataclass(frozen=True)
class _OrderSite:
    relpath: str
    line: int
    col: int
    fn: str


@register
class LockOrderRule(Rule):
    rule_id = "REP008"
    title = "inconsistent lock acquisition order"
    hint = (
        "pick one global acquisition order and restructure the later "
        "acquisition to respect it (or collapse to a single lock)"
    )

    def run(self, project: ProjectContext) -> Iterator[Finding]:
        ctx = ConcurrencyContext.of(project)
        modules = {m.module or m.relpath: m for m in project.modules}

        pairs: dict[tuple[str, str], list[_OrderSite]] = {}

        def record(held: frozenset[str], acquired: str, site: _OrderSite) -> None:
            for outer in held:
                if outer != acquired:
                    pairs.setdefault((outer, acquired), []).append(site)

        for acq in ctx.locks.acquisitions:
            fn = ctx.graph.function(acq.fn)
            if fn is None:
                continue
            held = frozenset(acq.held_before) | ctx.locks.entry_held(acq.fn)
            record(
                held,
                acq.lock_id,
                _OrderSite(fn.relpath, acq.line, acq.col, acq.fn),
            )
        for site in ctx.graph.call_sites:
            if site.callee is None:
                continue
            fn = ctx.graph.function(site.caller)
            if fn is None:
                continue
            held = ctx.locks.held_at(site.node, site.caller)
            if not held:
                continue
            inner = ctx.locks.acquires_within.get(site.callee, frozenset())
            for lock in inner - held:
                record(
                    held,
                    lock,
                    _OrderSite(
                        fn.relpath,
                        site.node.lineno,
                        site.node.col_offset,
                        site.caller,
                    ),
                )

        reported: set[tuple[str, int, str, str]] = set()
        results: list[tuple[str, int, Finding]] = []
        for (outer, inner), sites in pairs.items():
            if (inner, outer) not in pairs:
                continue
            opposite = min(
                pairs[(inner, outer)], key=lambda s: (s.relpath, s.line)
            )
            for site in sites:
                key = (site.relpath, site.line, outer, inner)
                if key in reported:
                    continue
                reported.add(key)
                module = modules.get(
                    site.fn.rpartition(":")[0]
                ) or project.module_for_path(site.relpath)
                if module is None:
                    continue
                results.append(
                    (
                        site.relpath,
                        site.line,
                        self.finding(
                            module,
                            _anchor(site.line, site.col),
                            f"'{_short(inner)}' is acquired while holding "
                            f"'{_short(outer)}', but the opposite order "
                            f"occurs at {opposite.relpath}:{opposite.line} "
                            f"— potential deadlock",
                        ),
                    )
                )
        for _, _, finding in sorted(
            results, key=lambda item: (item[0], item[1], item[2].message)
        ):
            yield finding


def _short(lock_id: str) -> str:
    return lock_id.rpartition(":")[2]


def _anchor(line: int, col: int) -> ast.AST:
    node = ast.Pass()
    node.lineno = line
    node.col_offset = col
    return node
