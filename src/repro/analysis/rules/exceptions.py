"""REP006 — exception hygiene: nothing gets swallowed silently.

A bare ``except:`` (or ``except Exception``/``BaseException``) whose
body neither re-raises nor records the error hides exactly the failures
the determinism contracts exist to surface — a mining worker dying
mid-chunk would silently change the mined artifact.  Narrow handlers
(``except KeyError``) are fine; broad handlers are fine when they
``raise``, return the error, or log it.

The rule also polices *retry loops*: a handler inside a ``for``/
``while`` loop that swallows a permanent
:class:`~repro.db.errors.DatabaseError` subclass (schema mistakes,
malformed queries, an exhausted probe budget) turns a bug into an
infinite or silently-short loop — retrying cannot cure a permanent
failure.  Only the transient taxonomy
(:class:`~repro.db.errors.TransientSourceError` and its subclasses) is
legitimately retriable; permanent errors must be re-raised, logged, or
recorded (using the bound exception counts, as for broad handlers).
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.finding import Finding
from repro.analysis.rulebase import Rule, attribute_chain, register
from repro.analysis.source import ProjectContext, SourceModule

_BROAD = {"Exception", "BaseException"}
# The permanent half of the repro.db error taxonomy: retrying these
# never helps, so a retry loop that swallows one is always a bug.
_PERMANENT_DB_ERRORS = {
    "DatabaseError",
    "SchemaError",
    "UnknownAttributeError",
    "TypeMismatchError",
    "QueryError",
    "UnsupportedPredicateError",
    "ProbeLimitExceededError",
}
_LOG_METHODS = {
    "debug",
    "info",
    "warning",
    "error",
    "exception",
    "critical",
    "log",
    "record_error",
    "print",
}


@register
class ExceptionHygieneRule(Rule):
    rule_id = "REP006"
    title = "exception hygiene: no silently swallowed exceptions"
    hint = (
        "catch the narrowest exception that can actually occur, or "
        "re-raise / log the error before continuing"
    )

    def check_module(
        self, module: SourceModule, project: ProjectContext
    ) -> Iterable[Finding]:
        in_loop = self._handlers_in_loops(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if self._handles_error(node):
                continue
            if self._is_broad(node.type):
                caught = (
                    "bare except"
                    if node.type is None
                    else f"except {ast.unparse(node.type)}"
                )
                yield self.finding(
                    module,
                    node,
                    f"{caught} swallows the error: the body neither "
                    "re-raises nor records it",
                )
                continue
            permanent = self._permanent_names(node.type)
            if permanent and id(node) in in_loop:
                yield self.finding(
                    module,
                    node,
                    "retry loop swallows permanent "
                    f"{', '.join(permanent)}: retrying cannot cure it — "
                    "re-raise, record it, or degrade explicitly",
                )

    @staticmethod
    def _handlers_in_loops(tree: ast.AST) -> set[int]:
        """ids of ExceptHandler nodes nested (at any depth) in a loop."""
        found: set[int] = set()
        for loop in ast.walk(tree):
            if not isinstance(loop, (ast.For, ast.AsyncFor, ast.While)):
                continue
            for node in ast.walk(loop):
                if isinstance(node, ast.ExceptHandler):
                    found.add(id(node))
        return found

    @staticmethod
    def _permanent_names(node: ast.expr | None) -> list[str]:
        """Permanent-taxonomy names this handler catches, sorted."""
        if node is None:
            return []
        exprs = node.elts if isinstance(node, ast.Tuple) else [node]
        names = set()
        for expr in exprs:
            chain = attribute_chain(expr)
            if chain and chain[-1] in _PERMANENT_DB_ERRORS:
                names.add(chain[-1])
        return sorted(names)

    @staticmethod
    def _is_broad(node: ast.expr | None) -> bool:
        if node is None:
            return True
        if isinstance(node, ast.Name):
            return node.id in _BROAD
        if isinstance(node, ast.Tuple):
            return any(
                isinstance(elt, ast.Name) and elt.id in _BROAD
                for elt in node.elts
            )
        return False

    @staticmethod
    def _handles_error(handler: ast.ExceptHandler) -> bool:
        for node in ast.walk(handler):
            if isinstance(node, ast.Raise):
                return True
            if isinstance(node, ast.Call):
                chain = attribute_chain(node.func)
                if chain and chain[-1] in _LOG_METHODS:
                    return True
            # Using the bound exception (``except Exception as exc``)
            # counts as handling: it is stored, formatted, or returned.
            if (
                handler.name is not None
                and isinstance(node, ast.Name)
                and node.id == handler.name
                and isinstance(node.ctx, ast.Load)
            ):
                return True
        return False
