"""REP006 — exception hygiene: nothing gets swallowed silently.

A bare ``except:`` (or ``except Exception``/``BaseException``) whose
body neither re-raises nor records the error hides exactly the failures
the determinism contracts exist to surface — a mining worker dying
mid-chunk would silently change the mined artifact.  Narrow handlers
(``except KeyError``) are fine; broad handlers are fine when they
``raise``, return the error, or log it.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.finding import Finding
from repro.analysis.rulebase import Rule, attribute_chain, register
from repro.analysis.source import ProjectContext, SourceModule

_BROAD = {"Exception", "BaseException"}
_LOG_METHODS = {
    "debug",
    "info",
    "warning",
    "error",
    "exception",
    "critical",
    "log",
    "record_error",
    "print",
}


@register
class ExceptionHygieneRule(Rule):
    rule_id = "REP006"
    title = "exception hygiene: no silently swallowed exceptions"
    hint = (
        "catch the narrowest exception that can actually occur, or "
        "re-raise / log the error before continuing"
    )

    def check_module(
        self, module: SourceModule, project: ProjectContext
    ) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._is_broad(node.type):
                continue
            if self._handles_error(node):
                continue
            caught = (
                "bare except"
                if node.type is None
                else f"except {ast.unparse(node.type)}"
            )
            yield self.finding(
                module,
                node,
                f"{caught} swallows the error: the body neither re-raises "
                "nor records it",
            )

    @staticmethod
    def _is_broad(node: ast.expr | None) -> bool:
        if node is None:
            return True
        if isinstance(node, ast.Name):
            return node.id in _BROAD
        if isinstance(node, ast.Tuple):
            return any(
                isinstance(elt, ast.Name) and elt.id in _BROAD
                for elt in node.elts
            )
        return False

    @staticmethod
    def _handles_error(handler: ast.ExceptHandler) -> bool:
        for node in ast.walk(handler):
            if isinstance(node, ast.Raise):
                return True
            if isinstance(node, ast.Call):
                chain = attribute_chain(node.func)
                if chain and chain[-1] in _LOG_METHODS:
                    return True
            # Using the bound exception (``except Exception as exc``)
            # counts as handling: it is stored, formatted, or returned.
            if (
                handler.name is not None
                and isinstance(node, ast.Name)
                and node.id == handler.name
                and isinstance(node.ctx, ast.Load)
            ):
                return True
        return False
