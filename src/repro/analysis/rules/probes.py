"""REP004 — probe accounting: online access stays inside ``repro.db``.

The paper's Figure 6–7 probe counts are only honest if every online
query flows through :class:`AutonomousWebDatabase`, whose ``ProbeLog``
does the accounting.  Code outside ``repro.db`` therefore may not:

* import the ``repro.db.executor`` / ``repro.db.index`` submodules
  (the unaccounted scan machinery),
* pull ``Executor`` out of the facade or instantiate it,
* reach into database internals (``_table``, ``_executor``, ``_rows``,
  index maps, the probe cache) on anything other than ``self``,
* fabricate ``ProbeLog`` entries — call its mutators
  (``record``/``record_count``/``record_cache_hit``) or bump its
  counters directly.  The temptation exists since the semantic
  planner answers subsumed queries *locally*: "correcting" the log so
  issued counts look like the serial path's would falsify the very
  measurement Figures 6–7 make.  Locally-answered queries belong in
  ``RelaxationTrace.probes_subsumed``, never in the ProbeLog.

Offline construction (``Table``, schemas, predicates) is untouched —
mining happens on materialised samples, not via probes.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.finding import Finding
from repro.analysis.rulebase import Rule, register, runtime_imports
from repro.analysis.source import ProjectContext, SourceModule

FORBIDDEN_SUBMODULES = (
    "repro.db.executor",
    "repro.db.index",
    # The columnar data plane: raw column arrays and the vectorized
    # mask evaluator would answer queries without any ProbeLog entry.
    "repro.db.columns",
    "repro.db.vectorized",
)
FORBIDDEN_FACADE_NAMES = {"Executor"}
PRIVATE_DB_ATTRS = {
    "_table",
    "_executor",
    "_rows",
    "_hash_indexes",
    "_sorted_indexes",
    "_probe_cache",
    "_plan",
    "_index_candidates",
    # Columnar / sharded internals (same contract as the row internals):
    # the column store, its typed columns and zone maps, and the
    # sharded facade's shard list and global-id tables.
    "_store",
    "_columns",
    "_zone_maps",
    "_zone_rows",
    "_shards",
    "_global_ids",
}
# ProbeLog's mutators.  ``record`` is a common method name, so it is
# only flagged on a probe-log-shaped receiver; the other two are
# unambiguous in this codebase and flagged on any receiver.
PROBELOG_MUTATORS = {"record", "record_count", "record_cache_hit"}
PROBELOG_UNAMBIGUOUS_MUTATORS = {"record_count", "record_cache_hit"}
PROBELOG_COUNTERS = {
    "probes_issued",
    "tuples_returned",
    "empty_results",
    "count_probes",
    "cache_hits",
}
# Receiver shapes that denote the facade's accounting log (its public
# attribute is ``log``).  Plain-name receivers like ``report`` are NOT
# matched: e.g. repro.sampling keeps its own probes_issued tally on a
# CollectionReport, which is measurement, not fabrication.
PROBELOG_RECEIVER_NAMES = {"log", "probe_log", "probelog"}


def _inside_db(module: SourceModule) -> bool:
    return module.module == "repro.db" or module.module.startswith("repro.db.")


@register
class ProbeAccountingRule(Rule):
    rule_id = "REP004"
    title = "probe accounting: no unaccounted database access"
    hint = (
        "go through AutonomousWebDatabase so the ProbeLog sees every "
        "online query; offline code should take a Table, not an Executor"
    )

    def check_module(
        self, module: SourceModule, project: ProjectContext
    ) -> Iterable[Finding]:
        if _inside_db(module):
            return []
        findings: list[Finding] = []
        findings.extend(self._check_imports(module))
        findings.extend(self._check_private_access(module))
        findings.extend(self._check_probelog_fabrication(module))
        return findings

    def _check_imports(self, module: SourceModule) -> Iterable[Finding]:
        for target, node in runtime_imports(module):
            if target in FORBIDDEN_SUBMODULES or any(
                target.startswith(sub + ".") for sub in FORBIDDEN_SUBMODULES
            ):
                yield self.finding(
                    module,
                    node,
                    f"import of {target}: the scan/index machinery is "
                    "private to repro.db and bypasses probe accounting",
                )
            elif target == "repro.db" and isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name in FORBIDDEN_FACADE_NAMES:
                        yield self.finding(
                            module,
                            node,
                            f"importing {alias.name} outside repro.db "
                            "executes queries without ProbeLog accounting",
                        )

    def _check_private_access(self, module: SourceModule) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Attribute):
                continue
            if node.attr not in PRIVATE_DB_ATTRS:
                continue
            receiver = node.value
            if isinstance(receiver, ast.Name) and receiver.id in (
                "self",
                "cls",
            ):
                continue
            yield self.finding(
                module,
                node,
                f"access to private database internals ({node.attr}) from "
                "outside repro.db",
            )

    @staticmethod
    def _is_probelog_receiver(expr: ast.expr) -> bool:
        """True when ``expr`` denotes a ProbeLog instance.

        Matches the facade's accounting attribute (``webdb.log``, any
        ``*.probe_log``) and direct ``ProbeLog(...)`` constructions.
        """
        if isinstance(expr, ast.Attribute):
            return expr.attr in PROBELOG_RECEIVER_NAMES
        if isinstance(expr, ast.Name):
            return expr.id in PROBELOG_RECEIVER_NAMES
        if isinstance(expr, ast.Call):
            func = expr.func
            name = (
                func.attr
                if isinstance(func, ast.Attribute)
                else func.id if isinstance(func, ast.Name) else ""
            )
            return name == "ProbeLog"
        return False

    def _check_probelog_fabrication(
        self, module: SourceModule
    ) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                method = node.func.attr
                if method not in PROBELOG_MUTATORS:
                    continue
                if (
                    method in PROBELOG_UNAMBIGUOUS_MUTATORS
                    or self._is_probelog_receiver(node.func.value)
                ):
                    yield self.finding(
                        module,
                        node,
                        f"ProbeLog.{method}() called outside repro.db: "
                        "fabricated accounting falsifies the Figs 6-7 "
                        "probe counts (locally-answered queries belong "
                        "in RelaxationTrace.probes_subsumed)",
                    )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and target.attr in PROBELOG_COUNTERS
                        and self._is_probelog_receiver(target.value)
                    ):
                        yield self.finding(
                            module,
                            target,
                            f"direct mutation of ProbeLog.{target.attr} "
                            "outside repro.db: probe accounting is the "
                            "facade's job",
                        )
