"""REP004 — probe accounting: online access stays inside ``repro.db``.

The paper's Figure 6–7 probe counts are only honest if every online
query flows through :class:`AutonomousWebDatabase`, whose ``ProbeLog``
does the accounting.  Code outside ``repro.db`` therefore may not:

* import the ``repro.db.executor`` / ``repro.db.index`` submodules
  (the unaccounted scan machinery),
* pull ``Executor`` out of the facade or instantiate it,
* reach into database internals (``_table``, ``_executor``, ``_rows``,
  index maps, the probe cache) on anything other than ``self``.

Offline construction (``Table``, schemas, predicates) is untouched —
mining happens on materialised samples, not via probes.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.finding import Finding
from repro.analysis.rulebase import Rule, register, runtime_imports
from repro.analysis.source import ProjectContext, SourceModule

FORBIDDEN_SUBMODULES = ("repro.db.executor", "repro.db.index")
FORBIDDEN_FACADE_NAMES = {"Executor"}
PRIVATE_DB_ATTRS = {
    "_table",
    "_executor",
    "_rows",
    "_hash_indexes",
    "_sorted_indexes",
    "_probe_cache",
    "_plan",
    "_index_candidates",
}


def _inside_db(module: SourceModule) -> bool:
    return module.module == "repro.db" or module.module.startswith("repro.db.")


@register
class ProbeAccountingRule(Rule):
    rule_id = "REP004"
    title = "probe accounting: no unaccounted database access"
    hint = (
        "go through AutonomousWebDatabase so the ProbeLog sees every "
        "online query; offline code should take a Table, not an Executor"
    )

    def check_module(
        self, module: SourceModule, project: ProjectContext
    ) -> Iterable[Finding]:
        if _inside_db(module):
            return []
        findings: list[Finding] = []
        findings.extend(self._check_imports(module))
        findings.extend(self._check_private_access(module))
        return findings

    def _check_imports(self, module: SourceModule) -> Iterable[Finding]:
        for target, node in runtime_imports(module):
            if target in FORBIDDEN_SUBMODULES or any(
                target.startswith(sub + ".") for sub in FORBIDDEN_SUBMODULES
            ):
                yield self.finding(
                    module,
                    node,
                    f"import of {target}: the scan/index machinery is "
                    "private to repro.db and bypasses probe accounting",
                )
            elif target == "repro.db" and isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name in FORBIDDEN_FACADE_NAMES:
                        yield self.finding(
                            module,
                            node,
                            f"importing {alias.name} outside repro.db "
                            "executes queries without ProbeLog accounting",
                        )

    def _check_private_access(self, module: SourceModule) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Attribute):
                continue
            if node.attr not in PRIVATE_DB_ATTRS:
                continue
            receiver = node.value
            if isinstance(receiver, ast.Name) and receiver.id in (
                "self",
                "cls",
            ):
                continue
            yield self.finding(
                module,
                node,
                f"access to private database internals ({node.attr}) from "
                "outside repro.db",
            )
