"""REP005 — observability hygiene.

Metric names follow the exporter contract
``repro_<subsystem>_<name>_<unit>`` (unit one of ``total``, ``seconds``,
``bytes``, ``ratio``, ``size``, ``score``, ``count``, ``info``; counters
always end ``_total``) so dashboards and the Prometheus exporter can
rely on the shape.  Spans must be opened with ``with OBS.span(...)`` —
a span entered by hand leaks on the exception path and corrupts the
trace tree.  The ``repro.obs`` package itself is exempt from the span
check: it implements the context managers.

Wide events carry the same hygiene contract: emission goes through the
``repro.obs.events`` API (``OBS.emit_event(...)`` / ``*.events.emit``)
with a *constant* dotted snake_case event name and snake_case field
keywords, so the JSONL log stays greppable and schema-stable.  Ad-hoc
wide events — ``json.dumps`` over a literal dict carrying an ``event``
key — bypass the ring buffer, the validation, and the sink, and are
flagged outside ``repro.obs``.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from repro.analysis.finding import Finding
from repro.analysis.rulebase import Rule, register
from repro.analysis.source import ProjectContext, SourceModule
from repro.obs.events import EVENT_NAME_RE, FIELD_NAME_RE

METRIC_NAME_RE = re.compile(
    r"^repro_[a-z0-9]+(?:_[a-z0-9]+)*_"
    r"(?:total|seconds|bytes|ratio|size|score|count|info)$"
)
_METRIC_FACTORIES = {"counter", "gauge", "histogram"}


@register
class ObsHygieneRule(Rule):
    rule_id = "REP005"
    title = "obs hygiene: metric naming and context-managed spans"
    hint = (
        "name metrics repro_<subsystem>_<name>_<unit> (counters end "
        "_total), open spans with `with OBS.span(...):`, and emit wide "
        "events through OBS.emit_event with dotted snake_case names and "
        "snake_case fields"
    )

    def check_module(
        self, module: SourceModule, project: ProjectContext
    ) -> Iterable[Finding]:
        findings: list[Finding] = []
        findings.extend(self._check_metric_names(module))
        if not module.module.startswith("repro.obs"):
            findings.extend(self._check_spans(module))
            findings.extend(self._check_event_emissions(module))
            findings.extend(self._check_adhoc_events(module))
        return findings

    def _check_metric_names(self, module: SourceModule) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _METRIC_FACTORIES
                and node.args
            ):
                continue
            name_arg = node.args[0]
            if not (
                isinstance(name_arg, ast.Constant)
                and isinstance(name_arg.value, str)
            ):
                continue
            name = name_arg.value
            if not METRIC_NAME_RE.match(name):
                yield self.finding(
                    module,
                    node,
                    f"metric name {name!r} does not match "
                    "repro_<subsystem>_<name>_<unit>",
                )
            elif node.func.attr == "counter" and not name.endswith("_total"):
                yield self.finding(
                    module,
                    node,
                    f"counter {name!r} must use the _total unit suffix",
                )

    def _check_spans(self, module: SourceModule) -> Iterable[Finding]:
        managed: set[int] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    managed.add(id(item.context_expr))
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "span"
                and id(node) not in managed
            ):
                yield self.finding(
                    module,
                    node,
                    "span opened outside a with-statement; manual "
                    "__enter__/__exit__ leaks the span on exceptions",
                )

    @staticmethod
    def _is_event_emission(node: ast.Call) -> bool:
        """``OBS.emit_event(...)`` or ``<something>.events.emit(...)``."""
        func = node.func
        if not isinstance(func, ast.Attribute):
            return False
        if func.attr == "emit_event":
            return True
        return (
            func.attr == "emit"
            and isinstance(func.value, ast.Attribute)
            and func.value.attr == "events"
        )

    def _check_event_emissions(
        self, module: SourceModule
    ) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call) and self._is_event_emission(node)
            ):
                continue
            if not node.args:
                continue
            name_arg = node.args[0]
            if not (
                isinstance(name_arg, ast.Constant)
                and isinstance(name_arg.value, str)
            ):
                yield self.finding(
                    module,
                    node,
                    "event name must be a constant string so the event "
                    "vocabulary is auditable statically",
                )
            elif not EVENT_NAME_RE.match(name_arg.value):
                yield self.finding(
                    module,
                    node,
                    f"event name {name_arg.value!r} must be dotted "
                    "snake_case (e.g. 'engine.answer')",
                )
            for keyword in node.keywords:
                if keyword.arg is None:
                    continue
                if not FIELD_NAME_RE.match(keyword.arg):
                    yield self.finding(
                        module,
                        node,
                        f"event field {keyword.arg!r} must be snake_case",
                    )

    def _check_adhoc_events(self, module: SourceModule) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "dumps"
                and node.args
                and isinstance(node.args[0], ast.Dict)
            ):
                continue
            keys = node.args[0].keys
            if any(
                isinstance(key, ast.Constant) and key.value == "event"
                for key in keys
            ):
                yield self.finding(
                    module,
                    node,
                    "ad-hoc wide event (json.dumps over a dict with an "
                    "'event' key); emit through OBS.emit_event instead",
                )
