"""REP005 — observability hygiene.

Metric names follow the exporter contract
``repro_<subsystem>_<name>_<unit>`` (unit one of ``total``, ``seconds``,
``bytes``, ``ratio``, ``size``, ``score``, ``count``, ``info``; counters
always end ``_total``) so dashboards and the Prometheus exporter can
rely on the shape.  Spans must be opened with ``with OBS.span(...)`` —
a span entered by hand leaks on the exception path and corrupts the
trace tree.  The ``repro.obs`` package itself is exempt from the span
check: it implements the context managers.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from repro.analysis.finding import Finding
from repro.analysis.rulebase import Rule, register
from repro.analysis.source import ProjectContext, SourceModule

METRIC_NAME_RE = re.compile(
    r"^repro_[a-z0-9]+(?:_[a-z0-9]+)*_"
    r"(?:total|seconds|bytes|ratio|size|score|count|info)$"
)
_METRIC_FACTORIES = {"counter", "gauge", "histogram"}


@register
class ObsHygieneRule(Rule):
    rule_id = "REP005"
    title = "obs hygiene: metric naming and context-managed spans"
    hint = (
        "name metrics repro_<subsystem>_<name>_<unit> (counters end "
        "_total) and open spans with `with OBS.span(...):`"
    )

    def check_module(
        self, module: SourceModule, project: ProjectContext
    ) -> Iterable[Finding]:
        findings: list[Finding] = []
        findings.extend(self._check_metric_names(module))
        if not module.module.startswith("repro.obs"):
            findings.extend(self._check_spans(module))
        return findings

    def _check_metric_names(self, module: SourceModule) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _METRIC_FACTORIES
                and node.args
            ):
                continue
            name_arg = node.args[0]
            if not (
                isinstance(name_arg, ast.Constant)
                and isinstance(name_arg.value, str)
            ):
                continue
            name = name_arg.value
            if not METRIC_NAME_RE.match(name):
                yield self.finding(
                    module,
                    node,
                    f"metric name {name!r} does not match "
                    "repro_<subsystem>_<name>_<unit>",
                )
            elif node.func.attr == "counter" and not name.endswith("_total"):
                yield self.finding(
                    module,
                    node,
                    f"counter {name!r} must use the _total unit suffix",
                )

    def _check_spans(self, module: SourceModule) -> Iterable[Finding]:
        managed: set[int] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    managed.add(id(item.context_expr))
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "span"
                and id(node) not in managed
            ):
                yield self.finding(
                    module,
                    node,
                    "span opened outside a with-statement; manual "
                    "__enter__/__exit__ leaks the span on exceptions",
                )
