"""REP007: shared mutable state must stay inside its guarded region.

A class that declares a lock has opted into a locking discipline: any
attribute touched while that lock is held belongs to the guarded
state.  Writing such an attribute *without* the lock (outside
``__init__``, which runs before the instance is shared) is the classic
lost-update seed — ``enable_probe_cache`` flipping a field the locked
query path reads concurrently.

Separately, any attribute written from a *thread-escaping* callable
(one reachable from an executor submit or ``threading.Thread`` target)
with no lock held at all is flagged, whether or not its class declares
a lock: the write happens on a worker thread by construction.

Constructor-shaped methods (``__init__``/``__new__``/
``__post_init__``) are exempt; so are the lock attributes themselves.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.concurrency import ConcurrencyContext
from repro.analysis.finding import Finding
from repro.analysis.rulebase import Rule, register
from repro.analysis.source import ProjectContext, SourceModule


@register
class SharedMutableStateRule(Rule):
    rule_id = "REP007"
    title = "shared mutable state written outside its guarded region"
    hint = (
        "wrap the write in `with self.<lock>:`, or confine the state to "
        "one thread and pass snapshots across"
    )

    def run(self, project: ProjectContext) -> Iterator[Finding]:
        ctx = ConcurrencyContext.of(project)
        modules = {m.module or m.relpath: m for m in project.modules}
        lock_attrs = {
            (decl.module, decl.cls, decl.attr) for decl in ctx.locks.decls.values()
        }

        # Group accesses per (owner, attr) with their *effective* held
        # sets (lexical locks plus locks guaranteed at function entry).
        guarded_attrs: set[tuple[str, str]] = set()
        for access in ctx.locks.accesses:
            held = access.held | ctx.locks.entry_held(access.fn)
            if held & self._owner_locks(ctx, access.owner):
                guarded_attrs.add((access.owner, access.attr))

        findings: list[tuple[str, int, Finding]] = []
        for access in ctx.locks.accesses:
            if not access.is_write:
                continue
            fn = ctx.graph.function(access.fn)
            if fn is None or fn.is_init:
                continue
            if (fn.module, fn.cls, access.attr) in lock_attrs or (
                fn.cls is None and (fn.module, None, access.attr) in lock_attrs
            ):
                continue
            module = modules.get(fn.module)
            if module is None:
                continue
            held = access.held | ctx.locks.entry_held(access.fn)
            owner_locks = self._owner_locks(ctx, access.owner)
            unguarded = not (held & owner_locks)
            if (
                unguarded
                and owner_locks
                and (access.owner, access.attr) in guarded_attrs
            ):
                lock_names = ", ".join(
                    sorted(lock.rpartition(".")[2] or lock for lock in owner_locks)
                )
                findings.append(
                    (
                        module.relpath,
                        access.line,
                        self.finding(
                            module,
                            _anchor(access.line, access.col),
                            f"'{access.attr}' is accessed under {lock_names} "
                            f"elsewhere but written here with no lock held",
                        ),
                    )
                )
                continue
            if not held and ctx.escape.escapes(access.fn):
                findings.append(
                    (
                        module.relpath,
                        access.line,
                        self.finding(
                            module,
                            _anchor(access.line, access.col),
                            f"'{access.attr}' is written from "
                            f"'{fn.qualname}', which runs on a worker "
                            f"thread, with no lock held",
                        ),
                    )
                )
        seen: set[tuple[str, int, str]] = set()
        for relpath, line, finding in sorted(
            findings, key=lambda item: (item[0], item[1], item[2].message)
        ):
            key = (relpath, line, finding.message)
            if key not in seen:
                seen.add(key)
                yield finding

    @staticmethod
    def _owner_locks(ctx: ConcurrencyContext, owner: str) -> frozenset[str]:
        if ":" in owner:
            module, _, cls_name = owner.rpartition(":")
            return ctx.locks.locks_of_class(module, cls_name)
        return frozenset(ctx.locks.module_locks.get(owner, ()))


def _anchor(line: int, col: int) -> ast.AST:
    node = ast.Pass()
    node.lineno = line
    node.col_offset = col
    return node
