"""REP003 — the import-contract graph.

The repo is layered ``db → afd/simmining → rock → core → evalx/perf →
cli``; lower layers must not import upward, ``repro.core`` talks to the
database only through the ``repro.db`` facade (never submodules), and
package-level import cycles are forbidden outright (detected over the
runtime-import graph with networkx).

``if TYPE_CHECKING:`` imports are exempt everywhere: they create no
import-time coupling and are the sanctioned way to annotate across
layers.
"""

from __future__ import annotations

import ast
from typing import Iterator

import networkx as nx

from repro.analysis.finding import Finding
from repro.analysis.rulebase import Rule, register, runtime_imports
from repro.analysis.source import ProjectContext, SourceModule

# Layer rank per package: imports may only point at equal-or-lower ranks.
LAYERS: dict[str, int] = {
    "repro.obs": 0,
    "repro.floats": 0,
    "repro.db": 1,
    "repro.resilience": 1,
    "repro.afd": 2,
    "repro.simmining": 2,
    "repro.datasets": 2,
    "repro.sampling": 2,
    "repro.rock": 3,
    "repro.core": 4,
    "repro.feedback": 5,
    "repro.evalx": 5,
    "repro.perf": 5,
    "repro.analysis": 5,
    "repro.serve": 6,
    "repro.cli": 7,
    "repro.__main__": 8,
}

# Facade contract: these packages see repro.db only through its
# package-level re-exports, never submodules.
FACADE_ONLY = ("repro.core",)


def package_key(module_name: str) -> str | None:
    """Longest ``LAYERS`` prefix of a dotted name (None when unranked)."""
    parts = module_name.split(".")
    while parts:
        candidate = ".".join(parts)
        if candidate in LAYERS:
            return candidate
        parts.pop()
    return None


@register
class LayeringRule(Rule):
    rule_id = "REP003"
    title = "layering: downward-only imports, db facade, no cycles"
    hint = (
        "import only from lower layers; reach repro.db through the package "
        "facade; break cycles with TYPE_CHECKING-only imports or by moving "
        "shared code down"
    )

    def run(self, project: ProjectContext) -> Iterator[Finding]:
        package_graph = nx.DiGraph()
        edge_sites: dict[tuple[str, str], tuple[SourceModule, ast.stmt]] = {}

        for module in sorted(project.modules, key=lambda m: m.relpath):
            if not module.module.startswith("repro"):
                continue
            source_key = package_key(module.module)
            source_rank = LAYERS.get(source_key or "", None)
            for target, node in runtime_imports(module):
                if not target.startswith("repro"):
                    continue
                yield from self._check_facade(module, target, node)
                if target == "repro":
                    continue  # the top package is a neutral namespace
                target_key = package_key(target)
                if target_key is None or target_key == source_key:
                    continue
                if source_key is not None:
                    package_graph.add_edge(source_key, target_key)
                    edge_sites.setdefault(
                        (source_key, target_key), (module, node)
                    )
                if (
                    source_rank is not None
                    and LAYERS[target_key] > source_rank
                ):
                    yield self.finding(
                        module,
                        node,
                        f"upward import: {source_key} (layer {source_rank}) "
                        f"imports {target} (layer {LAYERS[target_key]})",
                    )

        yield from self._check_cycles(package_graph, edge_sites)

    def _check_facade(
        self, module: SourceModule, target: str, node: ast.stmt
    ) -> Iterator[Finding]:
        source_key = package_key(module.module)
        if source_key in FACADE_ONLY and target.startswith("repro.db."):
            yield self.finding(
                module,
                node,
                f"{source_key} imports {target}: the engine must go through "
                "the repro.db facade, not database submodules",
            )

    def _check_cycles(
        self,
        graph: "nx.DiGraph",
        edge_sites: dict[tuple[str, str], tuple[SourceModule, ast.stmt]],
    ) -> Iterator[Finding]:
        for component in nx.strongly_connected_components(graph):
            if len(component) < 2:
                continue
            members = sorted(component)
            anchor: tuple[SourceModule, ast.stmt] | None = None
            for src, dst in sorted(edge_sites):
                if src in component and dst in component:
                    anchor = edge_sites[(src, dst)]
                    break
            if anchor is None:
                continue
            module, node = anchor
            yield self.finding(
                module,
                node,
                "package import cycle: " + " <-> ".join(members),
            )
