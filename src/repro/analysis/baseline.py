"""Baseline files: deliberately-accepted findings, burned down over time.

The baseline is a committed JSON file holding content fingerprints (see
:func:`repro.analysis.finding.fingerprints`).  A finding whose
fingerprint appears in the baseline is filtered out of the report; any
fingerprint left in the file that no longer matches a finding is stale
and reported so the file shrinks monotonically.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.finding import Finding, fingerprints

__all__ = [
    "BASELINE_VERSION",
    "load_baseline",
    "write_baseline",
    "match_baseline",
]

BASELINE_VERSION = 1


def load_baseline(path: Path) -> set[str]:
    """Read a baseline file; raises ``ValueError`` on malformed content."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ValueError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or "fingerprints" not in payload:
        raise ValueError(f"baseline {path} missing 'fingerprints' key")
    version = payload.get("version", BASELINE_VERSION)
    if version != BASELINE_VERSION:
        raise ValueError(
            f"baseline {path} has version {version}, expected {BASELINE_VERSION}"
        )
    entries = payload["fingerprints"]
    if not isinstance(entries, list) or not all(
        isinstance(entry, str) for entry in entries
    ):
        raise ValueError(f"baseline {path}: 'fingerprints' must be a string list")
    return set(entries)


def write_baseline(path: Path, findings: list[Finding]) -> None:
    """Write the current findings as the new accepted baseline."""
    payload = {
        "version": BASELINE_VERSION,
        "fingerprints": sorted(fingerprints(findings)),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def match_baseline(
    findings: list[Finding], accepted: set[str]
) -> tuple[list[Finding], list[Finding], set[str]]:
    """Split findings by the baseline.

    Returns ``(fresh, baselined, stale)``: findings not covered by the
    baseline, findings the baseline silences, and baseline fingerprints
    that matched nothing (candidates for removal).
    """
    fresh: list[Finding] = []
    baselined: list[Finding] = []
    used: set[str] = set()
    for finding, fingerprint in zip(findings, fingerprints(findings)):
        if fingerprint in accepted:
            baselined.append(finding)
            used.add(fingerprint)
        else:
            fresh.append(finding)
    return fresh, baselined, accepted - used
