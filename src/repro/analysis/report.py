"""Rendering lint runs as text or machine-readable JSON."""

from __future__ import annotations

import json
from collections import Counter

from repro.analysis.engine import LintRun

__all__ = ["render_text", "render_json"]


def render_text(run: LintRun, verbose: bool = False) -> str:
    parts: list[str] = [finding.render() for finding in run.findings]
    if run.stale_fingerprints:
        parts.append(
            f"baseline: {len(run.stale_fingerprints)} stale fingerprint(s) no "
            "longer match any finding — regenerate with --write-baseline"
        )
    summary = (
        f"checked {run.files_checked} file(s), {len(run.rules_run)} rule(s): "
        f"{len(run.findings)} finding(s)"
    )
    extras = []
    if run.baselined:
        extras.append(f"{len(run.baselined)} baselined")
    if run.suppressed:
        extras.append(f"{len(run.suppressed)} suppressed")
    if extras:
        summary += f" ({', '.join(extras)})"
    parts.append(summary)
    if verbose and (run.baselined or run.suppressed):
        for finding in run.baselined:
            parts.append(f"[baselined] {finding.render()}")
        for finding in run.suppressed:
            parts.append(f"[suppressed] {finding.render()}")
    return "\n".join(parts)


def render_json(run: LintRun) -> str:
    by_rule = Counter(f.rule_id for f in run.findings)
    by_severity = Counter(f.severity.value for f in run.findings)
    payload = {
        "version": 1,
        "files_checked": run.files_checked,
        "rules_run": run.rules_run,
        "findings": [f.to_dict() for f in run.findings],
        "baselined": len(run.baselined),
        "suppressed": len(run.suppressed),
        "stale_fingerprints": sorted(run.stale_fingerprints),
        "summary": {
            "total": len(run.findings),
            "by_rule": dict(sorted(by_rule.items())),
            "by_severity": dict(sorted(by_severity.items())),
        },
    }
    return json.dumps(payload, indent=2)
