"""SARIF 2.1.0 rendering for lint runs.

One ``run`` with the full rule catalogue, one ``result`` per fresh
finding.  URIs are repo-relative when the lint root sits inside the
working directory (the CI checkout case), so GitHub code scanning can
anchor inline annotations; ``partialFingerprints`` carries the same
content key the baseline uses, which keeps alert identity stable
across unrelated edits to the same file.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.engine import LintRun
from repro.analysis.finding import Finding, Severity
from repro.analysis.rulebase import all_rules

__all__ = ["render_sarif"]

_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"
_INFO_URI = "https://example.invalid/reprolint"


def render_sarif(run: LintRun) -> str:
    rules = all_rules(run.rules_run) if run.rules_run else all_rules()
    rule_index = {rule.rule_id: index for index, rule in enumerate(rules)}
    driver = {
        "name": "reprolint",
        "informationUri": _INFO_URI,
        "rules": [
            {
                "id": rule.rule_id,
                "name": type(rule).__name__,
                "shortDescription": {"text": rule.title or rule.rule_id},
                "help": {"text": rule.hint or rule.title or rule.rule_id},
                "defaultConfiguration": {
                    "level": _level(rule.severity),
                },
            }
            for rule in rules
        ],
    }
    payload = {
        "$schema": _SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {"driver": driver},
                "results": [
                    _result(finding, rule_index, _uri_prefix(run.root))
                    for finding in run.findings
                ],
            }
        ],
    }
    return json.dumps(payload, indent=2)


def _result(
    finding: Finding, rule_index: dict[str, int], prefix: str
) -> dict:
    uri = f"{prefix}{finding.path}" if prefix else finding.path
    text = finding.message
    if finding.hint:
        text = f"{text} ({finding.hint})"
    result = {
        "ruleId": finding.rule_id,
        "level": _level(finding.severity),
        "message": {"text": text},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": uri},
                    "region": {
                        "startLine": max(finding.line, 1),
                        "startColumn": max(finding.column, 1),
                    },
                }
            }
        ],
        "partialFingerprints": {
            "reprolint/contentKey": finding.content_key
        },
    }
    index = rule_index.get(finding.rule_id)
    if index is not None:
        result["ruleIndex"] = index
    return result


def _level(severity: Severity) -> str:
    return "error" if severity is Severity.ERROR else "warning"


def _uri_prefix(root: Path | None) -> str:
    """Lint-root prefix that rebases finding paths onto the checkout."""
    if root is None:
        return ""
    try:
        relative = root.resolve().relative_to(Path.cwd().resolve())
    except ValueError:
        return ""
    posix = relative.as_posix()
    return "" if posix == "." else f"{posix}/"
