"""Source loading: files → parsed modules → a project context.

Module names are derived from the path: everything from the last
``repro`` path component down (``src/repro/core/engine.py`` →
``repro.core.engine``), so the layering rules see the same dotted names
the import statements use.  Files outside a ``repro`` tree (golden
fixtures, scratch scripts) get their bare stem as module name and are
simply not part of the layer contract.

Suppressions: a trailing ``# reprolint: disable=REP001,REP004`` (or
``# reprolint: disable`` for all rules) silences findings on that line.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

__all__ = [
    "SourceModule",
    "ProjectContext",
    "load_project",
    "iter_python_files",
]

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*disable(?:=(?P<rules>[A-Z0-9, ]+))?"
)


@dataclass
class SourceModule:
    """One parsed Python file plus everything rules need to know."""

    path: Path
    relpath: str
    module: str
    text: str
    lines: list[str]
    tree: ast.Module
    suppressions: dict[int, frozenset[str]] = field(default_factory=dict)

    @property
    def package(self) -> str:
        """Dotted parent package (``""`` for top-level modules)."""
        return self.module.rpartition(".")[0]

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def is_suppressed(self, line: int, rule_id: str) -> bool:
        rules = self.suppressions.get(line)
        if rules is None:
            return False
        return "*" in rules or rule_id in rules


@dataclass
class ProjectContext:
    """All modules under the lint targets, plus unparseable files."""

    root: Path
    modules: list[SourceModule]
    parse_errors: list[tuple[str, int, str]] = field(default_factory=list)
    _shared: dict[str, Any] = field(default_factory=dict, repr=False)

    def by_module_name(self) -> dict[str, SourceModule]:
        return {m.module: m for m in self.modules if m.module}

    def module_for_path(self, relpath: str) -> SourceModule | None:
        for module in self.modules:
            if module.relpath == relpath:
                return module
        return None

    def shared(self, key: str, build: Callable[["ProjectContext"], Any]) -> Any:
        """Memoize a cross-module analysis product on this project.

        Rules that need whole-project context (call graph, lock model,
        escape sets) build it once per lint run through this hook; the
        first caller pays, later rules reuse the same object.
        """
        if key not in self._shared:
            self._shared[key] = build(self)
        return self._shared[key]


def _module_name(path: Path) -> str:
    parts = list(path.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
        if not parts:
            return ""
    if "repro" in parts:
        index = len(parts) - 1 - parts[::-1].index("repro")
        return ".".join(parts[index:])
    return parts[-1] if parts else ""


def _parse_suppressions(lines: list[str]) -> dict[int, frozenset[str]]:
    suppressions: dict[int, frozenset[str]] = {}
    for number, line in enumerate(lines, start=1):
        if "reprolint" not in line:
            continue
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        rules = match.group("rules")
        if rules is None:
            suppressions[number] = frozenset({"*"})
        else:
            suppressions[number] = frozenset(
                rule.strip() for rule in rules.split(",") if rule.strip()
            )
    return suppressions


def iter_python_files(targets: list[Path]) -> list[Path]:
    """Every ``.py`` file under the targets, deterministically ordered."""
    files: dict[Path, None] = {}
    for target in targets:
        if target.is_dir():
            for path in sorted(target.rglob("*.py")):
                if "__pycache__" in path.parts:
                    continue
                files.setdefault(path.resolve())
        elif target.suffix == ".py":
            files.setdefault(target.resolve())
    return sorted(files)


def load_project(targets: list[Path], root: Path | None = None) -> ProjectContext:
    """Parse every Python file under ``targets`` into a project context.

    ``root`` anchors the repo-relative paths findings report; it
    defaults to the common parent of the targets.
    """
    resolved = [t.resolve() for t in targets]
    if root is None:
        root = _common_root(resolved)
    root = root.resolve()
    modules: list[SourceModule] = []
    errors: list[tuple[str, int, str]] = []
    for path in iter_python_files(resolved):
        relpath = _relative(path, root)
        try:
            text = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            errors.append((relpath, 0, f"unreadable: {exc}"))
            continue
        try:
            tree = ast.parse(text, filename=str(path))
        except SyntaxError as exc:
            errors.append((relpath, exc.lineno or 0, f"syntax error: {exc.msg}"))
            continue
        lines = text.splitlines()
        modules.append(
            SourceModule(
                path=path,
                relpath=relpath,
                module=_module_name(path),
                text=text,
                lines=lines,
                tree=tree,
                suppressions=_parse_suppressions(lines),
            )
        )
    return ProjectContext(root=root, modules=modules, parse_errors=errors)


def _common_root(paths: list[Path]) -> Path:
    if not paths:
        return Path.cwd()
    parents = [p if p.is_dir() else p.parent for p in paths]
    common = parents[0]
    for parent in parents[1:]:
        while not parent.is_relative_to(common):
            common = common.parent
    return common


def _relative(path: Path, root: Path) -> str:
    try:
        return path.relative_to(root).as_posix()
    except ValueError:
        return path.as_posix()
