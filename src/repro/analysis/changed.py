"""Changed-file discovery for ``repro lint --changed``.

The fast local loop: ask git which Python files differ from ``HEAD``
(staged and unstaged edits plus untracked files), lint the *whole*
project as usual — the concurrency rules need every module parsed to
build their call graph and lock model — and report only the findings
that land in the changed files.  Selection is therefore a reporting
filter, never an analysis shortcut.
"""

from __future__ import annotations

import subprocess
from pathlib import Path

__all__ = ["git_repo_root", "changed_python_files"]


def git_repo_root(start: Path) -> Path | None:
    """The enclosing git work tree, or None when ``start`` is outside one."""
    probe = start if start.is_dir() else start.parent
    try:
        completed = subprocess.run(
            ["git", "-C", str(probe), "rev-parse", "--show-toplevel"],
            capture_output=True,
            text=True,
            check=False,
        )
    except OSError:
        return None
    if completed.returncode != 0:
        return None
    top = completed.stdout.strip()
    return Path(top) if top else None


def changed_python_files(repo_root: Path, base: str = "HEAD") -> list[Path]:
    """Absolute paths of ``.py`` files changed against ``base``.

    Deleted files are excluded (nothing to lint); untracked files are
    included (new modules are exactly what a pre-commit run must see).
    """
    names: list[str] = []
    names += _git_lines(
        repo_root,
        ["diff", "--name-only", "--diff-filter=d", "-z", base, "--"],
    )
    names += _git_lines(
        repo_root, ["ls-files", "--others", "--exclude-standard", "-z"]
    )
    paths: dict[Path, None] = {}
    for name in names:
        if not name.endswith(".py"):
            continue
        path = (repo_root / name).resolve()
        if path.exists():
            paths.setdefault(path)
    return sorted(paths)


def _git_lines(repo_root: Path, args: list[str]) -> list[str]:
    try:
        completed = subprocess.run(
            ["git", "-C", str(repo_root), *args],
            capture_output=True,
            text=True,
            check=False,
        )
    except OSError:
        return []
    if completed.returncode != 0:
        return []
    return [name for name in completed.stdout.split("\0") if name]
