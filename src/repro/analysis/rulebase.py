"""Rule plumbing: the base class, the registry, shared AST helpers."""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Type

from repro.analysis.finding import Finding, Severity
from repro.analysis.source import ProjectContext, SourceModule

__all__ = [
    "Rule",
    "register",
    "all_rules",
    "rule_ids",
    "runtime_imports",
    "attribute_chain",
]

_REGISTRY: dict[str, Type["Rule"]] = {}


class Rule:
    """One invariant checker.

    Subclasses set ``rule_id``/``title``/``hint`` and override either
    :meth:`check_module` (per-file rules) or :meth:`run` (whole-project
    rules such as the import-graph checks).
    """

    rule_id: str = "REP000"
    title: str = ""
    severity: Severity = Severity.WARNING
    hint: str = ""

    def run(self, project: ProjectContext) -> Iterator[Finding]:
        for module in project.modules:
            yield from self.check_module(module, project)

    def check_module(
        self, module: SourceModule, project: ProjectContext
    ) -> Iterable[Finding]:
        return ()

    # -- helpers -----------------------------------------------------------

    def finding(
        self,
        module: SourceModule,
        node: ast.AST | None,
        message: str,
        hint: str | None = None,
        severity: Severity | None = None,
    ) -> Finding:
        line = getattr(node, "lineno", 0) if node is not None else 0
        column = getattr(node, "col_offset", 0) if node is not None else 0
        return Finding(
            rule_id=self.rule_id,
            severity=severity or self.severity,
            path=module.relpath,
            line=line,
            column=column + 1 if node is not None else 0,
            message=message,
            hint=self.hint if hint is None else hint,
            snippet=module.line_text(line),
        )


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    _REGISTRY[cls.rule_id] = cls
    return cls


def all_rules(only: Iterable[str] | None = None) -> list[Rule]:
    """Instantiate the registered rules (optionally a subset by id)."""
    # Importing the rule modules populates the registry on first use.
    from repro.analysis import rules  # noqa: F401

    if only is None:
        wanted = sorted(_REGISTRY)
    else:
        wanted = []
        for rule_id in only:
            normalised = rule_id.strip().upper()
            if normalised not in _REGISTRY:
                raise ValueError(
                    f"unknown rule {rule_id!r}; known: {', '.join(sorted(_REGISTRY))}"
                )
            wanted.append(normalised)
    return [_REGISTRY[rule_id]() for rule_id in wanted]


def rule_ids() -> list[str]:
    from repro.analysis import rules  # noqa: F401

    return sorted(_REGISTRY)


# -- shared AST helpers -------------------------------------------------------


def runtime_imports(
    module: SourceModule, include_typing_only: bool = False
) -> list[tuple[str, ast.stmt]]:
    """``(imported module name, node)`` pairs for a module's imports.

    Imports guarded by ``if TYPE_CHECKING:`` are typing-only — they do
    not exist at runtime, create no import-time coupling, and are
    excluded unless asked for.  Relative imports are resolved against
    the module's own package.
    """
    typing_only: set[int] = set()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.If) and _is_type_checking_test(node.test):
            for child in ast.walk(node):
                typing_only.add(id(child))
    pairs: list[tuple[str, ast.stmt]] = []
    for node in ast.walk(module.tree):
        if not include_typing_only and id(node) in typing_only:
            continue
        if isinstance(node, ast.Import):
            for alias in node.names:
                pairs.append((alias.name, node))
        elif isinstance(node, ast.ImportFrom):
            target = _resolve_import_from(module, node)
            if target:
                pairs.append((target, node))
    return pairs


def _is_type_checking_test(test: ast.expr) -> bool:
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def _resolve_import_from(module: SourceModule, node: ast.ImportFrom) -> str:
    if node.level == 0:
        return node.module or ""
    # Relative import: climb from the module's own package.
    base = module.module.split(".")
    if module.path.name != "__init__.py":
        base = base[:-1]
    drop = node.level - 1
    if drop:
        base = base[:-drop] if drop <= len(base) else []
    if node.module:
        base = base + node.module.split(".")
    return ".".join(base)


def attribute_chain(node: ast.expr) -> list[str]:
    """``a.b.c`` → ``["a", "b", "c"]`` (empty when not a plain chain)."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return parts[::-1]
    return []
