"""The ``repro lint`` command.

Exit codes: 0 — clean (or everything baselined/below the ``--fail-on``
threshold); 1 — findings at or above the threshold; 2 — usage or
configuration error (unknown rule, malformed baseline).
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.analysis.baseline import write_baseline
from repro.analysis.changed import changed_python_files, git_repo_root
from repro.analysis.engine import LintEngine
from repro.analysis.finding import Severity
from repro.analysis.report import render_json, render_text
from repro.analysis.rulebase import all_rules, rule_ids
from repro.analysis.sarif import render_sarif

BASELINE_FILENAME = ".reprolint-baseline.json"

__all__ = ["add_lint_arguments", "run_lint", "default_target"]


def default_target() -> Path:
    """The package this repo lints by default: ``src/repro`` itself."""
    import repro

    return Path(repro.__file__).resolve().parent


def discover_baseline(targets: list[Path]) -> Path | None:
    """Walk up from the first target looking for the committed baseline."""
    if not targets:
        return None
    start = targets[0].resolve()
    if not start.is_dir():
        start = start.parent
    for directory in [start, *start.parents]:
        candidate = directory / BASELINE_FILENAME
        if candidate.exists():
            return candidate
    return None


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "targets",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--rules",
        help=f"comma-separated rule ids to run (default: all of {', '.join(rule_ids())})",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--changed",
        action="store_true",
        help=(
            "report only findings in files git says changed vs HEAD "
            "(the full project is still analysed for cross-module context)"
        ),
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        help=f"baseline file of accepted findings (default: nearest {BASELINE_FILENAME})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file, report everything",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept the current findings: write them to the baseline and exit 0",
    )
    parser.add_argument(
        "--fail-on",
        choices=("warning", "error", "never"),
        default="warning",
        help="lowest severity that fails the run (default: warning)",
    )
    parser.add_argument(
        "--self",
        dest="self_check",
        action="store_true",
        help="lint the linter: run over repro.analysis itself",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="also list baselined and suppressed findings (text format)",
    )


def run_lint(args: argparse.Namespace) -> int:
    if args.self_check:
        targets = [default_target() / "analysis"]
    elif args.targets:
        targets = list(args.targets)
    else:
        targets = [default_target()]
    missing = [t for t in targets if not t.exists()]
    if missing:
        print(f"error: no such target: {', '.join(map(str, missing))}")
        return 2

    only = None
    if args.rules:
        only = [r for r in args.rules.split(",") if r.strip()]
    try:
        rules = all_rules(only)
    except ValueError as exc:
        print(f"error: {exc}")
        return 2

    baseline_path: Path | None = None
    if not args.no_baseline:
        baseline_path = args.baseline or discover_baseline(targets)
    if args.baseline and not args.baseline.exists() and not args.write_baseline:
        print(f"error: baseline {args.baseline} does not exist")
        return 2

    restrict_to: list[Path] | None = None
    if getattr(args, "changed", False):
        repo_root = git_repo_root(targets[0])
        if repo_root is None:
            print("error: --changed requires a git work tree")
            return 2
        restrict_to = changed_python_files(repo_root)

    engine = LintEngine(rules)
    try:
        if args.write_baseline:
            run = engine.run(targets, baseline_path=None)
            destination = baseline_path or targets[0] / BASELINE_FILENAME
            write_baseline(destination, run.findings)
            print(
                f"wrote {len(run.findings)} fingerprint(s) to {destination}"
            )
            return 0
        run = engine.run(
            targets, baseline_path=baseline_path, restrict_to=restrict_to
        )
    except ValueError as exc:
        print(f"error: {exc}")
        return 2

    if args.format == "json":
        print(render_json(run))
    elif args.format == "sarif":
        print(render_sarif(run))
    else:
        print(render_text(run, verbose=args.verbose))

    if args.fail_on == "never":
        return 0
    threshold = Severity(args.fail_on)
    return 1 if run.exceeds(threshold) else 0
