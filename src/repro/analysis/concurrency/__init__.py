"""Shared concurrency-analysis substrate for REP007-REP010.

Three models over one parsed project, built once per lint run and
memoized on the :class:`~repro.analysis.source.ProjectContext`:

* :class:`CallGraph` — conservative module-level call resolution;
* :class:`LockModel` — declared locks, guarded regions and the
  must/may held-set fixpoints;
* :class:`EscapeModel` — callables that cross an executor or thread
  boundary, closed over resolved call edges.

Rules obtain all three through :meth:`ConcurrencyContext.of`, so four
rules share one analysis pass instead of re-walking every module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import cast

from repro.analysis.concurrency.callgraph import CallGraph, CallSite, FunctionInfo
from repro.analysis.concurrency.escape import BoundaryCall, EscapeModel
from repro.analysis.concurrency.locks import (
    Acquisition,
    AttrAccess,
    LockDecl,
    LockModel,
)
from repro.analysis.source import ProjectContext

__all__ = [
    "CallGraph",
    "CallSite",
    "FunctionInfo",
    "LockModel",
    "LockDecl",
    "Acquisition",
    "AttrAccess",
    "EscapeModel",
    "BoundaryCall",
    "ConcurrencyContext",
]

_SHARED_KEY = "concurrency-context"


@dataclass(frozen=True)
class ConcurrencyContext:
    """The three concurrency models for one project, built together."""

    graph: CallGraph
    locks: LockModel
    escape: EscapeModel

    @classmethod
    def of(cls, project: ProjectContext) -> "ConcurrencyContext":
        """The memoized context for ``project`` (built on first use)."""
        return cast(
            "ConcurrencyContext", project.shared(_SHARED_KEY, cls._build)
        )

    @classmethod
    def _build(cls, project: ProjectContext) -> "ConcurrencyContext":
        graph = CallGraph.build(project)
        locks = LockModel.build(project, graph)
        escape = EscapeModel.build(project, graph)
        return cls(graph=graph, locks=locks, escape=escape)
