"""Thread-escape approximation: which callables run off-thread.

Escape *roots* are callables handed to a concurrency boundary:

* ``pool.submit(fn, ...)`` when the receiver is a known
  ``ThreadPoolExecutor`` (tracked through locals, ``with ... as``
  bindings and ``self.<attr>`` constructor assignments) — or when the
  receiver cannot be classified at all, since every ``submit`` in this
  codebase is a thread-pool submit;
* ``pool.map(fn, ...)`` only when the receiver is a *known* thread
  pool (``ProcessPoolExecutor.map`` crosses a process boundary, where
  thread-safety rules do not apply — the sim-mining estimator relies
  on this);
* ``threading.Thread(target=fn, args=...)``.

The *escaping* set closes the roots over resolved call edges: anything
a root calls (that the call graph can see) also runs on the worker
thread.  Boundary call sites are kept verbatim so the thread-boundary
hygiene rule can inspect the argument expressions that cross with the
callable.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.concurrency.callgraph import CallGraph, FunctionInfo
from repro.analysis.rulebase import attribute_chain
from repro.analysis.source import ProjectContext

__all__ = ["BoundaryCall", "EscapeModel"]

_THREAD_POOLS = frozenset({"ThreadPoolExecutor"})
_PROCESS_POOLS = frozenset({"ProcessPoolExecutor"})
_EXECUTOR_MODULES = frozenset({"concurrent.futures", "concurrent"})


@dataclass(frozen=True)
class BoundaryCall:
    """One call that moves a callable (and its arguments) off-thread."""

    fn: str  # enclosing FunctionInfo.key
    kind: str  # "submit" | "map" | "thread"
    target: ast.expr | None  # the callable expression, if present
    target_key: str | None  # resolved FunctionInfo.key of the callable
    payload: tuple[ast.expr, ...]  # argument expressions crossing with it
    node: ast.Call
    relpath: str


class EscapeModel:
    """Escape roots, their transitive closure, and the boundary sites."""

    def __init__(self) -> None:
        self.roots: set[str] = set()
        self.escaping: set[str] = set()
        self.boundary_calls: list[BoundaryCall] = []

    @classmethod
    def build(cls, project: ProjectContext, graph: CallGraph) -> "EscapeModel":
        model = cls()
        for info in graph.functions.values():
            pools = _PoolKinds.of(info, graph)
            for site in graph.calls_by_caller.get(info.key, ()):
                model._classify(info, site.node, site.chain, pools, graph)
        model._close(graph)
        return model

    def escapes(self, fn_key: str) -> bool:
        return fn_key in self.escaping

    # -- boundary detection ----------------------------------------------------

    def _classify(
        self,
        info: FunctionInfo,
        node: ast.Call,
        chain: tuple[str, ...],
        pools: "_PoolKinds",
        graph: CallGraph,
    ) -> None:
        if len(chain) >= 2 and chain[-1] in ("submit", "map"):
            receiver = chain[:-1]
            kind = pools.kind(receiver)
            if kind == "process":
                return
            if chain[-1] == "map" and kind != "thread":
                return  # only flag .map on a *known* thread pool
            if node.args:
                self._record(
                    info, chain[-1], node.args[0], tuple(node.args[1:]), node, graph
                )
            return
        if chain and chain[-1] == "Thread" and _is_thread_ctor(chain, info, graph):
            target = None
            payload: list[ast.expr] = []
            for kw in node.keywords:
                if kw.arg == "target":
                    target = kw.value
                elif kw.arg in ("args", "kwargs"):
                    payload.append(kw.value)
            if target is not None:
                self._record(info, "thread", target, tuple(payload), node, graph)

    def _record(
        self,
        info: FunctionInfo,
        kind: str,
        target: ast.expr,
        payload: tuple[ast.expr, ...],
        node: ast.Call,
        graph: CallGraph,
    ) -> None:
        target_key = _resolve_callable(target, info, graph)
        self.boundary_calls.append(
            BoundaryCall(
                fn=info.key,
                kind=kind,
                target=target,
                target_key=target_key,
                payload=payload,
                node=node,
                relpath=info.relpath,
            )
        )
        if target_key is not None:
            self.roots.add(target_key)

    # -- closure ---------------------------------------------------------------

    def _close(self, graph: CallGraph) -> None:
        self.escaping = set(self.roots)
        frontier = list(self.roots)
        while frontier:
            key = frontier.pop()
            for site in graph.calls_by_caller.get(key, ()):
                callee = site.callee
                if callee is not None and callee not in self.escaping:
                    self.escaping.add(callee)
                    frontier.append(callee)


class _PoolKinds:
    """Receiver-name -> executor kind for one function's scope."""

    def __init__(self) -> None:
        self._kinds: dict[tuple[str, ...], str] = {}

    @classmethod
    def of(cls, info: FunctionInfo, graph: CallGraph) -> "_PoolKinds":
        pools = cls()
        imports = graph.import_table(info.module)
        # Locals and ``with ... as pool`` bindings in this function.
        for node in ast.walk(info.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                kind = _executor_kind(node.value, imports)
                if isinstance(target, ast.Name) and kind is not None:
                    pools._kinds[(target.id,)] = kind
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    kind = _executor_kind(item.context_expr, imports)
                    if kind is not None and isinstance(
                        item.optional_vars, ast.Name
                    ):
                        pools._kinds[(item.optional_vars.id,)] = kind
        # ``self.<attr>`` pools declared anywhere in the enclosing class.
        if info.cls is not None:
            for method in graph.methods_of(info.module, info.cls):
                for node in ast.walk(method.node):
                    if not (
                        isinstance(node, ast.Assign)
                        and len(node.targets) == 1
                    ):
                        continue
                    target = node.targets[0]
                    kind = _executor_kind(node.value, imports)
                    if (
                        kind is not None
                        and isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        pools._kinds[("self", target.attr)] = kind
        return pools

    def kind(self, receiver: tuple[str, ...]) -> str | None:
        return self._kinds.get(receiver)


def _executor_kind(expr: ast.expr, imports: dict[str, str]) -> str | None:
    """"thread" / "process" when ``expr`` constructs an executor."""
    if not isinstance(expr, ast.Call):
        return None
    chain = attribute_chain(expr.func)
    if not chain:
        return None
    name = chain[-1]
    if name in _THREAD_POOLS:
        kind = "thread"
    elif name in _PROCESS_POOLS:
        kind = "process"
    else:
        return None
    if len(chain) == 1:
        target = imports.get(name, "")
        return kind if target.endswith(f".{name}") else None
    head = imports.get(chain[0], ".".join(chain[:-1]))
    return kind if head in _EXECUTOR_MODULES else None


def _is_thread_ctor(
    chain: tuple[str, ...], info: FunctionInfo, graph: CallGraph
) -> bool:
    imports = graph.import_table(info.module)
    if len(chain) == 1:
        return imports.get("Thread", "") == "threading.Thread"
    return imports.get(chain[0], chain[0]) == "threading"


def _resolve_callable(
    target: ast.expr, info: FunctionInfo, graph: CallGraph
) -> str | None:
    """FunctionInfo.key for a callable expression, when resolvable."""
    chain = tuple(attribute_chain(target))
    if not chain:
        return None
    if len(chain) == 1:
        # Nested worker defined in this function?
        nested = f"{info.module}:{info.qualname}.{chain[0]}"
        if nested in graph.functions:
            return nested
    return graph.resolve_call(info.module, info, chain)
