"""Lock model: declared locks, guarded regions, held-set dataflow.

What counts as a lock
---------------------

* an instance attribute assigned ``threading.Lock()`` / ``RLock()`` /
  ``Condition()`` / ``Semaphore()`` (or the bare imported names) inside
  a method — identity ``module:Class.attr``, one id per *class*, which
  is the right granularity for ordering analysis;
* a module-level name bound the same way — identity ``module:NAME``;
* an instance attribute assigned from a constructor parameter whose
  annotation is one of those types (the metrics instruments share
  their registry's lock this way).

A guarded region is a ``with self.<lock>:`` / ``with <LOCK>:`` block.
``lock.acquire()`` / ``release()`` pairs are *not* modelled — the
codebase's convention is context managers only, and the obs rule
already pushes spans the same way.

Held-set dataflow
-----------------

Each access/call records the locks held *lexically*.  Two fixpoints
extend that through the call graph:

* ``must_held_entry`` — locks held on **every** resolved call path to
  a function.  Only private (single-underscore) helpers participate:
  a public method can be called from anywhere, so nothing may be
  assumed about its entry state.  This is how ``_query_locked``-style
  helpers inherit their caller's guard.
* ``may_held_entry`` — locks held on **some** resolved call path; the
  reachability side, used by the blocking-under-lock rule.

``acquires_within`` closes acquisitions over callees so lock-order
pairs cross function boundaries.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.concurrency.callgraph import CallGraph, FunctionInfo
from repro.analysis.rulebase import attribute_chain
from repro.analysis.source import ProjectContext, SourceModule

__all__ = ["LockDecl", "Acquisition", "AttrAccess", "LockModel"]

#: Constructor names that produce a lock-like object.
LOCK_FACTORIES = frozenset(
    {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}
)


@dataclass(frozen=True)
class LockDecl:
    """One declared lock."""

    lock_id: str  # "module:Class.attr" or "module:NAME"
    module: str
    cls: str | None
    attr: str
    kind: str  # factory name, or "param" for annotation-derived locks
    relpath: str
    line: int


@dataclass(frozen=True)
class Acquisition:
    """One ``with <lock>:`` entry, with the locks already held there."""

    fn: str  # FunctionInfo.key
    lock_id: str
    held_before: tuple[str, ...]
    line: int
    col: int


@dataclass(frozen=True)
class AttrAccess:
    """One read or write of ``self.<attr>`` / a module global."""

    fn: str  # FunctionInfo.key
    owner: str  # "module:Class" for instance attrs, "module" for globals
    attr: str
    is_write: bool
    held: frozenset[str]
    line: int
    col: int


class LockModel:
    """Declared locks plus every lock-relevant fact about the project."""

    def __init__(self) -> None:
        self.decls: dict[str, LockDecl] = {}
        self.class_locks: dict[str, set[str]] = {}  # "module:Class" -> ids
        self.module_locks: dict[str, set[str]] = {}  # module -> ids
        self.acquisitions: list[Acquisition] = []
        self.accesses: list[AttrAccess] = []
        self.held_at_call: dict[int, frozenset[str]] = {}  # id(Call) -> locks
        self.must_held_entry: dict[str, frozenset[str]] = {}
        self.may_held_entry: dict[str, frozenset[str]] = {}
        self.acquires_within: dict[str, frozenset[str]] = {}

    # -- construction ----------------------------------------------------------

    @classmethod
    def build(cls, project: ProjectContext, graph: CallGraph) -> "LockModel":
        model = cls()
        by_name = {m.module or m.relpath: m for m in project.modules}
        for module in project.modules:
            model._collect_decls(module, graph)
        for info in graph.functions.values():
            module = by_name.get(info.module)
            if module is not None:
                _FunctionScanner(model, info, graph).scan()
        model._solve(graph)
        return model

    # -- queries ---------------------------------------------------------------

    def locks_of_class(self, module: str, cls_name: str) -> frozenset[str]:
        return frozenset(self.class_locks.get(f"{module}:{cls_name}", ()))

    def entry_held(self, fn_key: str) -> frozenset[str]:
        """Locks guaranteed held whenever ``fn_key`` runs."""
        return self.must_held_entry.get(fn_key, frozenset())

    def reachable_held(self, fn_key: str) -> frozenset[str]:
        """Locks held on at least one known path into ``fn_key``."""
        return self.may_held_entry.get(fn_key, frozenset())

    def held_at(self, call_node: ast.Call, fn_key: str) -> frozenset[str]:
        """Locks held at one call site (lexical + guaranteed entry)."""
        lexical = self.held_at_call.get(id(call_node), frozenset())
        return lexical | self.entry_held(fn_key)

    # -- lock declarations -----------------------------------------------------

    def _collect_decls(self, module: SourceModule, graph: CallGraph) -> None:
        module_key = module.module or module.relpath
        imports = graph.import_table(module_key)
        # Module-level locks.
        for node in module.tree.body:
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                kind = _lock_factory(node.value, imports)
                if isinstance(target, ast.Name) and kind is not None:
                    self._declare(
                        LockDecl(
                            lock_id=f"{module_key}:{target.id}",
                            module=module_key,
                            cls=None,
                            attr=target.id,
                            kind=kind,
                            relpath=module.relpath,
                            line=node.lineno,
                        )
                    )
        # Instance locks: ``self.attr = threading.Lock()`` anywhere in a
        # method body, or assignment from a lock-annotated parameter.
        for info in graph.functions.values():
            if info.module != module_key or info.cls is None:
                continue
            annotated = _lock_annotated_params(info.node, imports)
            for node in ast.walk(info.node):
                if not (
                    isinstance(node, ast.Assign) and len(node.targets) == 1
                ):
                    continue
                target = node.targets[0]
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                kind = _lock_factory(node.value, imports)
                if kind is None and (
                    isinstance(node.value, ast.Name)
                    and node.value.id in annotated
                ):
                    kind = "param"
                if kind is not None:
                    self._declare(
                        LockDecl(
                            lock_id=f"{module_key}:{info.cls}.{target.attr}",
                            module=module_key,
                            cls=info.cls,
                            attr=target.attr,
                            kind=kind,
                            relpath=module.relpath,
                            line=node.lineno,
                        )
                    )

    def _declare(self, decl: LockDecl) -> None:
        self.decls.setdefault(decl.lock_id, decl)
        if decl.cls is not None:
            owner = f"{decl.module}:{decl.cls}"
            self.class_locks.setdefault(owner, set()).add(decl.lock_id)
        else:
            self.module_locks.setdefault(decl.module, set()).add(decl.lock_id)

    # -- fixpoints -------------------------------------------------------------

    def _solve(self, graph: CallGraph) -> None:
        self._solve_must(graph)
        self._solve_may(graph)
        self._solve_acquires(graph)

    def _solve_must(self, graph: CallGraph) -> None:
        universe = frozenset(self.decls)
        must: dict[str, frozenset[str]] = {}
        for key, info in graph.functions.items():
            callers = graph.callers_of.get(key, ())
            if info.is_private and callers:
                must[key] = universe
            else:
                must[key] = frozenset()
        for _ in range(len(graph.functions) + 1):
            changed = False
            for key, info in graph.functions.items():
                callers = graph.callers_of.get(key, ())
                if not (info.is_private and callers):
                    continue
                entry: frozenset[str] | None = None
                for site in callers:
                    lexical = self.held_at_call.get(
                        id(site.node), frozenset()
                    )
                    held = lexical | must[site.caller]
                    entry = held if entry is None else (entry & held)
                value = entry if entry is not None else frozenset()
                if value != must[key]:
                    must[key] = value
                    changed = True
            if not changed:
                break
        self.must_held_entry = must

    def _solve_may(self, graph: CallGraph) -> None:
        may: dict[str, frozenset[str]] = {
            key: frozenset() for key in graph.functions
        }
        for _ in range(len(graph.functions) + 1):
            changed = False
            for key in graph.functions:
                union: set[str] = set(may[key])
                for site in graph.callers_of.get(key, ()):
                    union |= self.held_at_call.get(id(site.node), frozenset())
                    union |= may[site.caller]
                    union |= self.must_held_entry.get(
                        site.caller, frozenset()
                    )
                value = frozenset(union)
                if value != may[key]:
                    may[key] = value
                    changed = True
            if not changed:
                break
        self.may_held_entry = may

    def _solve_acquires(self, graph: CallGraph) -> None:
        direct: dict[str, set[str]] = {key: set() for key in graph.functions}
        for acq in self.acquisitions:
            direct.setdefault(acq.fn, set()).add(acq.lock_id)
        acquires = {key: frozenset(value) for key, value in direct.items()}
        for _ in range(len(graph.functions) + 1):
            changed = False
            for key in graph.functions:
                union = set(acquires.get(key, frozenset()))
                for site in graph.calls_by_caller.get(key, ()):
                    if site.callee is not None:
                        union |= acquires.get(site.callee, frozenset())
                value = frozenset(union)
                if value != acquires.get(key, frozenset()):
                    acquires[key] = value
                    changed = True
            if not changed:
                break
        self.acquires_within = acquires


class _FunctionScanner:
    """One function body walk tracking the lexical lock stack."""

    def __init__(
        self, model: LockModel, fn: FunctionInfo, graph: CallGraph
    ) -> None:
        self.model = model
        self.fn = fn
        self.graph = graph
        self.held: list[str] = []
        self.globals: set[str] = set()

    def scan(self) -> None:
        for stmt in self.fn.node.body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Global):
                    self.globals.update(node.names)
        for stmt in self.fn.node.body:
            self._visit(stmt)

    # -- dispatch --------------------------------------------------------------

    def _visit(self, node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested defs are scanned as their own functions
        if isinstance(node, (ast.With, ast.AsyncWith)):
            self._visit_with(node)
            return
        if isinstance(node, ast.Call):
            self.model.held_at_call[id(node)] = frozenset(self.held)
        elif isinstance(node, ast.Attribute):
            self._record_attribute(node)
        elif isinstance(node, ast.Subscript):
            self._record_subscript(node)
        elif isinstance(node, ast.Name):
            self._record_name(node)
        for child in ast.iter_child_nodes(node):
            self._visit(child)

    def _visit_with(self, node: ast.With | ast.AsyncWith) -> None:
        pushed = 0
        for item in node.items:
            self._visit(item.context_expr)
            lock_id = self._identify(item.context_expr)
            if lock_id is not None:
                self.model.acquisitions.append(
                    Acquisition(
                        fn=self.fn.key,
                        lock_id=lock_id,
                        held_before=tuple(self.held),
                        line=item.context_expr.lineno,
                        col=item.context_expr.col_offset,
                    )
                )
                self.held.append(lock_id)
                pushed += 1
            if item.optional_vars is not None:
                self._visit(item.optional_vars)
        for stmt in node.body:
            self._visit(stmt)
        for _ in range(pushed):
            self.held.pop()

    # -- facts -----------------------------------------------------------------

    def _record_attribute(self, node: ast.Attribute) -> None:
        if not (
            isinstance(node.value, ast.Name)
            and node.value.id in ("self", "cls")
            and self.fn.cls is not None
        ):
            return
        self.model.accesses.append(
            AttrAccess(
                fn=self.fn.key,
                owner=f"{self.fn.module}:{self.fn.cls}",
                attr=node.attr,
                is_write=isinstance(node.ctx, (ast.Store, ast.Del)),
                held=frozenset(self.held),
                line=node.lineno,
                col=node.col_offset,
            )
        )

    def _record_subscript(self, node: ast.Subscript) -> None:
        # ``self.attr[i] = v`` mutates the shared container bound to
        # ``attr`` even though the Attribute node itself is a Load.
        if not isinstance(node.ctx, (ast.Store, ast.Del)):
            return
        target = node.value
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id in ("self", "cls")
            and self.fn.cls is not None
        ):
            self.model.accesses.append(
                AttrAccess(
                    fn=self.fn.key,
                    owner=f"{self.fn.module}:{self.fn.cls}",
                    attr=target.attr,
                    is_write=True,
                    held=frozenset(self.held),
                    line=node.lineno,
                    col=node.col_offset,
                )
            )

    def _record_name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, (ast.Store, ast.Del)) and node.id in self.globals:
            self.model.accesses.append(
                AttrAccess(
                    fn=self.fn.key,
                    owner=self.fn.module,
                    attr=node.id,
                    is_write=True,
                    held=frozenset(self.held),
                    line=node.lineno,
                    col=node.col_offset,
                )
            )

    # -- lock identification ---------------------------------------------------

    def _identify(self, expr: ast.expr) -> str | None:
        chain = attribute_chain(expr)
        if (
            len(chain) == 2
            and chain[0] in ("self", "cls")
            and self.fn.cls is not None
        ):
            lock_id = f"{self.fn.module}:{self.fn.cls}.{chain[1]}"
            return lock_id if lock_id in self.model.decls else None
        if len(chain) == 1:
            lock_id = f"{self.fn.module}:{chain[0]}"
            return lock_id if lock_id in self.model.decls else None
        return None


def _lock_factory(expr: ast.expr, imports: dict[str, str]) -> str | None:
    """The lock-factory name a constructor expression calls, or None."""
    if not isinstance(expr, ast.Call):
        return None
    chain = attribute_chain(expr.func)
    if not chain:
        return None
    name = chain[-1]
    if name not in LOCK_FACTORIES:
        return None
    if len(chain) == 1:
        target = imports.get(name, "")
        return name if target == f"threading.{name}" else None
    head = imports.get(chain[0], chain[0])
    return name if head == "threading" else None


def _lock_annotated_params(
    node: ast.FunctionDef | ast.AsyncFunctionDef, imports: dict[str, str]
) -> set[str]:
    """Parameter names annotated with a lock type."""
    names: set[str] = set()
    args = list(node.args.posonlyargs) + list(node.args.args) + list(
        node.args.kwonlyargs
    )
    for arg in args:
        if arg.annotation is None:
            continue
        chain = attribute_chain(arg.annotation)
        if not chain:
            continue
        name = chain[-1]
        if name not in LOCK_FACTORIES:
            continue
        if len(chain) == 1 and imports.get(name, "") == f"threading.{name}":
            names.add(arg.arg)
        elif len(chain) == 2 and imports.get(chain[0], chain[0]) == "threading":
            names.add(arg.arg)
    return names
