"""Module-level call graph over a parsed project.

The graph is a *conservative approximation*: an edge exists only when
the callee can be resolved syntactically —

* ``self.meth(...)`` / ``cls.meth(...)`` to a method of the enclosing
  class,
* ``name(...)`` to a function (or, via ``__init__``, a class) defined
  in the same module or imported by name from another project module,
* ``alias.func(...)`` to a module-level function when ``alias`` names
  an imported project module.

Everything else (duck-typed receivers, callables held in attributes,
higher-order dispatch) stays *unresolved*: the call site is still
recorded, with its dotted name chain, so pattern-based rules can match
it, but no edge is added.  Under-approximating edges keeps the lock
and escape fixpoints from inventing paths that cannot happen; the
concurrency rules are therefore precise on the idioms this codebase
actually uses and silent on the ones they cannot see.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.rulebase import attribute_chain
from repro.analysis.source import ProjectContext, SourceModule

__all__ = ["FunctionInfo", "CallSite", "CallGraph"]


@dataclass
class FunctionInfo:
    """One function or method definition (nested defs included)."""

    key: str  # "module:Qual.name" — globally unique
    module: str
    qualname: str  # "Class.method", "func" or "outer.inner"
    cls: str | None  # enclosing class name, if any
    node: ast.FunctionDef | ast.AsyncFunctionDef
    relpath: str

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def is_private(self) -> bool:
        """Callable only from project code we can see (by convention)."""
        name = self.name
        return name.startswith("_") and not name.startswith("__")

    @property
    def is_init(self) -> bool:
        """Constructor-shaped: runs before the instance is shared."""
        return self.name in ("__init__", "__new__", "__post_init__")


@dataclass
class CallSite:
    """One call expression inside a function body."""

    caller: str  # FunctionInfo.key of the enclosing function
    callee: str | None  # resolved FunctionInfo.key, or None
    chain: tuple[str, ...]  # dotted name parts, e.g. ("self", "webdb", "query")
    node: ast.Call


@dataclass
class _ModuleIndex:
    """Per-module name tables the resolver consults."""

    functions: dict[str, str] = field(default_factory=dict)  # local qualname -> key
    classes: dict[str, dict[str, str]] = field(default_factory=dict)
    # imported name -> dotted target ("module" or "module.attr")
    imports: dict[str, str] = field(default_factory=dict)


class CallGraph:
    """Functions, call sites and resolved edges for one project."""

    def __init__(self) -> None:
        self.functions: dict[str, FunctionInfo] = {}
        self.call_sites: list[CallSite] = []
        self.calls_by_caller: dict[str, list[CallSite]] = {}
        self.callers_of: dict[str, list[CallSite]] = {}
        self._indexes: dict[str, _ModuleIndex] = {}

    # -- construction ----------------------------------------------------------

    @classmethod
    def build(cls, project: ProjectContext) -> "CallGraph":
        graph = cls()
        for module in project.modules:
            graph._index_module(module)
        for module in project.modules:
            graph._collect_calls(module)
        return graph

    def _index_module(self, module: SourceModule) -> None:
        index = _ModuleIndex()
        self._indexes[module.module or module.relpath] = index
        for name, target in _import_table(module).items():
            index.imports[name] = target
        module_key = module.module or module.relpath
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._register_function(module, module_key, node, None, node.name)
            elif isinstance(node, ast.ClassDef):
                methods: dict[str, str] = {}
                index.classes[node.name] = methods
                for child in node.body:
                    if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        qual = f"{node.name}.{child.name}"
                        self._register_function(
                            module, module_key, child, node.name, qual
                        )
                        methods[child.name] = f"{module_key}:{qual}"
        # Nested defs (closures): registered with a dotted qualname so
        # the escape analysis can chase locally-defined workers.
        for info in list(self.functions.values()):
            if info.module != module_key:
                continue
            self._register_nested(module, module_key, info)

    def _register_nested(
        self, module: SourceModule, module_key: str, parent: FunctionInfo
    ) -> None:
        for child in ast.iter_child_nodes(parent.node):
            for node in ast.walk(child):
                if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                qual = f"{parent.qualname}.{node.name}"
                key = f"{module_key}:{qual}"
                if key in self.functions:
                    continue
                self._register_function(
                    module, module_key, node, parent.cls, qual
                )

    def _register_function(
        self,
        module: SourceModule,
        module_key: str,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        cls_name: str | None,
        qualname: str,
    ) -> None:
        key = f"{module_key}:{qualname}"
        info = FunctionInfo(
            key=key,
            module=module_key,
            qualname=qualname,
            cls=cls_name,
            node=node,
            relpath=module.relpath,
        )
        self.functions[key] = info
        index = self._indexes[module_key]
        index.functions.setdefault(qualname, key)

    # -- call collection -------------------------------------------------------

    def _collect_calls(self, module: SourceModule) -> None:
        module_key = module.module or module.relpath
        for info in self.functions.values():
            if info.module != module_key:
                continue
            nested = _nested_node_ids(info.node)
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Call):
                    continue
                if id(node) in nested:
                    continue  # belongs to a nested def's own record
                chain = tuple(attribute_chain(node.func))
                callee = self.resolve_call(module_key, info, chain)
                site = CallSite(
                    caller=info.key, callee=callee, chain=chain, node=node
                )
                self.call_sites.append(site)
                self.calls_by_caller.setdefault(info.key, []).append(site)
                if callee is not None:
                    self.callers_of.setdefault(callee, []).append(site)

    # -- resolution ------------------------------------------------------------

    def resolve_call(
        self,
        module_key: str,
        caller: FunctionInfo,
        chain: tuple[str, ...],
    ) -> str | None:
        """Best-effort callee key for a dotted call chain (or None)."""
        if not chain:
            return None
        index = self._indexes.get(module_key)
        if index is None:
            return None
        if len(chain) == 2 and chain[0] in ("self", "cls") and caller.cls:
            methods = index.classes.get(caller.cls, {})
            return methods.get(chain[1])
        if len(chain) == 1:
            name = chain[0]
            nested = index.functions.get(f"{caller.qualname}.{name}")
            if nested is not None:
                return nested
            key = index.functions.get(name)
            if key is not None:
                return key
            if name in index.classes:
                return index.classes[name].get("__init__")
            target = index.imports.get(name)
            if target is not None:
                return self.resolve_imported(target)
            return None
        if len(chain) == 2:
            target = index.imports.get(chain[0])
            if target is not None:
                return self.resolve_imported(f"{target}.{chain[1]}")
        return None

    def resolve_imported(self, dotted: str) -> str | None:
        """Resolve ``module.name`` / ``module.Class`` across the project."""
        module_name, _, name = dotted.rpartition(".")
        if not module_name:
            return None
        index = self._indexes.get(module_name)
        if index is not None:
            key = index.functions.get(name)
            if key is not None:
                return key
            if name in index.classes:
                return index.classes[name].get("__init__")
        # ``from package import name`` re-exported through __init__:
        # fall back to scanning project modules for a matching function.
        candidate = f"{module_name}:{name}"
        if candidate in self.functions:
            return candidate
        return None

    # -- queries ---------------------------------------------------------------

    def function(self, key: str) -> FunctionInfo | None:
        return self.functions.get(key)

    def import_table(self, module_key: str) -> dict[str, str]:
        """Imported local name -> dotted target for one module."""
        index = self._indexes.get(module_key)
        return index.imports if index is not None else {}

    def methods_of(self, module_key: str, cls_name: str) -> list[FunctionInfo]:
        return [
            info
            for info in self.functions.values()
            if info.module == module_key and info.cls == cls_name
        ]


def _import_table(module: SourceModule) -> dict[str, str]:
    """Imported local name -> dotted target for one module."""
    table: dict[str, str] = {}
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                table[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom):
            base = _resolve_from(module, node)
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                table[local] = f"{base}.{alias.name}" if base else alias.name
    return table


def _resolve_from(module: SourceModule, node: ast.ImportFrom) -> str:
    if node.level == 0:
        return node.module or ""
    parts = module.module.split(".") if module.module else []
    if module.path.name != "__init__.py" and parts:
        parts = parts[:-1]
    drop = node.level - 1
    if drop:
        parts = parts[:-drop] if drop <= len(parts) else []
    if node.module:
        parts = parts + node.module.split(".")
    return ".".join(parts)


def _nested_node_ids(root: ast.FunctionDef | ast.AsyncFunctionDef) -> set[int]:
    """Ids of every node belonging to a def nested inside ``root``.

    ``ast.walk`` has no parent links, so a function's own call sites
    are separated from its closures' by excluding the closures' whole
    subtrees (each nested def gets its own FunctionInfo and records its
    own calls).
    """
    members: set[int] = set()
    for child in ast.walk(root):
        if child is root:
            continue
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for inner in ast.walk(child):
                members.add(id(inner))
            members.discard(id(child))
    return members
