"""The engine: run rules over a project, apply suppressions and baseline."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.baseline import load_baseline, match_baseline
from repro.analysis.finding import Finding, Severity
from repro.analysis.rulebase import Rule, all_rules
from repro.analysis.source import ProjectContext, _relative, load_project

__all__ = ["LintEngine", "LintRun"]

PARSE_RULE_ID = "REP000"


@dataclass
class LintRun:
    """Everything one lint invocation produced."""

    findings: list[Finding]  # fresh findings (not baselined, not suppressed)
    baselined: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    stale_fingerprints: set[str] = field(default_factory=set)
    files_checked: int = 0
    rules_run: list[str] = field(default_factory=list)
    root: Path | None = None

    def worst_severity(self) -> Severity | None:
        if not self.findings:
            return None
        return max((f.severity for f in self.findings), key=lambda s: s.rank)

    def exceeds(self, threshold: Severity) -> bool:
        worst = self.worst_severity()
        return worst is not None and worst.rank >= threshold.rank


class LintEngine:
    """Runs a rule set over source targets and folds in the baseline."""

    def __init__(self, rules: list[Rule] | None = None) -> None:
        self.rules = rules if rules is not None else all_rules()

    def run(
        self,
        targets: list[Path],
        baseline_path: Path | None = None,
        root: Path | None = None,
        restrict_to: list[Path] | None = None,
    ) -> LintRun:
        project = load_project(targets, root=root)
        return self.run_project(
            project, baseline_path=baseline_path, restrict_to=restrict_to
        )

    def run_project(
        self,
        project: ProjectContext,
        baseline_path: Path | None = None,
        restrict_to: list[Path] | None = None,
    ) -> LintRun:
        raw: list[Finding] = list(self._parse_errors(project))
        for rule in self.rules:
            raw.extend(rule.run(project))
        raw.sort(key=Finding.sort_key)

        kept: list[Finding] = []
        suppressed: list[Finding] = []
        by_path = {m.relpath: m for m in project.modules}
        for finding in raw:
            module = by_path.get(finding.path)
            if module is not None and module.is_suppressed(
                finding.line, finding.rule_id
            ):
                suppressed.append(finding)
            else:
                kept.append(finding)

        if restrict_to is not None:
            # Changed-file mode: the whole project was analysed (the
            # concurrency rules need cross-module context), but only
            # findings landing in the changed files are reported.
            allowed = {
                _relative(path.resolve(), project.root) for path in restrict_to
            }
            kept = [f for f in kept if f.path in allowed]
            suppressed = [f for f in suppressed if f.path in allowed]

        baselined: list[Finding] = []
        stale: set[str] = set()
        if baseline_path is not None and baseline_path.exists():
            accepted = load_baseline(baseline_path)
            kept, baselined, stale = match_baseline(kept, accepted)
            if restrict_to is not None:
                # A partial run cannot judge which accepted
                # fingerprints are still live elsewhere in the tree.
                stale = set()

        return LintRun(
            findings=kept,
            baselined=baselined,
            suppressed=suppressed,
            stale_fingerprints=stale,
            files_checked=len(project.modules) + len(project.parse_errors),
            rules_run=[rule.rule_id for rule in self.rules],
            root=project.root,
        )

    @staticmethod
    def _parse_errors(project: ProjectContext) -> list[Finding]:
        return [
            Finding(
                rule_id=PARSE_RULE_ID,
                severity=Severity.ERROR,
                path=relpath,
                line=line,
                column=0,
                message=message,
                hint="fix the file so it parses; unparseable files are unlinted",
            )
            for relpath, line, message in project.parse_errors
        ]
