"""Findings: what a rule reports and how findings are identified.

A finding is anchored to a file and line but *identified* by content —
the fingerprint hashes ``rule id | path | offending source line`` plus
an occurrence index, so a committed baseline survives unrelated edits
that merely shift line numbers.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from enum import Enum


class Severity(str, Enum):
    """How bad a finding is; drives ``--fail-on`` gating."""

    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return 1 if self is Severity.WARNING else 2


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    severity: Severity
    path: str  # repo-relative, POSIX separators
    line: int
    column: int
    message: str
    hint: str = ""
    snippet: str = ""

    @property
    def content_key(self) -> str:
        """Location-independent identity (no occurrence index)."""
        digest = hashlib.sha256(
            f"{self.rule_id}|{self.path}|{self.snippet}".encode("utf-8")
        ).hexdigest()
        return digest[:16]

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.column, self.rule_id)

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule_id,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
            "hint": self.hint,
            "snippet": self.snippet,
        }

    def render(self) -> str:
        location = f"{self.path}:{self.line}:{self.column}"
        text = f"{location}: {self.rule_id} {self.severity.value}: {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        if self.snippet:
            text += f"\n    > {self.snippet}"
        return text


def fingerprints(findings: list[Finding]) -> list[str]:
    """Occurrence-indexed fingerprints, aligned with ``findings``.

    Two identical offending lines in one file get distinct suffixes, so
    a baseline holding one of them still reports the other.
    """
    seen: dict[str, int] = {}
    out: list[str] = []
    for finding in findings:
        key = finding.content_key
        index = seen.get(key, 0)
        seen[key] = index + 1
        out.append(f"{key}-{index}")
    return out
