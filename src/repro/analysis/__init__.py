"""reprolint: AST-based invariant linter for this repository.

The test suite can only *sample* the repo's correctness contracts —
determinism of mined artifacts and rankings, facade-only online access,
bit-for-bit fast-path equivalence.  This package enforces whole classes
of those contracts mechanically at commit time:

* :mod:`repro.analysis.rules.determinism` — REP001, unordered iteration
  / unseeded randomness / wall-clock reads in mining and scoring paths;
* :mod:`repro.analysis.rules.floats` — REP002, float ``==`` outside the
  tolerance helpers;
* :mod:`repro.analysis.rules.layering` — REP003, the import-contract
  graph (layer ranks, facade-only ``repro.core``, cycle detection);
* :mod:`repro.analysis.rules.probes` — REP004, probe accounting (no
  caller outside ``repro.db`` touches the executor or index internals);
* :mod:`repro.analysis.rules.obs` — REP005, metric naming and
  context-managed spans;
* :mod:`repro.analysis.rules.exceptions` — REP006, no swallowed
  exceptions;
* :mod:`repro.analysis.rules.shared_state` — REP007, shared mutable
  state written outside its guarded region;
* :mod:`repro.analysis.rules.lock_order` — REP008, inconsistent nested
  lock acquisition order (potential deadlock);
* :mod:`repro.analysis.rules.blocking` — REP009, blocking operations
  (probe dispatch, executor traffic, sleeps, I/O) under a held lock;
* :mod:`repro.analysis.rules.thread_boundary` — REP010, non-thread-safe
  objects crossing an executor boundary without a capture.

REP007–REP010 share the cross-module substrate in
:mod:`repro.analysis.concurrency` (call graph, lock model, thread-escape
approximation), built once per run and memoized on the project context.

Run it as ``python -m repro lint`` (see :mod:`repro.analysis.cli`).
"""

from repro.analysis.baseline import (
    load_baseline,
    match_baseline,
    write_baseline,
)
from repro.analysis.engine import LintEngine, LintRun
from repro.analysis.finding import Finding, Severity
from repro.analysis.rulebase import Rule, all_rules, rule_ids
from repro.analysis.source import ProjectContext, SourceModule, load_project

__all__ = [
    "Finding",
    "Severity",
    "LintEngine",
    "LintRun",
    "ProjectContext",
    "Rule",
    "SourceModule",
    "all_rules",
    "load_baseline",
    "load_project",
    "match_baseline",
    "rule_ids",
    "write_baseline",
]
