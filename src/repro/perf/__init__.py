"""Performance harness: micro-benchmarks over the opt-in fast paths.

Each scenario times a fast path against its reference (slow) path on
the same inputs, verifies the two produce identical results, and
reports wall-clock plus the relevant observability counters.  The CLI
entry point is ``python -m repro bench``; CI runs the smoke scale and
the committed ``BENCH_perf.json`` records a default-scale run.  See
``docs/PERFORMANCE.md`` for what each fast path changes and why it is
result-equivalent.
"""

from repro.perf.bench import (
    SCALES,
    SCENARIOS,
    ScenarioResult,
    check_regressions,
    run_bench,
)

__all__ = [
    "SCALES",
    "SCENARIOS",
    "ScenarioResult",
    "check_regressions",
    "run_bench",
]
