"""Performance harness: micro-benchmarks over the opt-in fast paths.

Each scenario times a fast path against its reference (slow) path on
the same inputs, verifies the two produce identical results, and
reports wall-clock plus the relevant observability counters.  The CLI
entry point is ``python -m repro bench``; CI runs the smoke scale and
gates it against the committed ``BENCH_perf.json`` baseline, while the
committed ``BENCH_history.jsonl`` keeps the speedup trajectory across
recorded runs.  See ``docs/PERFORMANCE.md`` for what each fast path
changes and why it is result-equivalent.
"""

from repro.perf.bench import (
    SCALES,
    SCENARIOS,
    ScenarioResult,
    append_history,
    check_baseline,
    check_regressions,
    load_report,
    run_bench,
)

__all__ = [
    "SCALES",
    "SCENARIOS",
    "ScenarioResult",
    "append_history",
    "check_baseline",
    "check_regressions",
    "load_report",
    "run_bench",
]
