"""Fast-path micro-benchmarks (``python -m repro bench``).

One scenario per fast path introduced by the performance layer, plus
one overhead guard for the resilience layer:

``probe_cache``
    Repeated imprecise-query answering with the facade's LRU probe
    cache off (every relaxation probe hits the source) vs on (repeats
    are served from the cache).
``vsim_mining``
    ``ValueSimilarityMiner.mine`` in the seed configuration vs
    ``workers=2`` + ``prune_bound=True`` at the same store threshold.
``topk``
    Ranking the extended set with a full sort vs ``heapq.nsmallest``.
``similarity_memo``
    Scoring candidate rows through the per-call reference path
    (``sim_to_query``) vs one precompiled :class:`BindingsScorer`.
``lazy_partition``
    TANE-style partition products reading ranks only, with the
    row→class map forced after every construction (the seed's eager
    ``__post_init__`` behaviour) vs built lazily (never, on this path).
``resilience_overhead``
    Repeated answering on a healthy source through the plain facade vs
    through :class:`~repro.resilience.ResilientWebDatabase` with a full
    policy attached (retry + breaker + deadlines).  This scenario is a
    *guard*, not an optimisation: both paths must produce identical
    answers and the guarded path must stay within the regression
    tolerance — i.e. resilience on the happy path is close to free.
``semantic_reuse``
    Answering over an overlap-heavy source (rows drawn from a small
    pool of correlated profiles, so sibling base tuples share whole
    relaxation programs) with the sequential engine vs the semantic
    planner in pure-reuse mode (``frontier="off"``): every relaxed
    query already answered — exactly or by containment — is served
    locally instead of re-probing the source.  Equivalence here also
    requires the planner to issue *strictly fewer* source probes while
    resolving the *same* logical probe stream.
``batched_frontier``
    The same workload with frontier batching on top
    (``frontier="tuple"``, two workers): each base tuple's
    per-level frontier is deduplicated and dispatched as a batch
    before consumption resumes in serial order.
``columnar_scan``
    The same CarDB probe workload (paged selections + counts over
    every operator) against the row-dict engine vs the columnar engine
    (typed arrays + vectorized predicate masks).  Equivalence demands
    identical pages, counts *and* an identical ProbeLog window.
``zone_map_prune``
    A Price-clustered columnar source probed with narrow Price windows,
    zone maps off vs on.  Equivalence additionally demands that the
    fast path actually pruned blocks (``blocks_pruned > 0``) — pruning
    that never fires is a regression even if the timings happen to tie.
``sharded_scatter``
    The same probe workload against one row-dict source vs a
    scatter-gather facade over hash-partitioned columnar shards.
    Equivalence demands identical pages/counts and that the facade's
    logical ProbeLog window matches the unsharded facade's exactly
    (docs/PERFORMANCE.md §8 roll-up rules).
``obs_overhead``
    Repeated answering with observability fully off (the reference)
    vs the wide-event log alone vs events *and* tracing together.
    Another guard: all three passes must produce bit-identical
    answers. The wide-events-on pass — the always-on production
    posture, budget < 5% — is the ``fast`` leg, so the regression and
    baseline gates pin its overhead. Full span tracing is a debugging
    mode whose cost is proportional to span count (per-probe spans
    over microsecond in-memory probes), so its measured fraction is
    reported in ``details["full_overhead"]`` rather than gated.
``index_mining``
    ``ValueSimilarityMiner.estimate`` over a clustered table (values
    co-occur only inside their own cluster) with the full pair grid vs
    ``use_index=True`` candidate generation from the inverted
    supertuple index.  Equivalence demands the identical mined model
    *and* that candidate generation actually skipped pairs
    (``pairs_skipped > 0``) — an index that degenerates to the grid is
    a regression even if the timings happen to tie.
``index_topk``
    ``SimilarityModel.top_similar`` probes served by the linear scan
    vs the heap-merged :class:`~repro.simmining.index.TopSimilarIndex`,
    measured at two model sizes.  The gated timing comes from the
    large model; equivalence additionally demands identical rankings
    at both sizes and a speedup that *grows* with the value count —
    the sublinearity evidence (a constant-factor win would not).

Every scenario checks that the fast and slow paths produced identical
results; ``check_regressions`` turns a report into CI failures when a
fast path is slower than its reference beyond a tolerance, and
``check_baseline`` compares a fresh report's speedups against a
committed baseline (``BENCH_perf.json``) so the fast paths cannot
silently decay across commits.  ``append_history`` keeps the
trajectory: one JSON line per recorded run in ``BENCH_history.jsonl``.

Timing runs with observability *off* so neither path pays metric
overhead; counters reported in ``details`` come from separate metered
re-runs of the fast path.
"""

from __future__ import annotations

import heapq
import json
import random
import sys
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable

from repro.afd.partition import StrippedPartition, partition_product, partition_single
from repro.core.config import AIMQSettings
from repro.core.pipeline import AIMQModel, build_model
from repro.core.plan import PlannerConfig
from repro.core.query import ImpreciseQuery
from repro.core.results import RankedAnswer, RelaxationTrace
from repro.datasets.cardb import cardb_webdb, generate_cardb
from repro.db.predicates import Between, Eq, Ge, Gt, IsIn, Le, Lt, Ne
from repro.db.query import SelectionQuery
from repro.db.schema import RelationSchema
from repro.db.sharded import ShardedWebDatabase
from repro.db.table import ColumnarTable, Table
from repro.db.webdb import AutonomousWebDatabase
from repro.obs.runtime import OBS
from repro.resilience import ResiliencePolicy, ResilientWebDatabase
from repro.simmining.estimator import (
    SimilarityMinerConfig,
    SimilarityModel,
    ValueSimilarityMiner,
)

__all__ = [
    "BenchScale",
    "SCALES",
    "SCENARIOS",
    "ScenarioResult",
    "append_history",
    "check_baseline",
    "check_regressions",
    "load_report",
    "run_bench",
]


@dataclass(frozen=True)
class BenchScale:
    """Problem sizes for one benchmark scale."""

    rows: int  # source size behind the facade
    sample: int  # sample size for model building
    repeats: int  # repeated answering passes over the query set
    queries: int  # distinct imprecise queries per pass
    mining_rows: int  # synthetic mining-table size
    mining_values: int  # distinct values per mining attribute
    mining_attributes: int
    mining_threshold: float  # store_threshold for the mining scenario
    candidates: int  # synthetic extended-set size for top-k
    top_k: int
    score_rows: int  # rows scored per similarity-memo repetition
    score_repeats: int
    partition_rows: int
    partition_products: int
    # Columnar data-plane scenarios (defaults keep older scale
    # constructions valid).
    scan_rows: int = 20_000  # source size for the scan scenarios
    scan_repeats: int = 1  # passes over the scan query set
    shards: int = 4  # shard count for sharded_scatter
    # zone_map_prune needs a larger source: its gap is scan work saved
    # per probe, which must dominate the per-probe facade overhead.
    zone_rows: int = 100_000
    # serve_load (registered by repro.serve.bench): concurrent clients
    # against the answering server, with the shared probe cache as the
    # fast path.
    serve_clients: int = 6
    serve_requests: int = 24
    # index_mining: clustered sparse mining table (values co-occur only
    # within their cluster, so posting-list intersection prunes all
    # cross-cluster pairs).
    index_mining_rows: int = 900
    index_mining_values: int = 60
    index_mining_clusters: int = 6
    # index_topk: linear vs indexed top_similar at two model sizes (the
    # large/small speedup ratio is the sublinearity evidence).
    topk_values: int = 400
    topk_values_large: int = 4_000
    topk_probes: int = 300
    topk_neighbors: int = 8


SCALES: dict[str, BenchScale] = {
    # CI smoke: seconds, not minutes; still large enough that the
    # fast/slow gap dominates timer noise.  This is the committed
    # BENCH_perf.json scale, because the CI baseline gate compares
    # speedups at the scale the bench-smoke job actually runs.
    "smoke": BenchScale(
        rows=1_500,
        sample=400,
        repeats=3,
        queries=2,
        mining_rows=700,
        mining_values=35,
        mining_attributes=5,
        mining_threshold=0.5,
        candidates=30_000,
        top_k=10,
        score_rows=400,
        score_repeats=30,
        partition_rows=6_000,
        partition_products=40,
    ),
    # The scale the committed BENCH_history.jsonl trajectory records.
    "default": BenchScale(
        rows=6_000,
        sample=1_200,
        repeats=5,
        queries=3,
        mining_rows=1_500,
        mining_values=50,
        mining_attributes=6,
        mining_threshold=0.5,
        candidates=150_000,
        top_k=10,
        score_rows=1_200,
        score_repeats=60,
        partition_rows=20_000,
        partition_products=120,
        scan_rows=100_000,
        scan_repeats=1,
        shards=4,
        zone_rows=250_000,
    ),
    # The scheduled/labelled CI bench-scale job: 1M-row sources for the
    # columnar data-plane scenarios (run with ``--only columnar_scan
    # --only zone_map_prune --only sharded_scatter``); the engine-level
    # knobs stay at smoke sizes so an accidental full run terminates.
    "scale1m": BenchScale(
        rows=1_500,
        sample=400,
        repeats=3,
        queries=2,
        mining_rows=700,
        mining_values=35,
        mining_attributes=5,
        mining_threshold=0.5,
        candidates=30_000,
        top_k=10,
        score_rows=400,
        score_repeats=30,
        partition_rows=6_000,
        partition_products=40,
        scan_rows=1_000_000,
        scan_repeats=1,
        shards=8,
        zone_rows=1_000_000,
    ),
}


@dataclass
class ScenarioResult:
    """Timing pair + equivalence verdict for one scenario."""

    name: str
    slow_seconds: float
    fast_seconds: float
    equivalent: bool
    details: dict[str, object] = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        if self.fast_seconds <= 0.0:
            return float("inf")
        return self.slow_seconds / self.fast_seconds

    def as_dict(self) -> dict[str, object]:
        return {
            "slow_seconds": round(self.slow_seconds, 6),
            "fast_seconds": round(self.fast_seconds, 6),
            "speedup": round(self.speedup, 3),
            "equivalent": self.equivalent,
            "details": self.details,
        }


def _timed(run: Callable[[], object]) -> tuple[object, float]:
    start = time.perf_counter()
    value = run()
    return value, time.perf_counter() - start


# -- shared fixture -----------------------------------------------------------


class _Fixture:
    """One source + mined model shared by the engine-level scenarios.

    Built on first access so scenario subsets that never touch the
    engine (``--only topk``) skip the model build entirely.
    """

    def __init__(self, scale: BenchScale) -> None:
        self._scale = scale
        self._webdb: AutonomousWebDatabase | None = None
        self._model: AIMQModel | None = None
        self._overlap: (
            tuple[AutonomousWebDatabase, AIMQModel, ImpreciseQuery] | None
        ) = None

    def _build(self) -> None:
        if self._webdb is not None:
            return
        self._webdb = cardb_webdb(self._scale.rows, seed=11)
        self._model = build_model(
            self._webdb,
            sample_size=self._scale.sample,
            rng=random.Random(12),
            settings=AIMQSettings(max_relaxation_level=3),
        )
        self._webdb.reset_accounting()

    @property
    def webdb(self) -> AutonomousWebDatabase:
        self._build()
        assert self._webdb is not None
        return self._webdb

    @property
    def model(self) -> AIMQModel:
        self._build()
        assert self._model is not None
        return self._model

    @property
    def overlap(
        self,
    ) -> tuple[AutonomousWebDatabase, AIMQModel, ImpreciseQuery]:
        """Source + model + query for the semantic-planner scenarios."""
        if self._overlap is None:
            webdb, top_value = _overlap_webdb(self._scale)
            model = build_model(
                webdb,
                sample_size=self._scale.sample,
                rng=random.Random(12),
                settings=AIMQSettings(
                    max_relaxation_level=2,
                    max_extracted_per_base_tuple=250,
                ),
            )
            webdb.reset_accounting()
            query = ImpreciseQuery.like(webdb.schema.name, A0=top_value)
            self._overlap = (webdb, model, query)
        return self._overlap


def _fixture_queries(fixture: _Fixture, count: int) -> list[ImpreciseQuery]:
    """Likeness queries built from distinct sample rows."""
    schema = fixture.webdb.schema
    sample = fixture.model.sample
    queries: list[ImpreciseQuery] = []
    step = max(1, len(sample) // max(count, 1))
    for index in range(count):
        row = sample.row((index * step) % len(sample))
        bindings: dict[str, object] = {}
        for name in ("Model", "Price", "Location"):
            value = row[schema.position(name)]
            if value is not None:
                bindings[name] = value
        queries.append(ImpreciseQuery.like(schema.name, **bindings))
    return queries


# -- scenarios ----------------------------------------------------------------


def bench_probe_cache(scale: BenchScale, fixture: _Fixture) -> ScenarioResult:
    webdb = fixture.webdb
    engine = fixture.model.engine(webdb)
    queries = _fixture_queries(fixture, scale.queries)

    def run() -> list[list[tuple[int, float, float]]]:
        outputs: list[list[tuple[int, float, float]]] = []
        for _ in range(scale.repeats):
            for query in queries:
                answers = engine.answer(query)
                outputs.append(
                    [
                        (a.row_id, a.similarity, a.base_similarity)
                        for a in answers
                    ]
                )
        return outputs

    webdb.disable_probe_cache()
    with webdb.accounting_scope() as slow_window:
        slow_out, slow_seconds = _timed(run)
    webdb.enable_probe_cache(capacity=8_192)
    try:
        with webdb.accounting_scope() as fast_window:
            fast_out, fast_seconds = _timed(run)
        cache = webdb.probe_cache
        details = {
            "repeats": scale.repeats,
            "queries": len(queries),
            "probes_issued_slow": slow_window.probes_issued,
            "probes_issued_fast": fast_window.probes_issued,
            "cache_hits": fast_window.cache_hits,
            "cache_evictions": cache.evictions if cache is not None else 0,
        }
    finally:
        webdb.disable_probe_cache()
    return ScenarioResult(
        name="probe_cache",
        slow_seconds=slow_seconds,
        fast_seconds=fast_seconds,
        equivalent=slow_out == fast_out,
        details=details,
    )


def _mining_table(scale: BenchScale, seed: int = 61) -> Table:
    """All-categorical table with Zipf-skewed value frequencies.

    The skew matters: heavy-tailed AV-pair frequencies give the
    bag-size upper bound real spread, which is exactly the regime the
    prune targets (most pairs mix one frequent with one rare value and
    cannot clear the store threshold).
    """
    rng = random.Random(seed)
    names = tuple(f"A{index}" for index in range(scale.mining_attributes))
    schema = RelationSchema.build(
        "minebench", categorical=names, numeric=(), order=names
    )
    domains = [
        [f"v{attribute}_{value}" for value in range(scale.mining_values)]
        for attribute in range(scale.mining_attributes)
    ]
    weights = [1.0 / (rank + 1) for rank in range(scale.mining_values)]
    table = Table(schema)
    for _ in range(scale.mining_rows):
        table.insert(
            tuple(
                rng.choices(domain, weights=weights, k=1)[0]
                for domain in domains
            )
        )
    return table


def bench_vsim_mining(scale: BenchScale, fixture: _Fixture) -> ScenarioResult:
    table = _mining_table(scale)
    threshold = scale.mining_threshold
    slow_config = SimilarityMinerConfig(store_threshold=threshold)
    fast_config = SimilarityMinerConfig(
        store_threshold=threshold,
        workers=2,
        prune_bound=True,
        parallel_chunk_pairs=8_192,
    )

    slow_model, slow_seconds = _timed(
        lambda: ValueSimilarityMiner(slow_config).mine(table)
    )
    fast_model, fast_seconds = _timed(
        lambda: ValueSimilarityMiner(fast_config).mine(table)
    )

    def model_state(model):
        return (
            {name: model.pairs(name) for name in model.attributes},
            {name: model.known_values(name) for name in model.attributes},
        )

    # Metered serial re-run of the pruned path for the counters (the
    # parallel path counts identically but meters in worker processes).
    metered_config = SimilarityMinerConfig(
        store_threshold=threshold, prune_bound=True
    )
    was_enabled = OBS.enabled
    OBS.reset()
    OBS.enable()
    try:
        ValueSimilarityMiner(metered_config).mine(table)
        snapshot: dict[str, int] = {}
        for metric in OBS.registry.snapshot()["metrics"]:
            if metric["name"].startswith("repro_simmining_pair"):
                snapshot[metric["name"]] = sum(
                    series.get("value", 0) for series in metric["series"]
                )
    finally:
        OBS.reset()
        if not was_enabled:
            OBS.disable()
    pairs_total = sum(
        count * (count - 1) // 2
        for count in (
            len(slow_model.known_values(name))
            for name in slow_model.attributes
        )
    )
    return ScenarioResult(
        name="vsim_mining",
        slow_seconds=slow_seconds,
        fast_seconds=fast_seconds,
        equivalent=model_state(slow_model) == model_state(fast_model),
        details={
            "store_threshold": threshold,
            "workers": fast_config.workers,
            "pairs_total": pairs_total,
            "pairs_evaluated_pruned_path": snapshot.get(
                "repro_simmining_pair_evaluations_total", 0
            ),
            "pairs_pruned": snapshot.get(
                "repro_simmining_pairs_pruned_total", 0
            ),
            "pairs_stored": slow_model.pair_count(),
        },
    )


def bench_topk(scale: BenchScale, fixture: _Fixture) -> ScenarioResult:
    rng = random.Random(31)
    candidates = [
        RankedAnswer(
            row_id=index,
            row=(),
            similarity=rng.random(),
            base_similarity=rng.random(),
            source_base_row_id=0,
            relaxation_level=1,
        )
        for index in range(scale.candidates)
    ]

    def key(answer: RankedAnswer) -> tuple[float, float, int]:
        return (-answer.similarity, -answer.base_similarity, answer.row_id)

    slow_top, slow_seconds = _timed(
        lambda: sorted(candidates, key=key)[: scale.top_k]
    )
    fast_top, fast_seconds = _timed(
        lambda: heapq.nsmallest(scale.top_k, candidates, key=key)
    )
    return ScenarioResult(
        name="topk",
        slow_seconds=slow_seconds,
        fast_seconds=fast_seconds,
        equivalent=slow_top == fast_top,
        details={"candidates": scale.candidates, "top_k": scale.top_k},
    )


def bench_similarity_memo(scale: BenchScale, fixture: _Fixture) -> ScenarioResult:
    engine = fixture.model.engine(fixture.webdb)
    similarity = engine.similarity
    query = _fixture_queries(fixture, 1)[0]
    sample = fixture.model.sample
    rows = [sample.row(index % len(sample)) for index in range(scale.score_rows)]

    def run_slow() -> list[float]:
        scores: list[float] = []
        for _ in range(scale.score_repeats):
            scores = [similarity.sim_to_query(query, row) for row in rows]
        return scores

    def run_fast() -> list[float]:
        scores: list[float] = []
        for _ in range(scale.score_repeats):
            scorer = similarity.query_scorer(query)
            scores = [scorer(row) for row in rows]
        return scores

    slow_scores, slow_seconds = _timed(run_slow)
    fast_scores, fast_seconds = _timed(run_fast)
    return ScenarioResult(
        name="similarity_memo",
        slow_seconds=slow_seconds,
        fast_seconds=fast_seconds,
        equivalent=slow_scores == fast_scores,
        details={
            "rows_scored": scale.score_rows,
            "repeats": scale.score_repeats,
        },
    )


def bench_lazy_partition(scale: BenchScale, fixture: _Fixture) -> ScenarioResult:
    rng = random.Random(51)
    n_rows = scale.partition_rows
    columns = [
        [rng.randrange(cardinality) for _ in range(n_rows)]
        for cardinality in (8, 20, 50, 200)
    ]
    singles = [partition_single(column) for column in columns]

    def force_map(partition: StrippedPartition) -> None:
        # Replicate the seed's eager __post_init__: the row→class map
        # was built for every partition whether or not it was read.
        if partition.classes:
            partition.class_of(partition.classes[0][0])

    def run(eager: bool) -> list[int]:
        ranks: list[int] = []
        for round_index in range(scale.partition_products):
            left = singles[round_index % len(singles)]
            right = singles[(round_index + 1) % len(singles)]
            product = partition_product(left, right)
            if eager:
                force_map(product)
            ranks.append(product.rank)
        return ranks

    slow_ranks, slow_seconds = _timed(lambda: run(eager=True))
    fast_ranks, fast_seconds = _timed(lambda: run(eager=False))
    return ScenarioResult(
        name="lazy_partition",
        slow_seconds=slow_seconds,
        fast_seconds=fast_seconds,
        equivalent=slow_ranks == fast_ranks,
        details={
            "rows": n_rows,
            "products": scale.partition_products,
        },
    )


def bench_resilience_overhead(
    scale: BenchScale, fixture: _Fixture
) -> ScenarioResult:
    webdb = fixture.webdb
    queries = _fixture_queries(fixture, scale.queries)
    plain_engine = fixture.model.engine(webdb)
    policy = ResiliencePolicy(
        probe_deadline_seconds=60.0, query_deadline_seconds=600.0
    )
    guarded = ResilientWebDatabase(webdb, policy)
    guarded_engine = fixture.model.engine(guarded)

    def run(engine) -> list[list[tuple[int, float, float]]]:
        outputs: list[list[tuple[int, float, float]]] = []
        for _ in range(scale.repeats):
            for query in queries:
                answers = engine.answer(query)
                outputs.append(
                    [
                        (a.row_id, a.similarity, a.base_similarity)
                        for a in answers
                    ]
                )
        return outputs

    with webdb.accounting_scope() as slow_window:
        slow_out, slow_seconds = _timed(lambda: run(plain_engine))
    with webdb.accounting_scope() as fast_window:
        fast_out, fast_seconds = _timed(lambda: run(guarded_engine))
    return ScenarioResult(
        name="resilience_overhead",
        slow_seconds=slow_seconds,
        fast_seconds=fast_seconds,
        equivalent=(
            slow_out == fast_out
            and slow_window.probes_issued == fast_window.probes_issued
        ),
        details={
            "repeats": scale.repeats,
            "queries": len(queries),
            "probes_issued_plain": slow_window.probes_issued,
            "probes_issued_guarded": fast_window.probes_issued,
            "retries": guarded.retrier.retries,
            "breaker_state": (
                guarded.breaker.state.value
                if guarded.breaker is not None
                else "disabled"
            ),
        },
    )


def bench_obs_overhead(scale: BenchScale, fixture: _Fixture) -> ScenarioResult:
    webdb = fixture.webdb
    engine = fixture.model.engine(webdb)
    queries = _fixture_queries(fixture, scale.queries)

    def run() -> list[list[tuple[int, float, float]]]:
        outputs: list[list[tuple[int, float, float]]] = []
        for _ in range(scale.repeats):
            for query in queries:
                answers = engine.answer(query)
                outputs.append(
                    [
                        (a.row_id, a.similarity, a.base_similarity)
                        for a in answers
                    ]
                )
        return outputs

    saved = (OBS.enabled, OBS.events.enabled, OBS.events.probe_events)
    try:
        OBS.reset()
        OBS.disable()
        OBS.events.enabled = False
        OBS.events.probe_events = False
        off_out, off_seconds = _timed(run)
        OBS.events.enabled = True
        events_out, events_seconds = _timed(run)
        events_recorded = len(OBS.events)
        OBS.reset()
        OBS.enable()
        full_out, full_seconds = _timed(run)
        traces_recorded = len(OBS.tracer.traces())
        events_full = len(OBS.events)
    finally:
        OBS.reset()
        OBS.enabled, OBS.events.enabled, OBS.events.probe_events = saved
    return ScenarioResult(
        name="obs_overhead",
        slow_seconds=off_seconds,
        fast_seconds=events_seconds,
        equivalent=(
            off_out == events_out == full_out
            and events_recorded > 0
            and events_full > 0
            and traces_recorded > 0
        ),
        details={
            "repeats": scale.repeats,
            "queries": len(queries),
            "full_seconds": round(full_seconds, 6),
            "events_overhead": round(events_seconds / off_seconds - 1.0, 4),
            "full_overhead": round(full_seconds / off_seconds - 1.0, 4),
            "events_recorded": events_recorded,
            "events_recorded_full": events_full,
            "traces_recorded": traces_recorded,
        },
    )


def _overlap_webdb(
    scale: BenchScale,
    seed: int = 71,
    profiles: int = 48,
    attributes: int = 5,
    values: int = 12,
) -> tuple[AutonomousWebDatabase, str]:
    """Overlap-heavy categorical source for the planner scenarios.

    Rows are drawn (Zipf-weighted) from a small pool of fixed profile
    tuples rather than independently per attribute.  That correlation
    is what the semantic planner exploits: base-set tuples sharing a
    profile share their *entire* relaxation program, and tuples sharing
    a value prefix hand each other containment-derivable results.
    Returns the facade plus the most frequent ``A0`` value, whose
    likeness query yields a full (capped) base set.
    """
    rng = random.Random(seed)
    names = tuple(f"A{index}" for index in range(attributes))
    schema = RelationSchema.build(
        "overlapbench", categorical=names, numeric=(), order=names
    )
    domains = [
        [f"v{attribute}_{value}" for value in range(values)]
        for attribute in range(attributes)
    ]
    value_weights = [1.0 / (rank + 1) for rank in range(values)]
    pool = [
        tuple(
            rng.choices(domain, weights=value_weights, k=1)[0]
            for domain in domains
        )
        for _ in range(profiles)
    ]
    profile_weights = [1.0 / (rank + 1) for rank in range(profiles)]
    table = Table(schema)
    for _ in range(scale.rows):
        table.insert(rng.choices(pool, weights=profile_weights, k=1)[0])
    top_value = Counter(row[0] for row in table.rows()).most_common(1)[0][0]
    return AutonomousWebDatabase(table), str(top_value)


def _run_planner_scenario(
    name: str,
    scale: BenchScale,
    fixture: _Fixture,
    planner: PlannerConfig,
) -> ScenarioResult:
    """Serial engine vs planner engine on the overlap-heavy source.

    Equivalence is stricter than output identity: the planner must
    resolve the *same* logical probe stream (``logical_probes`` equal
    to the serial path's total lookups) while issuing *strictly fewer*
    source probes — otherwise the reuse machinery is not actually
    reusing anything and the scenario fails even if it happens to be
    fast.
    """
    webdb, model, query = fixture.overlap
    slow_engine = model.engine(webdb)
    fast_engine = model.engine(webdb, planner=planner)

    def run(engine) -> tuple[list[tuple[int, float, float]], RelaxationTrace]:
        output: list[tuple[int, float, float]] = []
        trace = RelaxationTrace()
        for _ in range(scale.repeats):
            answers = engine.answer(query)
            output = [
                (a.row_id, a.similarity, a.base_similarity) for a in answers
            ]
            trace = answers.trace
        return output, trace

    with webdb.accounting_scope() as slow_window:
        (slow_out, slow_trace), slow_seconds = _timed(lambda: run(slow_engine))
    with webdb.accounting_scope() as fast_window:
        (fast_out, fast_trace), fast_seconds = _timed(lambda: run(fast_engine))
    equivalent = (
        slow_out == fast_out
        and fast_trace.logical_probes == slow_trace.total_lookups
        and fast_trace.queries_issued < slow_trace.queries_issued
    )
    return ScenarioResult(
        name=name,
        slow_seconds=slow_seconds,
        fast_seconds=fast_seconds,
        equivalent=equivalent,
        details={
            "repeats": scale.repeats,
            "frontier": planner.frontier,
            "workers": planner.workers,
            "base_set_size": fast_trace.base_set_size,
            "probes_issued_serial": slow_trace.queries_issued,
            "probes_issued_planner": fast_trace.queries_issued,
            "probes_subsumed": fast_trace.probes_subsumed,
            "probes_speculative": fast_trace.probes_speculative,
            "logical_probes": fast_trace.logical_probes,
            "frontier_batches": fast_trace.frontier_batches,
            "probelog_issued_serial": slow_window.probes_issued,
            "probelog_issued_planner": fast_window.probes_issued,
        },
    )


def bench_semantic_reuse(scale: BenchScale, fixture: _Fixture) -> ScenarioResult:
    return _run_planner_scenario(
        "semantic_reuse", scale, fixture, PlannerConfig(frontier="off")
    )


def bench_batched_frontier(
    scale: BenchScale, fixture: _Fixture
) -> ScenarioResult:
    return _run_planner_scenario(
        "batched_frontier",
        scale,
        fixture,
        PlannerConfig(frontier="tuple", workers=2),
    )


# -- columnar data-plane scenarios --------------------------------------------

#: Paged-probe workload over every operator the facade supports.  The
#: values track the CarDB generator's distributions so each query has a
#: materially different selectivity.
_SCAN_QUERIES: tuple[SelectionQuery, ...] = (
    SelectionQuery((Eq("Make", "Honda"),)),
    SelectionQuery((Ne("Color", "Red"),)),
    SelectionQuery((IsIn("Location", ("Chicago", "Dallas", "Seattle")),)),
    SelectionQuery((Between("Year", "1995", "2000"),)),
    SelectionQuery((Lt("Price", 4_000),)),
    SelectionQuery((Ge("Price", 20_000),)),
    SelectionQuery((Between("Price", 9_000, 12_000),)),
    SelectionQuery((Le("Mileage", 30_000),)),
    SelectionQuery((Gt("Mileage", 120_000),)),
    SelectionQuery((Eq("Make", "Toyota"), Ge("Price", 8_000))),
)

_SCAN_PAGE = 100  # form-style page size for the scan workloads


def _scan_workload(
    scale: BenchScale, db
) -> list[tuple[tuple[int, ...], bool, int]]:
    """One paged selection + one count per query, per repeat.

    Counts do the full-scan work (every matching row is visited with no
    materialisation); the paged selection keeps the output — and hence
    the equivalence comparison — memory-bounded at any scale.
    """
    outputs: list[tuple[tuple[int, ...], bool, int]] = []
    for _ in range(scale.scan_repeats):
        for query in _SCAN_QUERIES:
            page = db.query(query, limit=_SCAN_PAGE)
            outputs.append((page.row_ids, page.truncated, db.count(query)))
    return outputs


def bench_columnar_scan(scale: BenchScale, fixture: _Fixture) -> ScenarioResult:
    row_table = generate_cardb(scale.scan_rows, seed=23, auto_index=False)
    columnar = ColumnarTable.from_table(row_table, auto_index=False)
    slow_db = AutonomousWebDatabase(row_table)
    fast_db = AutonomousWebDatabase(columnar)
    # Warm both paths once untimed: the columnar engine builds its zone
    # maps and typed shadow arrays lazily on first touch, and the
    # scenario measures steady-state scanning, not one-time encoding.
    _scan_workload(scale, slow_db)
    _scan_workload(scale, fast_db)

    with slow_db.accounting_scope() as slow_window:
        slow_out, slow_seconds = _timed(lambda: _scan_workload(scale, slow_db))
    with fast_db.accounting_scope() as fast_window:
        fast_out, fast_seconds = _timed(lambda: _scan_workload(scale, fast_db))
    return ScenarioResult(
        name="columnar_scan",
        slow_seconds=slow_seconds,
        fast_seconds=fast_seconds,
        equivalent=(
            slow_out == fast_out and slow_window.log == fast_window.log
        ),
        details={
            "rows": scale.scan_rows,
            "queries": len(_SCAN_QUERIES),
            "repeats": scale.scan_repeats,
            "page_limit": _SCAN_PAGE,
            "rows_examined_row": slow_window.execution_stats.rows_examined,
            "rows_examined_columnar": fast_window.execution_stats.rows_examined,
            "blocks_scanned": fast_window.execution_stats.blocks_scanned,
            "blocks_pruned": fast_window.execution_stats.blocks_pruned,
        },
    )


def bench_zone_map_prune(scale: BenchScale, fixture: _Fixture) -> ScenarioResult:
    # Price-clustered layout: listings sorted by price give every 4k-row
    # block a tight [min, max] Price interval, which is exactly the
    # regime zone maps exploit.
    source = generate_cardb(scale.zone_rows, seed=23, auto_index=False)
    price = source.schema.position("Price")
    ordered = sorted(source, key=lambda row: (row[price] is None, row[price]))
    unpruned = ColumnarTable(source.schema, auto_index=False, zone_maps=False)
    pruned = ColumnarTable(source.schema, auto_index=False, zone_maps=True)
    for row in ordered:
        unpruned.insert(row)
        pruned.insert(row)
    slow_db = AutonomousWebDatabase(unpruned)
    fast_db = AutonomousWebDatabase(pruned)
    queries = (
        SelectionQuery((Between("Price", 5_000, 6_000),)),
        SelectionQuery((Ge("Price", 40_000),)),
        SelectionQuery((Lt("Price", 2_000),)),
        SelectionQuery((Between("Price", 15_000, 15_500),)),
        SelectionQuery((Between("Price", 9_000, 9_400), Eq("Make", "Honda"))),
    )

    # Timed legs run count probes only: a count is pure scan work (no
    # page materialisation), so the ratio measures pruning rather than
    # per-probe facade overhead.  Page equivalence is checked untimed.
    repeats = scale.scan_repeats * 10

    def run(db) -> list[int]:
        counts: list[int] = []
        for _ in range(repeats):
            counts.extend(db.count(query) for query in queries)
        return counts

    def pages(db) -> list[tuple[tuple[int, ...], bool]]:
        return [
            (page.row_ids, page.truncated)
            for page in (db.query(query, limit=_SCAN_PAGE) for query in queries)
        ]

    pages_equal = pages(slow_db) == pages(fast_db)  # also warms both paths
    run(slow_db)
    run(fast_db)
    with slow_db.accounting_scope() as slow_window:
        slow_out, slow_seconds = _timed(lambda: run(slow_db))
    with fast_db.accounting_scope() as fast_window:
        fast_out, fast_seconds = _timed(lambda: run(fast_db))
    blocks_pruned = fast_window.execution_stats.blocks_pruned
    return ScenarioResult(
        name="zone_map_prune",
        slow_seconds=slow_seconds,
        fast_seconds=fast_seconds,
        equivalent=(
            slow_out == fast_out
            and pages_equal
            and slow_window.log == fast_window.log
            and blocks_pruned > 0
        ),
        details={
            "rows": scale.zone_rows,
            "queries": len(queries),
            "repeats": repeats,
            "rows_examined_unpruned": slow_window.execution_stats.rows_examined,
            "rows_examined_pruned": fast_window.execution_stats.rows_examined,
            "blocks_scanned": fast_window.execution_stats.blocks_scanned,
            "blocks_pruned": blocks_pruned,
        },
    )


def bench_sharded_scatter(
    scale: BenchScale, fixture: _Fixture
) -> ScenarioResult:
    row_table = generate_cardb(scale.scan_rows, seed=23, auto_index=False)
    slow_db = AutonomousWebDatabase(row_table)
    fast_db = ShardedWebDatabase.partition(
        row_table, scale.shards, columnar=True, auto_index=False
    )
    _scan_workload(scale, slow_db)  # warm, as in columnar_scan
    _scan_workload(scale, fast_db)

    with slow_db.accounting_scope() as slow_window:
        slow_out, slow_seconds = _timed(lambda: _scan_workload(scale, slow_db))
    with fast_db.accounting_scope() as fast_window:
        fast_out, fast_seconds = _timed(lambda: _scan_workload(scale, fast_db))
    shard_logs = fast_db.shard_probe_logs()
    return ScenarioResult(
        name="sharded_scatter",
        slow_seconds=slow_seconds,
        fast_seconds=fast_seconds,
        equivalent=(
            slow_out == fast_out and slow_window.log == fast_window.log
        ),
        details={
            "rows": scale.scan_rows,
            "shards": scale.shards,
            "queries": len(_SCAN_QUERIES),
            "repeats": scale.scan_repeats,
            "page_limit": _SCAN_PAGE,
            "logical_probes": fast_window.probes_issued,
            "physical_probes": sum(log.probes_issued for log in shard_logs),
            "rows_examined_row": slow_window.execution_stats.rows_examined,
            "rows_examined_sharded": fast_window.execution_stats.rows_examined,
            "blocks_pruned": fast_window.execution_stats.blocks_pruned,
        },
    )


def _clustered_mining_table(scale: BenchScale, seed: int = 67) -> Table:
    """Categorical table whose values co-occur only within clusters.

    Every attribute's value domain is partitioned into
    ``index_mining_clusters`` disjoint slices, and each row draws all
    of its values (Zipf-skewed) from one cluster's slices.  Values from
    different clusters therefore never share a co-occurring AV-pair
    feature, so posting-list intersection rules their pairs out without
    evaluation — the regime the inverted index targets, and the shape
    real web databases have (SUV models co-occur with SUV-ish makes,
    not with sedans).
    """
    rng = random.Random(seed)
    names = tuple(f"A{index}" for index in range(scale.mining_attributes))
    schema = RelationSchema.build(
        "indexbench", categorical=names, numeric=(), order=names
    )
    clusters = scale.index_mining_clusters
    per_cluster = scale.index_mining_values // clusters
    offsets = range(per_cluster)
    weights = [1.0 / (rank + 1) for rank in range(per_cluster)]
    table = Table(schema)
    for _ in range(scale.index_mining_rows):
        start = rng.randrange(clusters) * per_cluster
        table.insert(
            tuple(
                "v{}_{}".format(
                    attribute,
                    start + rng.choices(offsets, weights=weights, k=1)[0],
                )
                for attribute in range(len(names))
            )
        )
    return table


def bench_index_mining(scale: BenchScale, fixture: _Fixture) -> ScenarioResult:
    table = _clustered_mining_table(scale)
    threshold = scale.mining_threshold
    slow_config = SimilarityMinerConfig(store_threshold=threshold)
    fast_config = SimilarityMinerConfig(
        store_threshold=threshold, use_index=True
    )

    slow_miner = ValueSimilarityMiner(slow_config)
    fast_miner = ValueSimilarityMiner(fast_config)
    # Supertuple generation (phase 1) is identical on both paths; the
    # scenario times similarity estimation (phase 2) alone.
    slow_miner.build_supertuples(table)
    fast_miner.build_supertuples(table)

    slow_model, slow_seconds = _timed(lambda: slow_miner.estimate(table))
    fast_model, fast_seconds = _timed(lambda: fast_miner.estimate(table))

    def model_state(model):
        return (
            {name: model.pairs(name) for name in model.attributes},
            {name: model.known_values(name) for name in model.attributes},
        )

    # Metered re-run of the indexed path for the candidate-generation
    # counters (timing above ran with observability off).
    was_enabled = OBS.enabled
    OBS.reset()
    OBS.enable()
    try:
        ValueSimilarityMiner(fast_config).mine(table)
        snapshot: dict[str, int] = {}
        for metric in OBS.registry.snapshot()["metrics"]:
            if metric["name"].startswith("repro_simmining_index"):
                snapshot[metric["name"]] = sum(
                    series.get("value", 0) for series in metric["series"]
                )
    finally:
        OBS.reset()
        if not was_enabled:
            OBS.disable()
    pairs_total = sum(
        count * (count - 1) // 2
        for count in (
            len(slow_model.known_values(name))
            for name in slow_model.attributes
        )
    )
    pairs_skipped = snapshot.get("repro_simmining_index_pairs_skipped_total", 0)
    return ScenarioResult(
        name="index_mining",
        slow_seconds=slow_seconds,
        fast_seconds=fast_seconds,
        equivalent=(
            model_state(slow_model) == model_state(fast_model)
            and pairs_skipped > 0
        ),
        details={
            "store_threshold": threshold,
            "rows": scale.index_mining_rows,
            "values_per_attribute": scale.index_mining_values,
            "clusters": scale.index_mining_clusters,
            "pairs_total": pairs_total,
            "candidate_pairs": snapshot.get(
                "repro_simmining_index_candidate_pairs_total", 0
            ),
            "pairs_skipped": pairs_skipped,
            "postings": snapshot.get(
                "repro_simmining_index_postings_total", 0
            ),
            "pairs_stored": slow_model.pair_count(),
        },
    )


def _topk_model(
    values: int, neighbors: int, seed: int, indexed: bool
) -> SimilarityModel:
    """Synthetic sparse model: each value has a handful of neighbours.

    Both legs build from the same seed so the linear and indexed models
    hold bit-identical pairs; only the retrieval structure differs.
    """
    rng = random.Random(seed)
    model = SimilarityModel(("Model",))
    if indexed:
        model.enable_top_index()
    names = [f"m{index}" for index in range(values)]
    for name in names:
        model.register_value("Model", name)
    for index, name in enumerate(names):
        for _ in range(neighbors):
            other = names[(index + 1 + rng.randrange(values - 1)) % values]
            if other != name:
                model.record("Model", name, other, round(rng.random(), 6))
    return model


def bench_index_topk(scale: BenchScale, fixture: _Fixture) -> ScenarioResult:
    def measure(values: int) -> tuple[float, float, bool]:
        linear = _topk_model(values, scale.topk_neighbors, 43, indexed=False)
        indexed = _topk_model(values, scale.topk_neighbors, 43, indexed=True)
        probe_rng = random.Random(47)
        probes = [
            f"m{probe_rng.randrange(values)}" for _ in range(scale.topk_probes)
        ]

        def run(model: SimilarityModel) -> list[list[tuple[str, float]]]:
            return [
                model.top_similar("Model", probe, n=scale.top_k)
                for probe in probes
            ]

        slow_out, slow = _timed(lambda: run(linear))
        fast_out, fast = _timed(lambda: run(indexed))
        return slow, fast, slow_out == fast_out

    small_slow, small_fast, small_same = measure(scale.topk_values)
    large_slow, large_fast, large_same = measure(scale.topk_values_large)
    small_speedup = small_slow / small_fast if small_fast > 0 else float("inf")
    large_speedup = large_slow / large_fast if large_fast > 0 else float("inf")
    return ScenarioResult(
        name="index_topk",
        slow_seconds=large_slow,
        fast_seconds=large_fast,
        equivalent=(
            small_same and large_same and large_speedup > small_speedup
        ),
        details={
            "values_small": scale.topk_values,
            "values_large": scale.topk_values_large,
            "probes": scale.topk_probes,
            "neighbors_per_value": scale.topk_neighbors,
            "top_k": scale.top_k,
            "speedup_small": round(small_speedup, 3),
            "speedup_large": round(large_speedup, 3),
        },
    )


SCENARIOS: dict[str, Callable[[BenchScale, _Fixture], ScenarioResult]] = {
    "probe_cache": bench_probe_cache,
    "vsim_mining": bench_vsim_mining,
    "topk": bench_topk,
    "similarity_memo": bench_similarity_memo,
    "lazy_partition": bench_lazy_partition,
    "resilience_overhead": bench_resilience_overhead,
    "obs_overhead": bench_obs_overhead,
    "semantic_reuse": bench_semantic_reuse,
    "batched_frontier": bench_batched_frontier,
    "columnar_scan": bench_columnar_scan,
    "zone_map_prune": bench_zone_map_prune,
    "sharded_scatter": bench_sharded_scatter,
    "index_mining": bench_index_mining,
    "index_topk": bench_index_topk,
}


def _peak_rss_kb() -> int | None:
    """The process's resident-set high-water mark, in KiB.

    ``ru_maxrss`` is a lifetime maximum, so per-scenario readings are
    monotone: a scenario's value is the footprint ceiling *after* it
    ran, and the first scenario to grow the number is the one that set
    it.  ``None`` on platforms without :mod:`resource`.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return None
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB; macOS reports bytes.
    return usage // 1024 if sys.platform == "darwin" else usage


def run_bench(
    scale_name: str = "default",
    only: list[str] | None = None,
) -> dict[str, object]:
    """Run the selected scenarios and return the report mapping.

    Each scenario's ``details`` gains a ``peak_rss_kb`` entry — the
    process peak resident set after the scenario completed — so scale
    runs double as memory-footprint measurements.
    """
    scale = SCALES[scale_name]
    names = list(SCENARIOS) if not only else [n for n in SCENARIOS if n in only]
    unknown = set(only or ()) - set(SCENARIOS)
    if unknown:
        raise ValueError(f"unknown scenarios: {sorted(unknown)}")
    fixture = _Fixture(scale)
    scenarios: dict[str, object] = {}
    for name in names:
        entry = SCENARIOS[name](scale, fixture).as_dict()
        rss = _peak_rss_kb()
        if rss is not None:
            entry["details"]["peak_rss_kb"] = rss  # type: ignore[index]
        scenarios[name] = entry
    return {
        "scale": scale_name,
        "python": sys.version.split()[0],
        "scenarios": scenarios,
    }


def check_regressions(
    report: dict[str, object], max_regression: float = 0.25
) -> list[str]:
    """Failure messages for fast paths slower than their reference.

    A scenario fails when the fast path is more than ``max_regression``
    slower than the slow path (speedup below ``1 / (1 + max_regression)``)
    or when its equivalence check failed.
    """
    floor = 1.0 / (1.0 + max_regression)
    failures: list[str] = []
    for name, entry in report["scenarios"].items():  # type: ignore[union-attr]
        if not entry["equivalent"]:
            failures.append(f"{name}: fast path output differs from slow path")
        if entry["speedup"] < floor:
            failures.append(
                f"{name}: fast path regressed (speedup {entry['speedup']:.3f} "
                f"< {floor:.3f})"
            )
    return failures


def load_report(path: str) -> dict[str, object]:
    """Read a ``run_bench``-shaped JSON report from disk."""
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def check_baseline(
    report: dict[str, object],
    baseline: dict[str, object],
    max_regression: float = 0.25,
) -> list[str]:
    """Failure messages for speedups that decayed against a baseline.

    The committed baseline pins each scenario's speedup at a known-good
    commit; a fresh run fails when a scenario that the baseline records
    as ``equivalent: true`` is now more than ``max_regression`` slower
    relative to its reference path (current speedup below
    ``baseline_speedup / (1 + max_regression)``), or is no longer
    equivalent.  Speedups are ratios against the in-run reference, so
    the comparison is portable across machines — but not across
    problem sizes, so a scale mismatch refuses to judge rather than
    failing spuriously.  Scenarios absent from the baseline are
    skipped: they are new, and committing the next report baselines
    them.
    """
    if report.get("scale") != baseline.get("scale"):
        return [
            "baseline scale mismatch: report is "
            f"{report.get('scale')!r}, baseline is "
            f"{baseline.get('scale')!r}; regenerate the baseline at the "
            "scale the gate runs"
        ]
    failures: list[str] = []
    baseline_scenarios = baseline.get("scenarios", {})
    for name, entry in report["scenarios"].items():  # type: ignore[union-attr]
        reference = baseline_scenarios.get(name)  # type: ignore[union-attr]
        if reference is None or not reference["equivalent"]:
            continue
        if not entry["equivalent"]:
            failures.append(
                f"{name}: no longer equivalent (baseline was equivalent)"
            )
            continue
        floor = reference["speedup"] / (1.0 + max_regression)
        if entry["speedup"] < floor:
            failures.append(
                f"{name}: speedup decayed to {entry['speedup']:.3f} "
                f"(baseline {reference['speedup']:.3f}, floor {floor:.3f})"
            )
    return failures


def append_history(report: dict[str, object], path: str) -> dict[str, object]:
    """Append one compact trajectory line for ``report`` to ``path``.

    ``BENCH_history.jsonl`` is the perf record over time — one JSON
    object per recorded run, keeping the per-scenario speedups and
    equivalence verdicts (timings are machine-local noise; the ratios
    are what trend).  Returns the appended object.
    """
    line = {
        "scale": report["scale"],
        "python": report["python"],
        "scenarios": {
            name: {
                "speedup": entry["speedup"],
                "equivalent": entry["equivalent"],
            }
            for name, entry in report["scenarios"].items()  # type: ignore[union-attr]
        },
    }
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(line, sort_keys=True) + "\n")
    return line
