"""Injectable time source for the resilience layer.

Backoff, deadlines and breaker recovery all need "now" and "wait";
reading the wall clock directly would make every retry schedule
time-dependent and every test slow.  The resilience layer therefore
only ever talks to a :class:`Clock`:

* :class:`SystemClock` — production: ``time.monotonic`` /
  ``time.sleep`` (monotonic, so deadline arithmetic survives NTP
  adjustments);
* :class:`VirtualClock` — tests and deterministic replays: time is an
  explicit counter that only moves when ``sleep`` or ``advance`` is
  called, and every sleep is recorded for assertions.

This is the REP001 story for the whole package: the only clock reads
live here, and the deterministic chaos suite runs entirely on
:class:`VirtualClock`, so no test ever actually sleeps.
"""

from __future__ import annotations

import time
from typing import Protocol

__all__ = ["Clock", "SystemClock", "VirtualClock"]


class Clock(Protocol):
    """What the resilience layer needs from a time source."""

    def monotonic(self) -> float:
        """Seconds from an arbitrary, monotonically advancing origin."""
        ...

    def sleep(self, seconds: float) -> None:
        """Block for ``seconds`` (virtual clocks merely advance)."""
        ...


class SystemClock:
    """The process's real monotonic clock."""

    def monotonic(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


class VirtualClock:
    """Deterministic clock: time moves only when told to.

    ``sleeps`` records every requested sleep duration in order, which
    is how the tests assert backoff schedules without waiting for them.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self.sleeps: list[float] = []

    def monotonic(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot sleep a negative duration")
        self.sleeps.append(seconds)
        self._now += seconds

    def advance(self, seconds: float) -> None:
        """Move time forward without recording a sleep."""
        if seconds < 0:
            raise ValueError("cannot advance time backwards")
        self._now += seconds
