"""A resilient facade over :class:`AutonomousWebDatabase`.

:class:`ResilientWebDatabase` wraps a source facade and guards its two
probing methods (``query`` and ``count``) with the full resilience
stack — circuit breaker, retry with backoff, per-probe and per-query
deadline budgets — while delegating everything else (schema, probe log,
budget accounting, sampling helpers) to the wrapped instance untouched.
Because every layer of the system reaches the source through these two
methods, wrapping here gives query mapping, relaxation probing and
sampling identical protection with zero changes to their call sites.

The wrapper never alters successful results and never converts error
*types*: transient errors that outlast the retry allowance re-raise
unchanged, and permanent :class:`~repro.db.errors.DatabaseError`
subclasses pass straight through on the first attempt.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Callable, Iterator, TypeVar

from repro.db import AutonomousWebDatabase, QueryResult, SelectionQuery
from repro.db.errors import TransientSourceError
from repro.obs.runtime import OBS
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.budget import DeadlineBudget
from repro.resilience.clock import Clock, SystemClock
from repro.resilience.errors import DeadlineExceededError
from repro.resilience.policy import ResiliencePolicy
from repro.resilience.retry import Retrier

__all__ = ["ResilientWebDatabase"]

T = TypeVar("T")


class ResilientWebDatabase:
    """Probe-level resilience as a transparent facade wrapper.

    Failure accounting in the breaker is per *guarded call*: a probe
    that succeeds on its third attempt is a success (retries already
    cured the blip), while retry exhaustion and deadline refusals are
    failures.  Permanent database errors — schema mistakes, malformed
    queries, an exhausted probe budget — say nothing about the source's
    health and leave the breaker untouched.
    """

    def __init__(
        self,
        webdb: AutonomousWebDatabase,
        policy: ResiliencePolicy | None = None,
        clock: Clock | None = None,
    ) -> None:
        self.inner = webdb
        self.policy = policy if policy is not None else ResiliencePolicy()
        self.clock: Clock = clock if clock is not None else SystemClock()
        self.retrier = Retrier(self.policy.retry, self.clock)
        self.breaker: CircuitBreaker | None = None
        if self.policy.breaker_failure_threshold is not None:
            self.breaker = CircuitBreaker(
                failure_threshold=self.policy.breaker_failure_threshold,
                recovery_seconds=self.policy.breaker_recovery_seconds,
                clock=self.clock,
            )
        # Per-thread deadline scope: concurrent sessions (the serve
        # layer runs many answer() calls against one facade) each open
        # their own scope, and one thread's budget must never shadow or
        # clobber another's.  threading.local gives every thread an
        # independent slot with no locking on the probe hot path.
        self._scopes = threading.local()

    @property
    def _query_budget(self) -> DeadlineBudget | None:
        budget: DeadlineBudget | None = getattr(self._scopes, "budget", None)
        return budget

    # -- guarded probing -------------------------------------------------------

    def query(
        self,
        query: SelectionQuery,
        limit: int | None = None,
        offset: int = 0,
    ) -> QueryResult:
        return self._guard(
            lambda: self.inner.query(query, limit=limit, offset=offset)
        )

    def count(self, query: SelectionQuery) -> int:
        return self._guard(lambda: self.inner.count(query))

    @contextmanager
    def deadline_scope(self) -> Iterator[DeadlineBudget]:
        """Open a per-query deadline covering all probes issued inside.

        Nested scopes shadow the outer one for their duration, and the
        scope is *thread-local*: concurrent sessions on one facade each
        see only their own budget.  With ``query_deadline_seconds=None``
        the budget is unlimited, so the engine can open a scope
        unconditionally.
        """
        budget = DeadlineBudget(
            self.policy.query_deadline_seconds, self.clock, scope="query"
        )
        previous = self._query_budget
        self._scopes.budget = budget
        try:
            yield budget
        finally:
            self._scopes.budget = previous

    def _guard(self, fn: Callable[[], T]) -> T:
        if self.breaker is not None:
            self.breaker.before_call()
        if not OBS.enabled:
            # Fast path: defer the retry/budget machinery until a probe
            # actually fails.  A fresh probe budget cannot be expired on
            # attempt one, so only the query-scope budget needs checking
            # here; a first failure replays into the full path with the
            # RNG stream and retry counters untouched.  Skipped when
            # observability is on so the attempt metrics stay complete.
            query_budget = self._query_budget
            try:
                if query_budget is not None:
                    query_budget.require()
                value = fn()
            except TransientSourceError as exc:
                return self._guard_full(fn, first_error=exc)
            except DeadlineExceededError:
                if self.breaker is not None:
                    self.breaker.record_failure()
                raise
            if self.breaker is not None:
                self.breaker.record_success()
            return value
        return self._guard_full(fn)

    def _guard_full(
        self,
        fn: Callable[[], T],
        first_error: TransientSourceError | None = None,
    ) -> T:
        budgets: list[DeadlineBudget] = []
        if self.policy.probe_deadline_seconds is not None:
            # When replaying a fast-path failure the budget starts at
            # the failure, not the attempt; probes take no virtual time,
            # so deterministic schedules are unaffected.
            budgets.append(
                DeadlineBudget(
                    self.policy.probe_deadline_seconds,
                    self.clock,
                    scope="probe",
                )
            )
        if self._query_budget is not None:
            budgets.append(self._query_budget)
        attempt_fn = fn
        if first_error is not None:
            pending = [first_error]

            def attempt_fn() -> T:
                if pending:
                    raise pending.pop()
                return fn()

        try:
            value = self.retrier.call(attempt_fn, tuple(budgets))
        except (TransientSourceError, DeadlineExceededError):
            # Retry exhaustion or a deadline refusal: the source is
            # misbehaving at guarded-call granularity.
            if self.breaker is not None:
                self.breaker.record_failure()
            raise
        if self.breaker is not None:
            self.breaker.record_success()
        return value

    # -- introspection ---------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Counters for CLI/evalx reporting (plain JSON-able values)."""
        payload: dict[str, Any] = {
            "retries": self.retrier.retries,
            "retry_exhaustions": self.retrier.exhaustions,
            "breaker_enabled": self.breaker is not None,
        }
        if self.breaker is not None:
            payload.update(
                breaker_state=self.breaker.state.value,
                breaker_opens=self.breaker.open_count,
                breaker_rejections=self.breaker.rejections,
            )
        return payload

    def __getattr__(self, name: str) -> Any:
        # Everything that is not guarded probing (schema, log, budget
        # accounting, cardinality, fault knobs) is the inner facade's
        # business, verbatim.
        return getattr(self.inner, name)
