"""One immutable knob-set for the whole resilience stack.

A :class:`ResiliencePolicy` bundles the retry shape, breaker thresholds
and deadline budgets so callers configure resilience in one place and
pass a single object to
:class:`~repro.resilience.source.ResilientWebDatabase` or
``AIMQEngine``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.resilience.retry import RetryConfig

__all__ = ["ResiliencePolicy"]


@dataclass(frozen=True)
class ResiliencePolicy:
    """Configuration for retries, circuit breaking and deadlines.

    ``breaker_failure_threshold=None`` disables the circuit breaker
    entirely (useful for chaos tests that study retries in isolation).
    ``probe_deadline_seconds`` bounds one guarded facade call including
    its retries; ``query_deadline_seconds`` bounds one whole
    ``answer()`` invocation.  ``None`` deadlines are unlimited.
    """

    retry: RetryConfig = field(default_factory=RetryConfig)
    breaker_failure_threshold: int | None = 5
    breaker_recovery_seconds: float = 1.0
    probe_deadline_seconds: float | None = None
    query_deadline_seconds: float | None = None

    def __post_init__(self) -> None:
        if (
            self.breaker_failure_threshold is not None
            and self.breaker_failure_threshold < 1
        ):
            raise ValueError(
                "breaker_failure_threshold must be at least 1 (or None)"
            )
        if self.breaker_recovery_seconds < 0:
            raise ValueError("breaker_recovery_seconds cannot be negative")
        for name in ("probe_deadline_seconds", "query_deadline_seconds"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive (or None)")
