"""Deadline budgets: bounded time for probes and whole queries.

A budget is opened against a :class:`~repro.resilience.clock.Clock`
and answers two questions: *is there time left?* and *may I still
afford this sleep?*  Two scopes exist by convention:

* ``"probe"`` — one guarded facade call, including all of its retry
  attempts and backoff sleeps;
* ``"query"`` — one ``AIMQEngine.answer`` invocation end to end.

Budgets never interrupt a running attempt (this is a synchronous,
single-threaded system); they refuse the *next* attempt or sleep once
exhausted, raising :class:`~repro.resilience.errors.DeadlineExceededError`
with structured fields.
"""

from __future__ import annotations

from repro.resilience.clock import Clock
from repro.resilience.errors import DeadlineExceededError

__all__ = ["DeadlineBudget"]


class DeadlineBudget:
    """Time allocation measured against an injectable clock.

    ``seconds=None`` builds an unlimited budget, so call sites can
    thread one object through unconditionally.
    """

    def __init__(self, seconds: float | None, clock: Clock, scope: str) -> None:
        if seconds is not None and seconds <= 0:
            raise ValueError("deadline budget must be positive (or None)")
        self.scope = scope
        self.seconds = seconds
        self._clock = clock
        self._started = clock.monotonic()

    @property
    def elapsed(self) -> float:
        return self._clock.monotonic() - self._started

    @property
    def remaining(self) -> float | None:
        """Seconds left, or None for an unlimited budget."""
        if self.seconds is None:
            return None
        return self.seconds - self.elapsed

    @property
    def expired(self) -> bool:
        remaining = self.remaining
        return remaining is not None and remaining <= 0

    def require(self) -> None:
        """Refuse (raise) when the budget has run out."""
        if self.expired:
            assert self.seconds is not None
            raise DeadlineExceededError(
                scope=self.scope,
                budget_seconds=self.seconds,
                elapsed_seconds=self.elapsed,
            )

    def affords_sleep(self, duration: float) -> bool:
        """Would sleeping ``duration`` leave time for another attempt?

        A sleep is affordable only while it is *strictly shorter* than
        the remaining budget: sleeping exactly to the deadline (or past
        it, or with nothing left at all) buys no useful next attempt —
        the follow-up ``require()`` would fail anyway, after time was
        already burned.  Refusing here caps every backoff at the
        budget's remaining time and surfaces the refusal *before* the
        sleep, chained from the error that caused it.
        """
        remaining = self.remaining
        return remaining is None or (remaining > 0.0 and duration < remaining)

    def refuse_sleep(self, duration: float) -> DeadlineExceededError:
        """The refusal to raise when a sleep cannot be afforded."""
        assert self.seconds is not None
        return DeadlineExceededError(
            scope=self.scope,
            budget_seconds=self.seconds,
            elapsed_seconds=self.elapsed + duration,
        )
